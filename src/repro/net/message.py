"""Typed message envelopes exchanged between processors."""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Mapping

# Fallback id stream for directly constructed messages (tests, ad-hoc
# envelopes).  Messages sent through a Processor draw their ids from
# the owning Network instead (`Network.next_msg_id`), so same-seed
# clusters built back-to-back in one process see identical id streams.
_MESSAGE_IDS = count(1)


@dataclass(frozen=True)
class Message:
    """An immutable message in flight.

    ``kind`` is the protocol-level message type (``"newvp"``, ``"probe"``,
    ``"read"``, ...) used for mailbox dispatch; ``payload`` carries the
    protocol fields; ``reply_to`` links responses to requests for the
    RPC helper.
    """

    src: int
    dst: int
    kind: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    reply_to: int | None = None
    msg_id: int = field(default_factory=lambda: next(_MESSAGE_IDS))
    sent_at: float = 0.0

    def reply(self, kind: str, payload: Mapping[str, Any] | None = None,
              sent_at: float = 0.0) -> "Message":
        """Build the response envelope addressed back to the sender."""
        return Message(
            src=self.dst,
            dst=self.src,
            kind=kind,
            payload=payload or {},
            reply_to=self.msg_id,
            sent_at=sent_at,
        )

    def __repr__(self) -> str:
        return (f"Message#{self.msg_id}({self.kind} {self.src}->{self.dst} "
                f"{dict(self.payload)!r})")
