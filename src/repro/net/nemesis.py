"""Nemesis: randomized adversarial fault campaigns.

A nemesis generalizes :class:`RandomFailures` from "memoryless crashes
and symmetric cuts" to the full adversarial fault model: directed cuts,
delay surges, grey-loss bursts, duplication storms, link flapping, and
whole partitions, composed in bursts.

The design splits *planning* from *application*.  ``plan_nemesis`` draws
a complete schedule of :class:`FaultAction` records up front from its
own RNG — a plain, picklable, JSON-able list.  ``apply_schedule`` then
installs the schedule on a :class:`FailureInjector` deterministically,
with zero further randomness.  That split is what makes campaigns
shrinkable: the hunter can delete actions from the list and replay the
remainder bit-for-bit, which an online random process cannot offer.

Every applied action holds its faults under its own ownership claim
(``nemesis#<n>``), so overlapping actions — and any scripted schedule
running alongside — compose: an action's undo releases only its own
claim, never a fault someone else still wants in place.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from .failures import FailureInjector

#: action kinds a nemesis can draw, in canonical order
KINDS = ("crash", "cut", "oneway", "surge", "grey", "dup", "flap", "partition")


@dataclass(frozen=True)
class FaultAction:
    """One planned fault: do something at ``time``, undo at ``time + hold``.

    ``args`` is kind-specific:

    * ``crash``: ``(pid,)``
    * ``cut`` / ``oneway``: ``(a, b)`` (directed for ``oneway``)
    * ``surge``: ``(src, dst, factor)``
    * ``grey`` / ``dup``: ``(src, dst, prob)``
    * ``flap``: ``(a, b, period, cycles)`` — ``hold`` is ignored; the
      flap ends itself after ``2 * period * cycles``
    * ``partition``: ``(block, ...)`` — imposed as pairwise inter-block
      cuts under this action's claim, so it composes and undoes cleanly
    """

    time: float
    kind: str
    args: Tuple
    hold: float

    def to_dict(self) -> dict:
        return {"time": self.time, "kind": self.kind,
                "args": list(self.args), "hold": self.hold}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultAction":
        args = tuple(
            tuple(x) if isinstance(x, list) else x for x in data["args"]
        )
        return cls(time=data["time"], kind=data["kind"],
                   args=args, hold=data["hold"])


@dataclass
class NemesisMix:
    """Relative weights and intensity ranges for the fault classes."""

    crash: float = 1.0
    cut: float = 1.0
    oneway: float = 1.0
    surge: float = 1.0
    grey: float = 1.0
    dup: float = 0.5
    flap: float = 0.5
    partition: float = 0.5
    #: latency multiplier range for delay surges
    surge_factor: Tuple[float, float] = (3.0, 8.0)
    #: loss probability range for grey-loss bursts
    loss_prob: Tuple[float, float] = (0.3, 0.9)
    #: duplication probability range for dup storms
    dup_prob: Tuple[float, float] = (0.2, 0.6)
    #: flap half-period range (time units) and cycle-count range
    flap_period: Tuple[float, float] = (1.0, 4.0)
    flap_cycles: Tuple[int, int] = (2, 5)

    def weights(self) -> dict:
        return {k: getattr(self, k) for k in KINDS}


def plan_nemesis(rng: random.Random, pids: Sequence[int],
                 mix: Optional[NemesisMix] = None,
                 horizon: float = 300.0, start: float = 10.0,
                 mean_gap: float = 20.0, burst: Tuple[int, int] = (1, 3),
                 mean_hold: float = 15.0) -> list:
    """Draw a complete fault schedule.

    Fault instants arrive as a Poisson-ish process from ``start`` with
    mean inter-arrival ``mean_gap``; each instant fires a burst of 1–N
    simultaneous actions (the paper's Fig. 2 scenario — a re-partition
    *while* another fault is still in effect — needs overlap, which
    bursts plus multi-unit holds provide).  Every action self-heals
    after an exponential hold with mean ``mean_hold``.
    """
    mix = mix or NemesisMix()
    pids = sorted(pids)
    if len(pids) < 2:
        raise ValueError("a nemesis needs at least two processors")
    kinds = [k for k, w in mix.weights().items() if w > 0]
    weights = [mix.weights()[k] for k in kinds]
    actions = []
    t = start
    while t < horizon:
        for _ in range(rng.randint(*burst)):
            kind = rng.choices(kinds, weights)[0]
            hold = min(1.0 + rng.expovariate(1.0 / mean_hold), horizon - t)
            actions.append(_draw_action(rng, kind, pids, mix, t, hold))
        t += 1.0 + rng.expovariate(1.0 / mean_gap)
    return actions


def _draw_action(rng: random.Random, kind: str, pids: Sequence[int],
                 mix: NemesisMix, t: float, hold: float) -> FaultAction:
    if kind == "crash":
        args: Tuple = (rng.choice(pids),)
    elif kind in ("cut", "oneway"):
        args = tuple(rng.sample(pids, 2))
    elif kind == "surge":
        src, dst = rng.sample(pids, 2)
        args = (src, dst, round(rng.uniform(*mix.surge_factor), 3))
    elif kind == "grey":
        src, dst = rng.sample(pids, 2)
        args = (src, dst, round(rng.uniform(*mix.loss_prob), 3))
    elif kind == "dup":
        src, dst = rng.sample(pids, 2)
        args = (src, dst, round(rng.uniform(*mix.dup_prob), 3))
    elif kind == "flap":
        a, b = rng.sample(pids, 2)
        args = (a, b, round(rng.uniform(*mix.flap_period), 3),
                rng.randint(*mix.flap_cycles))
    elif kind == "partition":
        shuffled = list(pids)
        rng.shuffle(shuffled)
        split = rng.randint(1, len(shuffled) - 1)
        args = (tuple(sorted(shuffled[:split])),
                tuple(sorted(shuffled[split:])))
    else:  # pragma: no cover - planner and KINDS list move together
        raise ValueError(f"unknown fault kind: {kind}")
    return FaultAction(time=t, kind=kind, args=args, hold=hold)


def apply_schedule(injector: FailureInjector, actions: Sequence[FaultAction],
                   ) -> None:
    """Install a planned schedule on ``injector`` — fully deterministic.

    Each action does its fault at ``time`` and undoes it at ``time +
    hold`` under a unique per-action claim, so overlapping actions on
    the same element compose instead of healing each other early.
    Transport perturbations (surge/grey/dup) are last-writer-wins per
    route — they are probabilistic noise, not safety-bearing state.
    """
    for i, action in enumerate(actions):
        _apply_one(injector, action, actor=f"nemesis#{i}")


def _apply_one(injector: FailureInjector, action: FaultAction,
               actor: str) -> None:
    t, args, hold = action.time, action.args, action.hold
    kind = action.kind
    if kind == "crash":
        pid = args[0]
        injector.at(t, lambda: injector._crash(pid, actor),
                    f"nemesis-crash({pid})")
        injector.at(t + hold, lambda: injector._recover(pid, actor),
                    f"nemesis-recover({pid})")
    elif kind == "cut":
        a, b = args
        injector.at(t, lambda: injector._cut(a, b, actor),
                    f"nemesis-cut({a},{b})")
        injector.at(t + hold, lambda: injector._heal(a, b, actor),
                    f"nemesis-heal({a},{b})")
    elif kind == "oneway":
        a, b = args
        injector.at(t, lambda: injector._cut_oneway(a, b, actor),
                    f"nemesis-cut-oneway({a},{b})")
        injector.at(t + hold, lambda: injector._heal_oneway(a, b, actor),
                    f"nemesis-heal-oneway({a},{b})")
    elif kind == "surge":
        src, dst, factor = args
        net = injector._network()
        injector.at(t, lambda: net.set_delay_surge(src, dst, factor),
                    f"nemesis-surge({src},{dst},{factor})")
        injector.at(t + hold, lambda: net.clear_delay_surge(src, dst),
                    f"nemesis-surge-end({src},{dst})")
    elif kind == "grey":
        src, dst, prob = args
        net = injector._network()
        injector.at(t, lambda: net.set_grey_loss(src, dst, prob),
                    f"nemesis-grey({src},{dst},{prob})")
        injector.at(t + hold, lambda: net.clear_grey_loss(src, dst),
                    f"nemesis-grey-end({src},{dst})")
    elif kind == "dup":
        src, dst, prob = args
        net = injector._network()
        injector.at(t, lambda: net.set_dup_storm(src, dst, prob),
                    f"nemesis-dup({src},{dst},{prob})")
        injector.at(t + hold, lambda: net.clear_dup_storm(src, dst),
                    f"nemesis-dup-end({src},{dst})")
    elif kind == "flap":
        a, b, period, cycles = args
        for c in range(cycles):
            injector.at(t + 2 * c * period,
                        lambda: injector._cut(a, b, actor),
                        f"nemesis-flap-cut({a},{b})")
            injector.at(t + (2 * c + 1) * period,
                        lambda: injector._heal(a, b, actor),
                        f"nemesis-flap-heal({a},{b})")
    elif kind == "partition":
        pairs = [
            (a, b)
            for i, block in enumerate(args)
            for a in block
            for other in args[i + 1:]
            for b in other
        ]

        def impose(ps=tuple(pairs)):
            for a, b in ps:
                injector._cut(a, b, actor)

        def release(ps=tuple(pairs)):
            for a, b in ps:
                injector._heal(a, b, actor)

        injector.at(t, impose, f"nemesis-partition({list(map(list, args))})")
        injector.at(t + hold, release, "nemesis-partition-end")
    else:
        raise ValueError(f"unknown fault kind: {kind}")


class Nemesis:
    """Plan-then-apply wrapper generalizing :class:`RandomFailures`.

    Draws a full schedule from ``rng`` at install time and applies it;
    the planned schedule is kept on ``self.actions`` so a run can be
    reported, serialized, and replayed exactly.
    """

    def __init__(self, injector: FailureInjector, rng: random.Random,
                 mix: Optional[NemesisMix] = None,
                 horizon: float = 300.0, start: float = 10.0,
                 mean_gap: float = 20.0, burst: Tuple[int, int] = (1, 3),
                 mean_hold: float = 15.0):
        self.injector = injector
        self.rng = rng
        self.mix = mix or NemesisMix()
        self.horizon = horizon
        self.start = start
        self.mean_gap = mean_gap
        self.burst = burst
        self.mean_hold = mean_hold
        self.actions: list = []

    def install(self) -> list:
        """Plan a schedule, apply it, and return the planned actions."""
        self.actions = plan_nemesis(
            self.rng, sorted(self.injector.graph.nodes), self.mix,
            horizon=self.horizon, start=self.start, mean_gap=self.mean_gap,
            burst=self.burst, mean_hold=self.mean_hold,
        )
        apply_schedule(self.injector, self.actions)
        return self.actions
