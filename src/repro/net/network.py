"""Message transport over the dynamic communication graph.

Failure semantics implemented here (§2 of the paper — omission and
performance failures):

* **omission**: a message is dropped if the edge is absent at send time,
  absent at the scheduled delivery time (the link died while the message
  was in flight), the destination is down at delivery, or the per-link
  loss process fires;
* **performance**: with probability ``slow_prob`` a message is delayed
  beyond the declared bound δ by factor ``slow_factor`` — it still
  arrives, but later than the protocol's timers allow, which is exactly
  how the paper distinguishes performance failures from crashes;
* **duplication** is supported for robustness testing (off by default).

**Per-link perturbations** refine all three failure classes for
adversarial testing: a *delay surge* multiplies one direction's latency
draws (a sustained performance failure on one route), *grey loss*
overrides the loss probability on one direction (a link that is up but
lossy — neither cleanly cut nor healthy), and a *duplication storm*
raises the duplication probability on one direction.  Directed cuts
live in :class:`CommGraph` (``can_send``); the transport consults the
directed relation, so an asymmetric cut drops one direction's traffic
while the reverse flows normally.  With no perturbations installed the
draw sequence is byte-identical to the unperturbed transport.

**Batching** (``batch_window > 0``): logical messages enqueued for the
same (src, dst) pair within one window coalesce into a single batch
envelope — one latency draw, one loss draw, one delivery event for the
whole batch, the way real transports amortize per-message cost.  The
window opener's arrival time is unchanged (arrival = open + max(delay,
window) and delay ≥ window is the common case with window ≤ δ), and
followers arrive *no later* than they would have alone — δ stays an
upper bound, so every protocol timer derived from it remains sound.
``batch_window = 0`` (the default) preserves the unbatched behavior
exactly, draw for draw.

**Macro-event delivery**: in batched mode an envelope is also *drained*
as one kernel wakeup.  A destination that registered an inline handler
(see :meth:`register`) has every carried message pushed through it
within the envelope's single dispatch — waiter wakeups happen via
:meth:`~repro.sim.kernel.Simulator.fire_inline` instead of costing one
scheduled event each — so an n-message envelope is one dispatch, not
1 + n.  Per-message accounting is unchanged: ``delivered`` increments
and ``msg.recv`` trace events are emitted message by message, in carry
order, at the envelope's arrival instant.  A ``StopSimulation`` raised
by a waiter mid-drain is held until the remaining messages have been
drained (stopping a run must not eat messages), then re-raised.  The
unbatched path never uses inline delivery, keeping the default
configuration byte-identical.

Everything is counted in :class:`NetworkStats` — logical messages
*and* physical envelopes — so the benchmark harness can report message
costs per logical operation and the batching win is measurable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import count
from typing import Callable, Dict, List, Optional, Tuple

from ..sim import Simulator, StopSimulation
from .latency import LatencyModel
from .message import Message
from .topology import CommGraph

DeliveryHandler = Callable[[Message], None]


@dataclass
class NetworkStats:
    """Counters for everything the transport did.

    ``sent`` counts *logical* messages (what the protocol pays for in
    the paper's cost model); ``envelopes`` counts *physical*
    transmissions — with batching several logical messages share one
    envelope, without it the two counters track each other.
    """

    sent: int = 0
    delivered: int = 0
    dropped_no_edge: int = 0
    dropped_in_flight: int = 0
    dropped_lost: int = 0
    dropped_dst_down: int = 0
    duplicated: int = 0
    slow: int = 0
    #: messages whose delay was stretched by a per-link delay surge
    surged: int = 0
    #: physical transmissions (one latency/loss draw each)
    envelopes: int = 0
    #: logical messages carried by those envelopes
    enveloped_messages: int = 0
    #: envelopes drained through an inline handler as a single kernel
    #: wakeup (macro-event delivery; batched mode only)
    macro_wakeups: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    @property
    def dropped(self) -> int:
        return (self.dropped_no_edge + self.dropped_in_flight
                + self.dropped_lost + self.dropped_dst_down)

    @property
    def batch_occupancy(self) -> float:
        """Mean logical messages per envelope (1.0 = no batching win)."""
        return (self.enveloped_messages / self.envelopes
                if self.envelopes else 0.0)

    def snapshot(self) -> dict:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "slow": self.slow,
            "envelopes": self.envelopes,
            "batch_occupancy": self.batch_occupancy,
            "macro_wakeups": self.macro_wakeups,
            "by_kind": dict(self.by_kind),
        }


class Network:
    """Routes messages between registered processors."""

    def __init__(self, sim: Simulator, graph: CommGraph,
                 latency: LatencyModel, rng: random.Random,
                 loss_prob: float = 0.0,
                 slow_prob: float = 0.0, slow_factor: float = 5.0,
                 dup_prob: float = 0.0, batch_window: float = 0.0):
        if not 0.0 <= loss_prob < 1.0:
            raise ValueError(f"loss_prob out of range: {loss_prob}")
        if not 0.0 <= slow_prob < 1.0:
            raise ValueError(f"slow_prob out of range: {slow_prob}")
        if not 0.0 <= dup_prob < 1.0:
            raise ValueError(f"dup_prob out of range: {dup_prob}")
        if slow_factor <= 1.0:
            raise ValueError("slow_factor must exceed 1")
        if batch_window < 0.0:
            raise ValueError(f"negative batch_window: {batch_window}")
        self.sim = sim
        self.graph = graph
        self.latency = latency
        self.rng = rng
        self.loss_prob = loss_prob
        self.slow_prob = slow_prob
        self.slow_factor = slow_factor
        self.dup_prob = dup_prob
        self.batch_window = batch_window
        self.stats = NetworkStats()
        # per-(src, dst) adversarial perturbations; empty dicts by
        # default so the unperturbed draw sequence is untouched
        self._link_loss: Dict[Tuple[int, int], float] = {}
        self._link_surge: Dict[Tuple[int, int], float] = {}
        self._link_dup: Dict[Tuple[int, int], float] = {}
        self._handlers: dict[int, DeliveryHandler] = {}
        # macro-event drains (batched mode): per-destination handlers
        # that wake waiters inside the envelope's own dispatch
        self._inline_handlers: dict[int, DeliveryHandler] = {}
        # per-network message ids: two clusters built in one process
        # must see identical id streams for the same seed (a process-
        # global counter would break back-to-back determinism)
        self._msg_ids = count(1)
        # open batch envelopes, keyed by (src, dst)
        self._pending: Dict[Tuple[int, int], List[Message]] = {}
        #: optional wiretap for tests: called with every sent message
        self.tap: Optional[Callable[[Message], None]] = None
        #: optional :class:`~repro.obs.trace.Tracer`; None = no tracing
        self.tracer = None
        # per-run message sequence numbers for trace correlation (kept
        # even with per-network msg_ids: directly constructed test
        # messages still draw from the global fallback counter)
        self._trace_seq: dict[int, int] = {}

    def next_msg_id(self) -> int:
        """Allocate the next message id on this network's own stream."""
        return next(self._msg_ids)

    @property
    def delta(self) -> float:
        """The δ bound the protocol's timers are derived from."""
        return self.latency.bound

    # -- per-link perturbations (adversarial fault model) ----------------------

    def set_grey_loss(self, src: int, dst: int, prob: float) -> None:
        """Override the loss probability on the ``src`` → ``dst`` route.

        Models a *grey* link: up, but dropping a fraction of its
        traffic — the omission failure that is neither a clean cut nor
        a healthy edge.
        """
        if not 0.0 <= prob < 1.0:
            raise ValueError(f"loss prob out of range: {prob}")
        self._link_loss[(src, dst)] = prob

    def clear_grey_loss(self, src: int, dst: int) -> None:
        self._link_loss.pop((src, dst), None)

    def set_delay_surge(self, src: int, dst: int, factor: float) -> None:
        """Multiply every ``src`` → ``dst`` latency draw by ``factor``.

        A sustained performance failure on one route: messages still
        arrive, but (for factors pushing the draw past δ) later than
        the protocol's timers allow.
        """
        if factor < 1.0:
            raise ValueError(f"surge factor must be >= 1: {factor}")
        self._link_surge[(src, dst)] = factor

    def clear_delay_surge(self, src: int, dst: int) -> None:
        self._link_surge.pop((src, dst), None)

    def set_dup_storm(self, src: int, dst: int, prob: float) -> None:
        """Override the duplication probability on ``src`` → ``dst``."""
        if not 0.0 <= prob < 1.0:
            raise ValueError(f"dup prob out of range: {prob}")
        self._link_dup[(src, dst)] = prob

    def clear_dup_storm(self, src: int, dst: int) -> None:
        self._link_dup.pop((src, dst), None)

    def perturbed_links(self) -> set[Tuple[int, int]]:
        """Routes currently carrying any perturbation (for reports)."""
        return (set(self._link_loss) | set(self._link_surge)
                | set(self._link_dup))

    def register(self, pid: int, handler: DeliveryHandler,
                 inline: Optional[DeliveryHandler] = None) -> None:
        """Attach the delivery callback for processor ``pid``.

        ``inline``, if given, is the macro-event variant: it must wake
        any waiter *within the current dispatch* (``fire_inline`` /
        ``put_inline``) rather than scheduling wakeup events.  It is
        only ever used in batched mode (``batch_window > 0``); without
        it a batched destination falls back to ``handler`` per message.
        """
        if pid not in self.graph.nodes:
            raise KeyError(f"unknown processor {pid}")
        self._handlers[pid] = handler
        if inline is not None:
            self._inline_handlers[pid] = inline
        else:
            self._inline_handlers.pop(pid, None)

    def send(self, message: Message) -> None:
        """Put ``message`` in flight; delivery (or loss) is resolved later."""
        if message.dst not in self.graph.nodes:
            raise KeyError(f"unknown destination {message.dst}")
        self.stats.sent += 1
        self.stats.by_kind[message.kind] = (
            self.stats.by_kind.get(message.kind, 0) + 1
        )
        if self.tap is not None:
            self.tap(message)
        if self.tracer is not None:
            self._trace_seq[id(message)] = self.stats.sent
            self.tracer.emit(
                "msg.send", pid=message.src, dst=message.dst,
                kind=message.kind, seq=self.stats.sent,
            )
        if self.batch_window <= 0.0:
            self._transmit((message,), held=0.0)
            return
        key = (message.src, message.dst)
        pending = self._pending.get(key)
        if pending is not None:
            # an envelope to this destination is already open: ride it
            pending.append(message)
            return
        self._pending[key] = [message]
        flush = self.sim.timeout(
            self.batch_window, name=f"flush#{message.src}->{message.dst}"
        )
        flush.add_callback(lambda _event, k=key: self._flush(k))

    def _flush(self, key: Tuple[int, int]) -> None:
        batch = self._pending.pop(key, None)
        if batch:
            self._transmit(tuple(batch), held=self.batch_window)

    def _transmit(self, batch: Tuple[Message, ...], held: float) -> None:
        """Resolve one envelope: edge/loss/latency draws for the batch.

        ``held`` is how long the envelope sat open before the draws;
        the opener's total arrival time is ``held + max(delay - held,
        0)`` — unchanged whenever ``delay >= held``, which the
        ``batch_window <= delta`` constraint guarantees for in-bound
        latency models.
        """
        first = batch[0]
        key = (first.src, first.dst)
        n = len(batch)
        self.stats.envelopes += 1
        self.stats.enveloped_messages += n
        if not self.graph.can_send(first.src, first.dst):
            self.stats.dropped_no_edge += n
            for message in batch:
                self._trace_drop(message, "no-edge")
            return
        loss = self._link_loss.get(key, self.loss_prob)
        if loss and self.rng.random() < loss:
            self.stats.dropped_lost += n
            for message in batch:
                self._trace_drop(message, "lost")
            return
        delay = self.latency.delay(first.src, first.dst, self.rng)
        if self.slow_prob and self.rng.random() < self.slow_prob:
            delay *= self.slow_factor
            self.stats.slow += n
        surge = self._link_surge.get(key)
        if surge is not None:
            delay *= surge
            self.stats.surged += n
        self._schedule_delivery(batch, max(delay - held, 0.0))
        dup = self._link_dup.get(key, self.dup_prob)
        if dup and self.rng.random() < dup:
            self.stats.duplicated += n
            self.stats.envelopes += 1
            self.stats.enveloped_messages += n
            dup_delay = self.latency.delay(first.src, first.dst, self.rng)
            if surge is not None:
                dup_delay *= surge
            self._schedule_delivery(batch, max(dup_delay - held, 0.0))

    def _schedule_delivery(self, batch: Tuple[Message, ...],
                           delay: float) -> None:
        arrival = self.sim.timeout(delay, name=f"deliver#{batch[0].msg_id}")
        arrival.add_callback(lambda _event, b=batch: self._deliver(b))

    def _deliver(self, batch: Tuple[Message, ...]) -> None:
        first = batch[0]
        if not self.graph.can_send(first.src, first.dst):
            self.stats.dropped_in_flight += len(batch)
            for message in batch:
                self._trace_drop(message, "in-flight")
            return
        handler = self._handlers.get(first.dst)
        if handler is None or not self.graph.node_up(first.dst):
            self.stats.dropped_dst_down += len(batch)
            for message in batch:
                self._trace_drop(message, "dst-down")
            return
        if self.batch_window > 0.0:
            inline = self._inline_handlers.get(first.dst)
            if inline is not None:
                self._drain(batch, inline)
                return
        for message in batch:
            self.stats.delivered += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "msg.recv", pid=message.dst, src=message.src,
                    kind=message.kind,
                    seq=self._trace_seq.get(id(message), -1),
                    latency=self.sim.now - message.sent_at,
                )
            handler(message)

    def _drain(self, batch: Tuple[Message, ...], inline: DeliveryHandler) -> None:
        """Macro-event drain: push every carried message through the
        destination's inline handler within the current dispatch.

        Per-message accounting (``delivered``, ``msg.recv``) is
        identical to the classic path.  A ``StopSimulation`` escaping a
        woken waiter is held until the drain completes — halting the
        run must not drop the rest of the envelope — then re-raised so
        ``run()`` still returns at this instant.
        """
        self.stats.macro_wakeups += 1
        stop: Optional[StopSimulation] = None
        for message in batch:
            self.stats.delivered += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "msg.recv", pid=message.dst, src=message.src,
                    kind=message.kind,
                    seq=self._trace_seq.get(id(message), -1),
                    latency=self.sim.now - message.sent_at,
                )
            try:
                inline(message)
            except StopSimulation as exc:
                if stop is None:
                    stop = exc
        if stop is not None:
            raise stop

    def _trace_drop(self, message: Message, reason: str) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                "msg.drop", pid=message.dst, src=message.src,
                kind=message.kind, reason=reason,
                seq=self._trace_seq.get(id(message), -1),
            )
