"""Message transport over the dynamic communication graph.

Failure semantics implemented here (§2 of the paper — omission and
performance failures):

* **omission**: a message is dropped if the edge is absent at send time,
  absent at the scheduled delivery time (the link died while the message
  was in flight), the destination is down at delivery, or the per-link
  loss process fires;
* **performance**: with probability ``slow_prob`` a message is delayed
  beyond the declared bound δ by factor ``slow_factor`` — it still
  arrives, but later than the protocol's timers allow, which is exactly
  how the paper distinguishes performance failures from crashes;
* **duplication** is supported for robustness testing (off by default).

Everything is counted in :class:`NetworkStats` so the benchmark harness
can report message costs per logical operation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..sim import Simulator
from .latency import LatencyModel
from .message import Message
from .topology import CommGraph

DeliveryHandler = Callable[[Message], None]


@dataclass
class NetworkStats:
    """Counters for everything the transport did."""

    sent: int = 0
    delivered: int = 0
    dropped_no_edge: int = 0
    dropped_in_flight: int = 0
    dropped_lost: int = 0
    dropped_dst_down: int = 0
    duplicated: int = 0
    slow: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    @property
    def dropped(self) -> int:
        return (self.dropped_no_edge + self.dropped_in_flight
                + self.dropped_lost + self.dropped_dst_down)

    def snapshot(self) -> dict:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "slow": self.slow,
            "by_kind": dict(self.by_kind),
        }


class Network:
    """Routes messages between registered processors."""

    def __init__(self, sim: Simulator, graph: CommGraph,
                 latency: LatencyModel, rng: random.Random,
                 loss_prob: float = 0.0,
                 slow_prob: float = 0.0, slow_factor: float = 5.0,
                 dup_prob: float = 0.0):
        if not 0.0 <= loss_prob < 1.0:
            raise ValueError(f"loss_prob out of range: {loss_prob}")
        if not 0.0 <= slow_prob < 1.0:
            raise ValueError(f"slow_prob out of range: {slow_prob}")
        if not 0.0 <= dup_prob < 1.0:
            raise ValueError(f"dup_prob out of range: {dup_prob}")
        if slow_factor <= 1.0:
            raise ValueError("slow_factor must exceed 1")
        self.sim = sim
        self.graph = graph
        self.latency = latency
        self.rng = rng
        self.loss_prob = loss_prob
        self.slow_prob = slow_prob
        self.slow_factor = slow_factor
        self.dup_prob = dup_prob
        self.stats = NetworkStats()
        self._handlers: dict[int, DeliveryHandler] = {}
        #: optional wiretap for tests: called with every sent message
        self.tap: Optional[Callable[[Message], None]] = None
        #: optional :class:`~repro.obs.trace.Tracer`; None = no tracing
        self.tracer = None
        # per-run message sequence numbers for trace correlation (the
        # global Message.msg_id counter is not reset between runs, so
        # it would break byte-identical replay traces)
        self._trace_seq: dict[int, int] = {}

    @property
    def delta(self) -> float:
        """The δ bound the protocol's timers are derived from."""
        return self.latency.bound

    def register(self, pid: int, handler: DeliveryHandler) -> None:
        """Attach the delivery callback for processor ``pid``."""
        if pid not in self.graph.nodes:
            raise KeyError(f"unknown processor {pid}")
        self._handlers[pid] = handler

    def send(self, message: Message) -> None:
        """Put ``message`` in flight; delivery (or loss) is resolved later."""
        if message.dst not in self.graph.nodes:
            raise KeyError(f"unknown destination {message.dst}")
        self.stats.sent += 1
        self.stats.by_kind[message.kind] = (
            self.stats.by_kind.get(message.kind, 0) + 1
        )
        if self.tap is not None:
            self.tap(message)
        if self.tracer is not None:
            self._trace_seq[id(message)] = self.stats.sent
            self.tracer.emit(
                "msg.send", pid=message.src, dst=message.dst,
                kind=message.kind, seq=self.stats.sent,
            )
        if not self.graph.has_edge(message.src, message.dst):
            self.stats.dropped_no_edge += 1
            self._trace_drop(message, "no-edge")
            return
        if self.loss_prob and self.rng.random() < self.loss_prob:
            self.stats.dropped_lost += 1
            self._trace_drop(message, "lost")
            return
        delay = self.latency.delay(message.src, message.dst, self.rng)
        if self.slow_prob and self.rng.random() < self.slow_prob:
            delay *= self.slow_factor
            self.stats.slow += 1
        self._schedule_delivery(message, delay)
        if self.dup_prob and self.rng.random() < self.dup_prob:
            self.stats.duplicated += 1
            dup_delay = self.latency.delay(message.src, message.dst, self.rng)
            self._schedule_delivery(message, dup_delay)

    def _schedule_delivery(self, message: Message, delay: float) -> None:
        arrival = self.sim.timeout(delay, name=f"deliver#{message.msg_id}")
        arrival.add_callback(lambda _event, m=message: self._deliver(m))

    def _deliver(self, message: Message) -> None:
        if not self.graph.has_edge(message.src, message.dst):
            self.stats.dropped_in_flight += 1
            self._trace_drop(message, "in-flight")
            return
        handler = self._handlers.get(message.dst)
        if handler is None or not self.graph.node_up(message.dst):
            self.stats.dropped_dst_down += 1
            self._trace_drop(message, "dst-down")
            return
        self.stats.delivered += 1
        if self.tracer is not None:
            self.tracer.emit(
                "msg.recv", pid=message.dst, src=message.src,
                kind=message.kind,
                seq=self._trace_seq.get(id(message), -1),
                latency=self.sim.now - message.sent_at,
            )
        handler(message)

    def _trace_drop(self, message: Message, reason: str) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                "msg.drop", pid=message.dst, src=message.src,
                kind=message.kind, reason=reason,
                seq=self._trace_seq.get(id(message), -1),
            )
