"""Latency models: message delays and the "nearest copy" metric.

Every model declares ``bound`` — the δ of the paper: the maximum
transmission delay between any two connected processors.  Protocol
timers (2δ, 3δ waits, the Δ = π + 8δ liveness bound) are derived from
it.  ``distance`` gives the *expected* delay and defines which copy is
"nearest" for the read-one rule.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Mapping, Sequence


class LatencyModel(ABC):
    """Strategy interface for message delays."""

    @property
    @abstractmethod
    def bound(self) -> float:
        """The paper's δ: an upper bound on one-way delay."""

    @abstractmethod
    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        """Sample the delay of one message from ``src`` to ``dst``."""

    @abstractmethod
    def distance(self, src: int, dst: int) -> float:
        """Expected delay; the read-one rule reads the minimum-distance copy."""


class FixedLatency(LatencyModel):
    """Every message takes exactly ``value`` time units."""

    def __init__(self, value: float = 1.0):
        if value <= 0:
            raise ValueError(f"latency must be positive, got {value}")
        self.value = value

    @property
    def bound(self) -> float:
        return self.value

    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        return self.value

    def distance(self, src: int, dst: int) -> float:
        return 0.0 if src == dst else self.value

    def __repr__(self) -> str:
        return f"FixedLatency({self.value})"


class UniformLatency(LatencyModel):
    """Delays drawn uniformly from ``[low, high]`` for every pair."""

    def __init__(self, low: float = 0.5, high: float = 1.0):
        if not 0 < low <= high:
            raise ValueError(f"need 0 < low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    @property
    def bound(self) -> float:
        return self.high

    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def distance(self, src: int, dst: int) -> float:
        return 0.0 if src == dst else (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class DistanceLatency(LatencyModel):
    """Per-pair base delays from a distance table, with optional jitter.

    ``distances[(a, b)]`` (order-insensitive) gives the base one-way
    delay.  Missing pairs use ``default``.  Jitter multiplies the base
    by a uniform factor in ``[1, 1 + jitter]``.  This is the model that
    makes "read the nearest copy" meaningful: a local copy costs
    ``local``, nearby copies cost less than remote ones.
    """

    def __init__(self, distances: Mapping[tuple[int, int], float],
                 default: float = 1.0, jitter: float = 0.0,
                 local: float = 0.01):
        self._distances: dict[frozenset[int], float] = {}
        for (a, b), value in distances.items():
            if value <= 0:
                raise ValueError(f"distance for ({a},{b}) must be positive")
            self._distances[frozenset((a, b))] = float(value)
        if default <= 0:
            raise ValueError("default distance must be positive")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.default = default
        self.jitter = jitter
        self.local = local

    @property
    def bound(self) -> float:
        widest = max(self._distances.values(), default=self.default)
        widest = max(widest, self.default)
        return widest * (1.0 + self.jitter)

    def base(self, src: int, dst: int) -> float:
        if src == dst:
            return self.local
        return self._distances.get(frozenset((src, dst)), self.default)

    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        base = self.base(src, dst)
        if self.jitter:
            return base * rng.uniform(1.0, 1.0 + self.jitter)
        return base

    def distance(self, src: int, dst: int) -> float:
        return 0.0 if src == dst else self.base(src, dst)

    def __repr__(self) -> str:
        return (f"DistanceLatency({len(self._distances)} pairs, "
                f"default={self.default}, jitter={self.jitter})")


def ring_distances(nodes: Sequence[int], near: float = 0.2,
                   far_step: float = 0.4) -> dict[tuple[int, int], float]:
    """Convenience: distances proportional to hop count around a ring.

    Useful for experiments where each processor has an unambiguous
    nearest neighbour.
    """
    ordered = list(nodes)
    n = len(ordered)
    table: dict[tuple[int, int], float] = {}
    for i, a in enumerate(ordered):
        for j in range(i + 1, n):
            b = ordered[j]
            hops = min(j - i, n - (j - i))
            table[(a, b)] = near + far_step * (hops - 1)
    return table
