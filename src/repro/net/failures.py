"""Failure injection: scripted schedules and random failure processes.

The injector mutates the :class:`CommGraph` (and tells crashed
processors to kill their tasks) at exact simulated instants, which is
how the reproduction stages the paper's scenarios — e.g. Example 2's
"re-partition while two processors still hold stale views" needs the
partition to land between two specific protocol steps.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from ..sim import Simulator
from .topology import CommGraph

Action = Callable[[], None]


class FailureInjector:
    """Applies scripted topology changes at scheduled times."""

    def __init__(self, sim: Simulator, graph: CommGraph,
                 processors: Optional[Mapping[int, Any]] = None):
        self.sim = sim
        self.graph = graph
        self._processors: Mapping[int, Any] = processors or {}
        #: chronological record of applied failures, for reports
        self.log: list[tuple[float, str]] = []
        #: optional :class:`~repro.obs.trace.Tracer`; None = no tracing
        self.tracer = None

    def set_processors(self, processors: Mapping[int, Any]) -> None:
        """Late-bind the pid → processor map (crash/recover targets)."""
        self._processors = processors

    # -- scheduling ------------------------------------------------------------

    def at(self, time: float, action: Action, label: str = "") -> None:
        """Run ``action`` at absolute simulated ``time``.

        ``time == sim.now`` is valid and schedules the action at the
        current instant (it fires on the next kernel step, after the
        currently running event completes); only strictly-past times
        are rejected.
        """
        delay = time - self.sim.now
        if delay < 0:
            raise ValueError(f"time {time} is in the past (now={self.sim.now})")

        def fire(_event, act=action, lab=label):
            self._record(lab or getattr(act, "__name__", "?"))
            act()

        self.sim.timeout(delay, name=f"failure@{time}").add_callback(fire)

    def _record(self, label: str) -> None:
        self.log.append((self.sim.now, label))
        if self.tracer is not None:
            self.tracer.emit("fail.inject", label=label)

    # -- convenience actions --------------------------------------------------

    def crash_at(self, time: float, pid: int) -> None:
        """Crash processor ``pid`` at ``time`` (tasks die, volatile state lost)."""
        self.at(time, lambda: self._crash(pid), f"crash({pid})")

    def recover_at(self, time: float, pid: int) -> None:
        """Recover ``pid`` at ``time``; its protocol tasks restart."""
        self.at(time, lambda: self._recover(pid), f"recover({pid})")

    def cut_at(self, time: float, a: int, b: int) -> None:
        """Cut the ``a``–``b`` link at ``time``."""
        self.at(time, lambda: self.graph.cut_link(a, b), f"cut({a},{b})")

    def heal_at(self, time: float, a: int, b: int) -> None:
        """Heal the ``a``–``b`` link at ``time``."""
        self.at(time, lambda: self.graph.heal_link(a, b), f"heal({a},{b})")

    def partition_at(self, time: float,
                     blocks: Sequence[Iterable[int]]) -> None:
        """Impose a clean partition into ``blocks`` at ``time``."""
        frozen = [list(block) for block in blocks]
        self.at(time, lambda: self.graph.partition(frozen),
                f"partition({frozen})")

    def heal_all_at(self, time: float) -> None:
        """Restore full connectivity (crashed nodes stay down) at ``time``."""
        self.at(time, self.graph.heal_all, "heal_all")

    # -- primitive operations ---------------------------------------------------

    def _crash(self, pid: int) -> None:
        self.graph.crash_node(pid)
        processor = self._processors.get(pid)
        if processor is not None:
            processor.crash()

    def _recover(self, pid: int) -> None:
        self.graph.recover_node(pid)
        processor = self._processors.get(pid)
        if processor is not None:
            processor.recover()


class RandomFailures:
    """A memoryless crash/repair process over nodes and links.

    Crashes arrive per-processor as a Poisson process with mean
    inter-arrival ``mttf``; each crash is repaired after an exponential
    time with mean ``mttr``.  Link cuts behave analogously.  "Failures
    are rare" in the paper's cost analysis corresponds to mttf much
    larger than both the probe period π and transaction latency.
    """

    def __init__(self, injector: FailureInjector, rng: random.Random,
                 node_mttf: float = 0.0, node_mttr: float = 50.0,
                 link_mttf: float = 0.0, link_mttr: float = 50.0,
                 horizon: float = float("inf")):
        for name, value in (("node_mttf", node_mttf), ("node_mttr", node_mttr),
                            ("link_mttf", link_mttf), ("link_mttr", link_mttr)):
            if value < 0:
                raise ValueError(f"{name} must be non-negative")
        self.injector = injector
        self.rng = rng
        self.node_mttf = node_mttf
        self.node_mttr = node_mttr
        self.link_mttf = link_mttf
        self.link_mttr = link_mttr
        self.horizon = horizon

    def install(self) -> None:
        """Spawn the background processes driving the failure streams."""
        sim = self.injector.sim
        graph = self.injector.graph
        if self.node_mttf > 0:
            for pid in sorted(graph.nodes):
                sim.process(self._node_lifecycle(pid),
                            name=f"random-node-failures({pid})")
        if self.link_mttf > 0:
            pairs = [
                (a, b)
                for a in sorted(graph.nodes)
                for b in sorted(graph.nodes)
                if a < b
            ]
            for a, b in pairs:
                sim.process(self._link_lifecycle(a, b),
                            name=f"random-link-failures({a},{b})")

    def _node_lifecycle(self, pid: int):
        sim = self.injector.sim
        while sim.now < self.horizon:
            yield sim.timeout(self.rng.expovariate(1.0 / self.node_mttf))
            if sim.now >= self.horizon:
                return
            self.injector._record(f"random-crash({pid})")
            self.injector._crash(pid)
            yield sim.timeout(self.rng.expovariate(1.0 / self.node_mttr))
            self.injector._record(f"random-recover({pid})")
            self.injector._recover(pid)

    def _link_lifecycle(self, a: int, b: int):
        sim = self.injector.sim
        graph = self.injector.graph
        while sim.now < self.horizon:
            yield sim.timeout(self.rng.expovariate(1.0 / self.link_mttf))
            if sim.now >= self.horizon:
                return
            self.injector._record(f"random-cut({a},{b})")
            graph.cut_link(a, b)
            yield sim.timeout(self.rng.expovariate(1.0 / self.link_mttr))
            self.injector._record(f"random-heal({a},{b})")
            graph.heal_link(a, b)
