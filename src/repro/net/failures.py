"""Failure injection: scripted schedules and random failure processes.

The injector mutates the :class:`CommGraph` (and tells crashed
processors to kill their tasks) at exact simulated instants, which is
how the reproduction stages the paper's scenarios — e.g. Example 2's
"re-partition while two processors still hold stale views" needs the
partition to land between two specific protocol steps.

**Ownership claims.**  Several fault actors can run at once — a
scripted schedule, a :class:`RandomFailures` process, and any number of
nemesis campaigns.  Each downed element (crashed node, cut link, one-way
cut) carries the set of *actors* that downed it; an actor's heal or
recover removes only its own claim, and the element actually comes back
only when the last claim is gone.  Without this, a random link-heal
could silently resurrect a link a scripted ``cut_at`` deliberately
downed mid-scenario.  ``partition_at`` and ``heal_all_at`` remain
authoritative: a partition rewrites the claims of every link it touches,
and ``heal_all`` force-clears all link claims.
"""

from __future__ import annotations

import random
from typing import Any, Callable, FrozenSet, Iterable, Mapping, Optional, Sequence

from ..sim import Simulator
from .network import Network
from .topology import CommGraph

Action = Callable[[], None]

#: the actor name used by the scripted ``*_at`` convenience schedule
SCRIPT = "script"


class FailureInjector:
    """Applies scripted topology changes at scheduled times."""

    def __init__(self, sim: Simulator, graph: CommGraph,
                 processors: Optional[Mapping[int, Any]] = None,
                 network: Optional[Network] = None):
        self.sim = sim
        self.graph = graph
        self.network = network
        self._processors: Mapping[int, Any] = processors or {}
        #: chronological record of applied failures, for reports
        self.log: list[tuple[float, str]] = []
        #: optional :class:`~repro.obs.trace.Tracer`; None = no tracing
        self.tracer = None
        # ownership claims: which actors currently hold each element down
        self._node_claims: dict[int, set[str]] = {}
        self._link_claims: dict[FrozenSet[int], set[str]] = {}
        self._oneway_claims: dict[tuple[int, int], set[str]] = {}

    def set_processors(self, processors: Mapping[int, Any]) -> None:
        """Late-bind the pid → processor map (crash/recover targets)."""
        self._processors = processors

    # -- claim queries ---------------------------------------------------------

    def claims_on_node(self, pid: int) -> frozenset:
        """Actors currently holding processor ``pid`` down."""
        return frozenset(self._node_claims.get(pid, ()))

    def claims_on_link(self, a: int, b: int) -> frozenset:
        """Actors currently holding the undirected ``a``–``b`` link cut."""
        return frozenset(self._link_claims.get(frozenset((a, b)), ()))

    def claims_on_oneway(self, src: int, dst: int) -> frozenset:
        """Actors currently holding the ``src`` → ``dst`` direction cut."""
        return frozenset(self._oneway_claims.get((src, dst), ()))

    # -- scheduling ------------------------------------------------------------

    def at(self, time: float, action: Action, label: str = "") -> None:
        """Run ``action`` at absolute simulated ``time``.

        ``time == sim.now`` is valid and schedules the action at the
        current instant (it fires on the next kernel step, after the
        currently running event completes); only strictly-past times
        are rejected.
        """
        delay = time - self.sim.now
        if delay < 0:
            raise ValueError(f"time {time} is in the past (now={self.sim.now})")

        def fire(_event, act=action, lab=label):
            self._record(lab or getattr(act, "__name__", "?"))
            act()

        self.sim.timeout(delay, name=f"failure@{time}").add_callback(fire)

    def _record(self, label: str) -> None:
        self.log.append((self.sim.now, label))
        if self.tracer is not None:
            self.tracer.emit("fail.inject", label=label)

    # -- convenience actions --------------------------------------------------

    def crash_at(self, time: float, pid: int) -> None:
        """Crash processor ``pid`` at ``time`` (tasks die, volatile state lost)."""
        self.at(time, lambda: self._crash(pid), f"crash({pid})")

    def recover_at(self, time: float, pid: int) -> None:
        """Recover ``pid`` at ``time``; its protocol tasks restart."""
        self.at(time, lambda: self._recover(pid), f"recover({pid})")

    def cut_at(self, time: float, a: int, b: int) -> None:
        """Cut the ``a``–``b`` link at ``time``."""
        self.at(time, lambda: self._cut(a, b), f"cut({a},{b})")

    def heal_at(self, time: float, a: int, b: int) -> None:
        """Heal the ``a``–``b`` link at ``time``."""
        self.at(time, lambda: self._heal(a, b), f"heal({a},{b})")

    def cut_oneway_at(self, time: float, src: int, dst: int) -> None:
        """Cut only the ``src`` → ``dst`` direction at ``time``."""
        self.at(time, lambda: self._cut_oneway(src, dst),
                f"cut-oneway({src},{dst})")

    def heal_oneway_at(self, time: float, src: int, dst: int) -> None:
        """Heal the ``src`` → ``dst`` direction at ``time``."""
        self.at(time, lambda: self._heal_oneway(src, dst),
                f"heal-oneway({src},{dst})")

    def partition_at(self, time: float,
                     blocks: Sequence[Iterable[int]]) -> None:
        """Impose a clean partition into ``blocks`` at ``time``."""
        frozen = [list(block) for block in blocks]
        self.at(time, lambda: self._partition(frozen),
                f"partition({frozen})")

    def heal_all_at(self, time: float) -> None:
        """Restore full connectivity (crashed nodes stay down) at ``time``."""
        self.at(time, self._heal_all, "heal_all")

    def grey_loss_at(self, time: float, src: int, dst: int, prob: float,
                     duration: Optional[float] = None) -> None:
        """Make the ``src`` → ``dst`` route lossy with probability ``prob``.

        With ``duration`` the burst clears itself after that long.
        """
        self.at(time, lambda: self._network().set_grey_loss(src, dst, prob),
                f"grey-loss({src},{dst},{prob})")
        if duration is not None:
            self.at(time + duration,
                    lambda: self._network().clear_grey_loss(src, dst),
                    f"grey-loss-end({src},{dst})")

    def delay_surge_at(self, time: float, src: int, dst: int, factor: float,
                       duration: Optional[float] = None) -> None:
        """Stretch every ``src`` → ``dst`` latency draw by ``factor``."""
        self.at(time, lambda: self._network().set_delay_surge(src, dst, factor),
                f"delay-surge({src},{dst},{factor})")
        if duration is not None:
            self.at(time + duration,
                    lambda: self._network().clear_delay_surge(src, dst),
                    f"delay-surge-end({src},{dst})")

    def dup_storm_at(self, time: float, src: int, dst: int, prob: float,
                     duration: Optional[float] = None) -> None:
        """Duplicate ``src`` → ``dst`` envelopes with probability ``prob``."""
        self.at(time, lambda: self._network().set_dup_storm(src, dst, prob),
                f"dup-storm({src},{dst},{prob})")
        if duration is not None:
            self.at(time + duration,
                    lambda: self._network().clear_dup_storm(src, dst),
                    f"dup-storm-end({src},{dst})")

    def flap_link_at(self, time: float, a: int, b: int,
                     period: float, cycles: int) -> None:
        """Flap the ``a``–``b`` link: cut/heal alternating every ``period``."""
        if period <= 0:
            raise ValueError(f"flap period must be positive: {period}")
        if cycles < 1:
            raise ValueError(f"flap needs at least one cycle: {cycles}")
        for c in range(cycles):
            self.at(time + 2 * c * period, lambda: self._cut(a, b),
                    f"flap-cut({a},{b})")
            self.at(time + (2 * c + 1) * period, lambda: self._heal(a, b),
                    f"flap-heal({a},{b})")

    # -- primitive operations ---------------------------------------------------

    def _network(self) -> Network:
        if self.network is None:
            raise RuntimeError(
                "this action perturbs the transport; construct the "
                "FailureInjector with network=..."
            )
        return self.network

    def _crash(self, pid: int, actor: str = SCRIPT) -> None:
        self._node_claims.setdefault(pid, set()).add(actor)
        self.graph.crash_node(pid)
        processor = self._processors.get(pid)
        if processor is not None:
            processor.crash()

    def _recover(self, pid: int, actor: str = SCRIPT) -> None:
        claims = self._node_claims.get(pid)
        if claims:
            claims.discard(actor)
            if claims:
                return  # another actor still holds this node down
        self._node_claims.pop(pid, None)
        self.graph.recover_node(pid)
        processor = self._processors.get(pid)
        if processor is not None:
            processor.recover()

    def _cut(self, a: int, b: int, actor: str = SCRIPT) -> None:
        self._link_claims.setdefault(frozenset((a, b)), set()).add(actor)
        self.graph.cut_link(a, b)

    def _heal(self, a: int, b: int, actor: str = SCRIPT) -> None:
        key = frozenset((a, b))
        claims = self._link_claims.get(key)
        if claims:
            claims.discard(actor)
            if claims:
                return  # someone else still wants this link down
        self._link_claims.pop(key, None)
        self.graph.heal_link(a, b)

    def _cut_oneway(self, src: int, dst: int, actor: str = SCRIPT) -> None:
        self._oneway_claims.setdefault((src, dst), set()).add(actor)
        self.graph.cut_link_oneway(src, dst)

    def _heal_oneway(self, src: int, dst: int, actor: str = SCRIPT) -> None:
        key = (src, dst)
        claims = self._oneway_claims.get(key)
        if claims:
            claims.discard(actor)
            if claims:
                return
        self._oneway_claims.pop(key, None)
        self.graph.heal_link_oneway(src, dst)

    def _partition(self, blocks: Sequence[Iterable[int]]) -> None:
        # graph.partition validates the blocks (and raises) before any
        # mutation, so claims are rewritten only for an applied partition
        self.graph.partition(blocks)
        groups = [set(block) for block in blocks]
        mentioned = set().union(*groups) if groups else set()
        leftovers = set(self.graph.nodes) - mentioned
        if leftovers:
            groups.append(leftovers)
        block_of = {p: i for i, group in enumerate(groups) for p in group}
        for a in self.graph.nodes:
            for b in self.graph.nodes:
                if a < b:
                    key = frozenset((a, b))
                    if block_of[a] == block_of[b]:
                        self._link_claims.pop(key, None)
                        self._oneway_claims.pop((a, b), None)
                        self._oneway_claims.pop((b, a), None)
                    else:
                        self._link_claims[key] = {SCRIPT}

    def _heal_all(self) -> None:
        self.graph.heal_all()
        self._link_claims.clear()
        self._oneway_claims.clear()


class RandomFailures:
    """A memoryless crash/repair process over nodes and links.

    Crashes arrive per-processor as a Poisson process with mean
    inter-arrival ``mttf``; each crash is repaired after an exponential
    time with mean ``mttr``.  Link cuts behave analogously.  "Failures
    are rare" in the paper's cost analysis corresponds to mttf much
    larger than both the probe period π and transaction latency.

    Every cycle runs under this process's own ownership claim: if some
    other actor (a script, a nemesis) already holds the target down, the
    cycle is skipped rather than piling a second failure on top, and the
    repair never resurrects an element someone else still wants down.
    """

    def __init__(self, injector: FailureInjector, rng: random.Random,
                 node_mttf: float = 0.0, node_mttr: float = 50.0,
                 link_mttf: float = 0.0, link_mttr: float = 50.0,
                 horizon: float = float("inf")):
        for name, value in (("node_mttf", node_mttf), ("node_mttr", node_mttr),
                            ("link_mttf", link_mttf), ("link_mttr", link_mttr)):
            if value < 0:
                raise ValueError(f"{name} must be non-negative")
        self.injector = injector
        self.rng = rng
        self.node_mttf = node_mttf
        self.node_mttr = node_mttr
        self.link_mttf = link_mttf
        self.link_mttr = link_mttr
        self.horizon = horizon

    def install(self) -> None:
        """Spawn the background processes driving the failure streams."""
        sim = self.injector.sim
        graph = self.injector.graph
        if self.node_mttf > 0:
            for pid in sorted(graph.nodes):
                sim.process(self._node_lifecycle(pid),
                            name=f"random-node-failures({pid})")
        if self.link_mttf > 0:
            pairs = [
                (a, b)
                for a in sorted(graph.nodes)
                for b in sorted(graph.nodes)
                if a < b
            ]
            for a, b in pairs:
                sim.process(self._link_lifecycle(a, b),
                            name=f"random-link-failures({a},{b})")

    def _node_lifecycle(self, pid: int):
        sim = self.injector.sim
        actor = f"rand-node({pid})"
        while sim.now < self.horizon:
            yield sim.timeout(self.rng.expovariate(1.0 / self.node_mttf))
            if sim.now >= self.horizon:
                return
            if self.injector.claims_on_node(pid):
                continue  # another actor holds it down; don't pile on
            self.injector._record(f"random-crash({pid})")
            self.injector._crash(pid, actor)
            yield sim.timeout(self.rng.expovariate(1.0 / self.node_mttr))
            self.injector._record(f"random-recover({pid})")
            self.injector._recover(pid, actor)

    def _link_lifecycle(self, a: int, b: int):
        sim = self.injector.sim
        actor = f"rand-link({a},{b})"
        while sim.now < self.horizon:
            yield sim.timeout(self.rng.expovariate(1.0 / self.link_mttf))
            if sim.now >= self.horizon:
                return
            if self.injector.claims_on_link(a, b):
                continue  # scripted or nemesis cut owns this link
            self.injector._record(f"random-cut({a},{b})")
            self.injector._cut(a, b, actor)
            yield sim.timeout(self.rng.expovariate(1.0 / self.link_mttr))
            self.injector._record(f"random-heal({a},{b})")
            self.injector._heal(a, b, actor)
