"""Network substrate: topology, latency, transport, failure injection."""

from .failures import FailureInjector, RandomFailures
from .latency import (
    DistanceLatency,
    FixedLatency,
    LatencyModel,
    UniformLatency,
    ring_distances,
)
from .message import Message
from .network import Network, NetworkStats
from .topology import CommGraph

__all__ = [
    "CommGraph",
    "DistanceLatency",
    "FailureInjector",
    "FixedLatency",
    "LatencyModel",
    "Message",
    "Network",
    "NetworkStats",
    "RandomFailures",
    "UniformLatency",
    "ring_distances",
]
