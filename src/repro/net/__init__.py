"""Network substrate: topology, latency, transport, failure injection."""

from .failures import FailureInjector, RandomFailures
from .nemesis import (
    FaultAction,
    Nemesis,
    NemesisMix,
    apply_schedule,
    plan_nemesis,
)
from .latency import (
    DistanceLatency,
    FixedLatency,
    LatencyModel,
    UniformLatency,
    ring_distances,
)
from .message import Message
from .network import Network, NetworkStats
from .topology import CommGraph

__all__ = [
    "CommGraph",
    "DistanceLatency",
    "FailureInjector",
    "FaultAction",
    "FixedLatency",
    "LatencyModel",
    "Message",
    "Nemesis",
    "NemesisMix",
    "Network",
    "NetworkStats",
    "RandomFailures",
    "apply_schedule",
    "plan_nemesis",
    "UniformLatency",
    "ring_distances",
]
