"""The dynamic communication graph — the *can-communicate* relation.

The paper's system model (§3): nodes are processors; an undirected edge
means messages between the endpoints arrive within the bound δ.  The
relation is explicitly **not** assumed transitive, so a cluster need not
be a clique (Fig. 1 is exactly such a graph).

The graph starts as a single clique (the no-failure state).  Failures
remove edges three ways: an individual *link cut*, a *node crash*
(removes all incident edges), or a *partition* (removes all inter-block
edges).  Recoveries restore them.  ``version`` increments on every
change so observers can cheaply detect staleness.

Beyond the paper's undirected model, the graph also supports
**directed** (one-way) cuts — ``a`` can still reach ``b`` while ``b``'s
messages to ``a`` vanish.  Real omission failures are frequently
asymmetric (a congested uplink, a one-way routing hole), and they are
exactly the non-transitive connectivity the protocol must survive.
``can_send`` is the directed query the transport uses; ``has_edge``
stays the *symmetric* "timely in both directions" relation, so an
asymmetric link never counts as a clique edge and a cluster containing
one is correctly reported as non-transitive.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Sequence


def _edge(a: int, b: int) -> FrozenSet[int]:
    if a == b:
        raise ValueError(f"self-edge at {a}")
    return frozenset((a, b))


class CommGraph:
    """Mutable undirected graph over a fixed processor set."""

    def __init__(self, nodes: Iterable[int]):
        self.nodes: FrozenSet[int] = frozenset(nodes)
        if not self.nodes:
            raise ValueError("a system needs at least one processor")
        self._cut_links: set[FrozenSet[int]] = set()
        self._oneway_cuts: set[tuple[int, int]] = set()
        self._down_nodes: set[int] = set()
        self.version = 0

    # -- queries ------------------------------------------------------------

    def node_up(self, p: int) -> bool:
        """True if processor ``p`` has not crashed."""
        self._check(p)
        return p not in self._down_nodes

    def can_send(self, src: int, dst: int) -> bool:
        """True if a message from ``src`` can currently reach ``dst``.

        The *directed* reachability query: a one-way cut blocks only
        this direction, while an undirected cut or a crashed endpoint
        blocks both.
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            return src not in self._down_nodes
        if src in self._down_nodes or dst in self._down_nodes:
            return False
        if _edge(src, dst) in self._cut_links:
            return False
        return (src, dst) not in self._oneway_cuts

    def has_edge(self, a: int, b: int) -> bool:
        """True if ``a`` and ``b`` can currently exchange timely messages
        *in both directions* (the paper's undirected edge relation).

        An asymmetric link — one direction cut — is not an edge: the
        protocol's clique/transitivity reasoning (assumption A2) needs
        mutual timely delivery.
        """
        if a == b:
            self._check(a)
            return a not in self._down_nodes
        return self.can_send(a, b) and self.can_send(b, a)

    def neighbors(self, p: int) -> set[int]:
        """Processors adjacent to ``p`` (excluding ``p`` itself)."""
        self._check(p)
        if p in self._down_nodes:
            return set()
        return {q for q in self.nodes if q != p and self.has_edge(p, q)}

    def clusters(self) -> list[set[int]]:
        """Connected components of the current graph.

        A crashed processor forms a trivial cluster by itself, matching
        the paper's modelling of crashes.
        """
        remaining = set(self.nodes)
        components = []
        while remaining:
            seed = min(remaining)  # deterministic order
            component = {seed}
            frontier = [seed]
            while frontier:
                node = frontier.pop()
                for other in self.neighbors(node):
                    if other not in component:
                        component.add(other)
                        frontier.append(other)
            components.append(component)
            remaining -= component
        return components

    def cluster_of(self, p: int) -> set[int]:
        """The connected component containing ``p``."""
        for component in self.clusters():
            if p in component:
                return component
        raise AssertionError("unreachable: every node is in some cluster")

    def is_clique(self, processors: Iterable[int]) -> bool:
        """True if every pair in ``processors`` shares an edge."""
        members = list(processors)
        return all(
            self.has_edge(a, b)
            for i, a in enumerate(members)
            for b in members[i + 1:]
        )

    def is_transitive(self) -> bool:
        """True if every cluster is a clique (assumption A2)."""
        return all(self.is_clique(c) for c in self.clusters())

    def alive_nodes(self) -> set[int]:
        """Processors that have not crashed."""
        return set(self.nodes) - self._down_nodes

    # -- mutations ------------------------------------------------------------

    def cut_link(self, a: int, b: int) -> None:
        """Sever the ``a``–``b`` link (omission failure on one route)."""
        self._check(a)
        self._check(b)
        self._cut_links.add(_edge(a, b))
        self.version += 1

    def heal_link(self, a: int, b: int) -> None:
        """Restore the ``a``–``b`` link."""
        self._check(a)
        self._check(b)
        self._cut_links.discard(_edge(a, b))
        self.version += 1

    def cut_link_oneway(self, src: int, dst: int) -> None:
        """Sever only the ``src`` → ``dst`` direction (asymmetric omission)."""
        self._check(src)
        self._check(dst)
        if src == dst:
            raise ValueError(f"self-edge at {src}")
        self._oneway_cuts.add((src, dst))
        self.version += 1

    def heal_link_oneway(self, src: int, dst: int) -> None:
        """Restore the ``src`` → ``dst`` direction."""
        self._check(src)
        self._check(dst)
        self._oneway_cuts.discard((src, dst))
        self.version += 1

    def crash_node(self, p: int) -> None:
        """Take processor ``p`` down; all its edges disappear."""
        self._check(p)
        self._down_nodes.add(p)
        self.version += 1

    def recover_node(self, p: int) -> None:
        """Bring ``p`` back; its non-cut links reappear."""
        self._check(p)
        self._down_nodes.discard(p)
        self.version += 1

    def partition(self, blocks: Sequence[Iterable[int]]) -> None:
        """Cut every link between distinct blocks; heal links inside blocks.

        Blocks must be disjoint; processors not mentioned form an
        implicit final block together.
        """
        groups = [set(block) for block in blocks]
        mentioned: set[int] = set()
        for group in groups:
            overlap = mentioned & group
            if overlap:
                raise ValueError(f"blocks overlap on {sorted(overlap)}")
            mentioned |= group
        unknown = mentioned - self.nodes
        if unknown:
            raise ValueError(f"unknown processors {sorted(unknown)}")
        leftovers = set(self.nodes) - mentioned
        if leftovers:
            groups.append(leftovers)
        block_of = {p: i for i, group in enumerate(groups) for p in group}
        for a in self.nodes:
            for b in self.nodes:
                if a < b:
                    if block_of[a] == block_of[b]:
                        self._cut_links.discard(_edge(a, b))
                        self._oneway_cuts.discard((a, b))
                        self._oneway_cuts.discard((b, a))
                    else:
                        self._cut_links.add(_edge(a, b))
        self.version += 1

    def heal_all(self) -> None:
        """Restore the failure-free single clique (links only, not crashes)."""
        self._cut_links.clear()
        self._oneway_cuts.clear()
        self.version += 1

    # -- helpers -----------------------------------------------------------

    def _check(self, p: int) -> None:
        if p not in self.nodes:
            raise KeyError(f"unknown processor {p}")

    def __repr__(self) -> str:
        return (f"CommGraph(n={len(self.nodes)}, cut={len(self._cut_links)}, "
                f"oneway={len(self._oneway_cuts)}, "
                f"down={sorted(self._down_nodes)}, v={self.version})")
