"""Online resharding: placement changes as first-class fault-tolerant ops.

A reshard moves copies between processors *while the cluster serves
transactions* — the elasticity story the placement policies promise
(§"bounded movement" of the hash ring) made operational.  The engine
executes one :class:`ReshardAction` (e.g. "expand the ring onto five
new processors at t=40") as a sequence of per-object migrations, each
a small fault-tolerant protocol of its own:

1. **Stage** — ``CopyPlacement.begin_migration`` records the target
   holders without routing on them.  From this instant a crash-proof
   fence holds: every copy server rejects transactional writes of the
   object (``stale-placement``), so the old copies quiesce even if a
   holder crashes and forgets its volatile write gate.  Reads keep
   flowing — the old placement stays authoritative until the flip.
2. **Gate + install** — the old holders are write-gated by RPC (each
   reply snapshots the copy's date and in-doubt status, atomically
   with the gate), then the joining holders install the object through
   the same ``vpread`` path partition initialization uses (§6): the
   stable-read gate and in-doubt refusals guarantee no uncommitted or
   unresolved value is ever copied.
3. **Verify + flip** — the coordinator re-gates and compares dates: if
   any old copy is newer than the installed floor, or any in-doubt
   write is still unresolved, it loops.  When the round is clean the
   directory entry flips (``commit_migration``) with no intervening
   yield — the flip bumps the object's **placement epoch**, which
   invalidates cached directory routes and fails the R4 stamp check of
   every transaction that accessed the old placement.
4. **Release + retire** — the old holders drop their gates; holders no
   longer in the placement retire their copy, releasing its storage.
   Retiring is refused while the copy still carries unresolved
   transaction state (in-doubt writes, unapplied before-images); the
   coordinator retries until the late decides land.

The coordinator survives its own crash the way the in-doubt resolver
does: every step is journalled into a durable cell through the storage
engine's WAL *before* it takes effect, and a recovery hook resumes the
campaign from the journal — already-flipped objects skip straight to
release, unflipped ones re-run their (idempotent) gate/install/verify
loop.

``guarded=False`` is the deliberately broken variant used as the
hunter's conviction canary: no staging, no gates, no epoch bump — the
auditor must convict it (orphan-copy installs, a flip that does not
advance the epoch), which proves the safety machinery is load-bearing
rather than vacuously green.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: name of the coordinator's durable journal cell
JOURNAL_CELL = "reshard-journal"


@dataclass(frozen=True)
class ReshardAction:
    """One planned placement change: expand the ring onto ``add``.

    A plain picklable record (the :class:`~repro.net.nemesis.
    FaultAction` idiom) so hunter artifacts can carry reshard schedules
    and replay them bit-for-bit.

    ``add`` are the processors joining the assignment ring at ``time``
    (they must already be cluster members — spare capacity held out of
    the initial placement).  ``coordinator`` is the pid driving the
    migration (None = the lowest base pid).  ``guarded=False`` runs the
    unguarded conviction canary described in the module docstring.
    """

    time: float
    add: Tuple[int, ...]
    guarded: bool = True
    coordinator: Optional[int] = None

    def to_dict(self) -> dict:
        return {"time": self.time, "add": list(self.add),
                "guarded": self.guarded, "coordinator": self.coordinator}

    @classmethod
    def from_dict(cls, data: dict) -> "ReshardAction":
        return cls(time=data["time"], add=tuple(data["add"]),
                   guarded=data.get("guarded", True),
                   coordinator=data.get("coordinator"))


@dataclass
class ReshardStats:
    """Coordinator-side counters (per-processor install/retire counts
    live in :class:`~repro.protocols.base.ProtocolMetrics`)."""

    #: objects whose placement changed and were migrated to completion
    objects_moved: int = 0
    #: objects the target assignment left untouched (bounded movement)
    objects_unchanged: int = 0
    #: committed directory flips
    flips: int = 0
    #: gate/install/verify rounds that had to loop (in-doubt writes,
    #: unreachable holders, stale installs)
    verify_retries: int = 0
    #: campaigns resumed from the journal after a coordinator crash
    resumes: int = 0
    #: actions driven to completion
    campaigns_completed: int = 0

    def to_dict(self) -> dict:
        return {
            "objects_moved": self.objects_moved,
            "objects_unchanged": self.objects_unchanged,
            "flips": self.flips,
            "verify_retries": self.verify_retries,
            "resumes": self.resumes,
            "campaigns_completed": self.campaigns_completed,
        }


class ReshardEngine:
    """Drives :class:`ReshardAction` s against a live cluster.

    Built by the experiment runner when a spec carries reshard actions;
    a cluster that never reshards never constructs one (and never
    creates the reshard mailboxes or tasks), keeping default runs
    byte-identical to the golden trace.
    """

    def __init__(self, cluster, policy, objects: Sequence[str],
                 actions: Sequence[ReshardAction]):
        from .policy import PlacementPolicy
        if not isinstance(policy, PlacementPolicy):
            raise TypeError(f"need a PlacementPolicy, got {policy!r}")
        self.cluster = cluster
        self.policy = policy
        self.objects = sorted(objects)
        self.actions: Tuple[ReshardAction, ...] = tuple(
            sorted(actions, key=lambda a: a.time))
        joining = set()
        for action in self.actions:
            joining.update(action.add)
        strangers = sorted(joining - set(cluster.pids))
        if strangers:
            raise ValueError(
                f"reshard adds {strangers} which are not cluster members")
        #: the pids the initial placement should be computed over —
        #: cluster members minus every processor a reshard later adds
        self.base_pids: List[int] = [p for p in cluster.pids
                                     if p not in joining]
        if not self.base_pids:
            raise ValueError("every processor is reshard spare capacity; "
                             "nothing can hold the initial placement")
        self.stats = ReshardStats()
        self._completed: set = set()
        self._campaigns: Dict[int, Any] = {}
        self._enabled = False

    # -- wiring ---------------------------------------------------------------

    def enable(self) -> None:
        """Register the server tasks and schedule every action.

        Idempotent wiring: each protocol gets a ``serve-reshard``
        dispatcher task, each action an injector timer, and each
        coordinator a recovery hook that resumes an interrupted
        campaign from its journal.
        """
        if self._enabled:
            return
        self._enabled = True
        for proto in self.cluster.protocols.values():
            processor = proto.processor
            processor.add_task("serve-reshard", proto.serve_reshard)
            if self.cluster._started and processor.alive:
                processor.start()
        hooked = set()
        for index, action in enumerate(self.actions):
            pid = self._coordinator_of(action)
            if pid not in hooked:
                hooked.add(pid)
                processor = self.cluster.processors[pid]
                processor.on_recover(
                    lambda p=pid: self._resume_coordinator(p))
            self.cluster.injector.at(
                action.time, lambda i=index: self._launch(i),
                f"reshard({index})")

    def _coordinator_of(self, action: ReshardAction) -> int:
        return (action.coordinator if action.coordinator is not None
                else min(self.base_pids))

    def _launch(self, index: int, resumed: bool = False) -> None:
        if index in self._completed:
            return
        action = self.actions[index]
        processor = self.cluster.processors[self._coordinator_of(action)]
        if not processor.alive:
            # The coordinator is down at its scheduled instant; its
            # recovery hook re-launches (the action is not lost).
            return
        running = self._campaigns.get(index)
        if running is not None and running.is_alive:
            return
        self._campaigns[index] = processor.spawn(
            f"reshard-{index}", self._campaign(index, resumed=resumed))

    def _resume_coordinator(self, pid: int) -> None:
        """Recovery hook: relaunch this coordinator's due campaigns."""
        now = self.cluster.sim.now
        for index, action in enumerate(self.actions):
            if (self._coordinator_of(action) == pid
                    and action.time <= now
                    and index not in self._completed):
                self._launch(index, resumed=True)

    # -- the coordinator campaign ---------------------------------------------

    def _campaign(self, index: int, resumed: bool = False):
        action = self.actions[index]
        cluster = self.cluster
        config = cluster.config
        sim = cluster.sim
        processor = cluster.processors[self._coordinator_of(action)]
        # Stacked expansions flip in order: a later action's target
        # assignment presumes the earlier one's placement.
        while any(j not in self._completed for j in range(index)):
            yield sim.timeout(config.delta)
        cell = processor.store.durable_cell(JOURNAL_CELL, None)
        journal = cell.value
        if (journal is not None and journal.get("action") == index
                and journal.get("complete")):
            self._completed.add(index)
            return
        if resumed:
            self.stats.resumes += 1
            if self.cluster.tracer is not None:
                self.cluster.tracer.emit("reshard.resume", pid=processor.pid,
                                         action=index)
        if journal is None or journal.get("action") != index:
            journal = {"action": index, "done": [], "current": None,
                       "complete": False}
            cell.value = journal
        plan = self._plan(index)
        if self.cluster.tracer is not None:
            self.cluster.tracer.emit(
                "reshard.start", pid=processor.pid, action=index,
                moving=len(plan), resumed=resumed)
        pending_obj = (journal["current"] or {}).get("obj")
        work = sorted(set(plan) | ({pending_obj} if pending_obj else set()))
        for obj in work:
            if obj in cell.value["done"]:
                continue
            target = plan.get(obj)
            if target is None:
                # Resumed after the flip of an object the recomputed
                # plan now considers settled; only release remains.
                target = dict(cluster.placement.weights(obj))
            yield from self._migrate(processor, cell, obj, target,
                                     action.guarded)
        self.stats.objects_unchanged += len(self.objects) - \
            len(cell.value["done"])
        cell.value = {"action": index, "done": list(cell.value["done"]),
                      "current": None, "complete": True}
        self.stats.campaigns_completed += 1
        self._completed.add(index)
        if self.cluster.tracer is not None:
            self.cluster.tracer.emit("reshard.done", pid=processor.pid,
                                     action=index)

    def _plan(self, index: int) -> Dict[str, Dict[int, int]]:
        """Objects whose placement the action changes, with targets.

        The target assignment is the policy recomputed over the grown
        membership; unchanged objects are skipped entirely — this is
        what makes the moved-object count equal the policy's bounded-
        movement prediction.
        """
        members = sorted(set(self.base_pids).union(
            *(a.add for a in self.actions[:index + 1])))
        assignment = self.policy.assign(self.objects, members)
        placement = self.cluster.placement
        plan = {}
        for obj in self.objects:
            new = {int(p): int(w) for p, w in assignment[obj].items()}
            if new != dict(placement.weights(obj)):
                plan[obj] = new
        return plan

    def _migrate(self, processor, cell, obj: str,
                 target: Dict[int, int], guarded: bool):
        """Move one object to ``target``; idempotent under resume."""
        cluster = self.cluster
        placement = cluster.placement
        config = cluster.config
        sim = cluster.sim
        current = cell.value.get("current")
        if current and current.get("obj") == obj:
            old = {int(p): int(w) for p, w in current["old"].items()}
            flipped = bool(current.get("flipped"))
        else:
            old = dict(placement.weights(obj))
            flipped = False
            self._journal_current(cell, obj, old, flipped=False)
        adds = sorted(set(target) - set(old))
        drops = sorted(set(old) - set(target))
        size = placement.size(obj)
        if not flipped:
            if guarded:
                yield from self._guarded_cutover(
                    processor, cell, obj, old, target, adds, size)
            else:
                yield from self._unguarded_cutover(
                    processor, cell, obj, old, target, adds, size)
        # Release: every old holder drops its write gate; dropped
        # holders retire the copy.  "busy" (an in-flight decide still
        # needs the copy) and silence retry until they drain.
        waiting = sorted(old)
        while waiting:
            results = yield from processor.scatter_gather(
                waiting, "reshard-release",
                lambda p: {"obj": obj, "retire": p in drops},
                timeout=config.access_timeout,
                label=f"reshard-release({obj})",
            )
            waiting = [p for p in waiting
                       if results[p] is None or not results[p]["ok"]]
            if waiting:
                yield sim.timeout(config.commit_wait)
        done = list(cell.value["done"]) + [obj]
        cell.value = {"action": cell.value["action"], "done": done,
                      "current": None, "complete": False}
        self.stats.objects_moved += 1

    def _guarded_cutover(self, processor, cell, obj: str,
                         old: Dict[int, int], target: Dict[int, int],
                         adds: List[int], size: int):
        """Stage, gate, install, verify, then flip — the safe path."""
        cluster = self.cluster
        placement = cluster.placement
        config = cluster.config
        sim = cluster.sim
        if not placement.pending_copies(obj):
            placement.begin_migration(obj, target, members=cluster.pids)
        while True:
            gates = yield from self._gate_all(processor, obj, sorted(old))
            if any(reply["in_doubt"] for reply in gates.values()):
                self.stats.verify_retries += 1
                yield sim.timeout(config.commit_wait)
                continue
            freshest = None
            for reply in gates.values():
                if self._date_newer(reply["date"], freshest):
                    freshest = reply["date"]
            sources = sorted(p for p in old if gates[p]["date"] == freshest)
            if adds:
                floor = yield from self._install_all(
                    processor, obj, adds, sources, size)
                if floor is _FAILED:
                    self.stats.verify_retries += 1
                    yield sim.timeout(config.delta)
                    continue
                # Verify round: re-gate and compare.  If any old copy
                # carries a date newer than the installed floor (or an
                # in-doubt write appeared), the install is stale — loop.
                gates = yield from self._gate_all(processor, obj,
                                                 sorted(old))
                if any(reply["in_doubt"] for reply in gates.values()):
                    self.stats.verify_retries += 1
                    yield sim.timeout(config.commit_wait)
                    continue
                newest = None
                for reply in gates.values():
                    if self._date_newer(reply["date"], newest):
                        newest = reply["date"]
                if self._date_newer(newest, floor):
                    self.stats.verify_retries += 1
                    continue
            break
        # Flip.  No yield since the last gather returned: the gate
        # snapshot, the epoch bump, and the journal entry are one
        # atomic step of the simulation.
        epoch_before = placement.epoch_of(obj)
        placement.commit_migration(obj)
        self.stats.flips += 1
        self._journal_current(cell, obj, old, flipped=True)
        self._after_flip(processor, obj, old, target,
                         epoch_before, placement.epoch_of(obj), adds)

    def _unguarded_cutover(self, processor, cell, obj: str,
                           old: Dict[int, int], target: Dict[int, int],
                           adds: List[int], size: int):
        """No staging, no gates, no epoch bump — the conviction canary.

        Installs land as orphan copies (nothing was staged), the entry
        is overwritten while transactions still route on it, and stale
        R4 stamps go undetected.  The auditor must convict this; a hunt
        that stays green against it would be vacuous.
        """
        cluster = self.cluster
        placement = cluster.placement
        if adds:
            while True:
                floor = yield from self._install_all(
                    processor, obj, adds, sorted(old), size)
                if floor is not _FAILED:
                    break
                yield cluster.sim.timeout(cluster.config.delta)
        epoch_before = placement.epoch_of(obj)
        placement.replace(obj, target, members=cluster.pids,
                          bump_epoch=False)
        self.stats.flips += 1
        self._journal_current(cell, obj, old, flipped=True)
        self._after_flip(processor, obj, old, target,
                         epoch_before, placement.epoch_of(obj), adds)

    def _after_flip(self, processor, obj: str, old: Dict[int, int],
                    target: Dict[int, int], epoch_before: int,
                    epoch_after: int, adds: List[int]) -> None:
        if self.cluster.auditor is not None:
            self.cluster.auditor.on_reshard_flip(
                time=self.cluster.sim.now, pid=processor.pid, obj=obj,
                old_weights=old, new_weights=target,
                old_epoch=epoch_before, new_epoch=epoch_after,
                installed=adds,
            )
        if self.cluster.tracer is not None:
            self.cluster.tracer.emit(
                "reshard.flip", pid=processor.pid, obj=obj,
                epoch=epoch_after, holders=sorted(target))

    # -- RPC helpers ----------------------------------------------------------

    def _gate_all(self, processor, obj: str, holders: List[int]):
        """Gate every holder; retries silence until all have answered.

        Replies may be assembled across retry rounds — safe because the
        pending-migration fence, not the volatile gate, is what keeps
        writes out (see ``_handle_write``); the gates exist to snapshot
        dates and park well-behaved writers.
        """
        config = self.cluster.config
        replies: Dict[int, Any] = {}
        waiting = list(holders)
        while waiting:
            results = yield from processor.scatter_gather(
                waiting, "reshard-gate", lambda _p: {"obj": obj},
                timeout=config.access_timeout,
                label=f"reshard-gate({obj})",
            )
            for pid in list(waiting):
                if results[pid] is not None:
                    replies[pid] = results[pid]
                    waiting.remove(pid)
            if waiting:
                yield self.cluster.sim.timeout(config.delta)
        return replies

    def _install_all(self, processor, obj: str, adds: List[int],
                     sources: List[int], size: int):
        """Install the copy on every joining holder from ``sources``.

        Returns the oldest installed date (the verification floor), or
        ``_FAILED`` if any holder refused or stayed silent — the caller
        waits and retries the whole round.
        """
        config = self.cluster.config
        results = yield from processor.scatter_gather(
            adds, "reshard-install",
            lambda _p: {"obj": obj, "sources": sources, "size": size},
            # the handler runs a nested vpread under access_timeout;
            # give the outer call room for both legs
            timeout=2 * config.access_timeout + config.delta,
            label=f"reshard-install({obj})",
        )
        floor = _UNSET
        for pid in adds:
            reply = results[pid]
            if reply is None or not reply["ok"]:
                return _FAILED
            if floor is _UNSET or self._date_newer(floor, reply["date"]):
                floor = reply["date"]
        return floor

    # -- misc -----------------------------------------------------------------

    @staticmethod
    def _journal_current(cell, obj: str, old: Dict[int, int],
                         flipped: bool) -> None:
        """Force-write the per-object migration record.

        Fresh dicts every time: the WAL record and any checkpoint hold
        references to the journalled value, so mutating a shared dict
        would silently rewrite history.
        """
        journal = cell.value
        cell.value = {
            "action": journal["action"],
            "done": list(journal["done"]),
            "current": {"obj": obj,
                        "old": {int(p): int(w) for p, w in old.items()},
                        "flipped": flipped},
            "complete": False,
        }

    @staticmethod
    def _date_newer(candidate, reference) -> bool:
        """Strict date order; ``None`` (never written) is oldest."""
        if candidate is None:
            return False
        if reference is None:
            return True
        return candidate > reference

    def __repr__(self) -> str:
        return (f"ReshardEngine({len(self.actions)} actions, "
                f"{len(self.objects)} objects, base={self.base_pids})")


#: sentinels for :meth:`ReshardEngine._install_all`
_FAILED = object()
_UNSET = object()
