"""Shard-aware workload shaping: home-biased per-client object pools.

A sharded deployment places data near the clients that use it; a
scaling benchmark that ignores this measures only the evaporation of
local-copy luck as the cluster grows.  :class:`HomeFirstPools` gives
every client the full keyspace but *ordered* so the objects whose
primary copy lives on the client's own processor come first — under a
Zipf-skewed :class:`~repro.workload.generator.WorkloadGenerator`, rank
order is popularity order, so each client's traffic is mostly
home-shard with a heavy cross-shard tail.  Transactions drawing
several objects routinely mix home and remote shards, which is
exactly the cross-shard 2PC traffic the directory layer routes.

The pools are a pure function of (placement policy, cluster size,
object count, seed): picklable plain data, recomputed identically in
parallel sweep workers, and guaranteed to agree with the placement the
experiment runner installs from the same spec fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .policy import make_policy


def object_names(count: int) -> List[str]:
    """The harness's canonical object naming (``o0`` .. ``o<count-1>``)."""
    return [f"o{i}" for i in range(count)]


def primary_of(assignment: Dict[int, int]) -> int:
    """The primary copy-holder: first key, by the policy contract."""
    return next(iter(assignment))


@dataclass
class HomeFirstPools:
    """Picklable ``objects_for`` callback: home-shard objects first.

    Mirrors the :class:`~repro.workload.runner.ExperimentSpec` fields
    that determine placement, so a spec carrying this callback stays
    self-consistent when it crosses a process boundary.
    """

    placement: str
    processors: int
    objects: int
    degree: int
    seed: int = 0
    _pools: Optional[Dict[int, Tuple[str, ...]]] = field(
        default=None, repr=False, compare=False)

    def __call__(self, pid: int, client: int) -> Tuple[str, ...]:
        if self._pools is None:
            self._pools = self._build()
        return self._pools[pid]

    def _build(self) -> Dict[int, Tuple[str, ...]]:
        pids = list(range(1, self.processors + 1))
        names = object_names(self.objects)
        policy = make_policy(self.placement, degree=self.degree,
                             seed=self.seed)
        assignments = policy.assign(names, pids)
        by_home: Dict[int, List[str]] = {pid: [] for pid in pids}
        for obj in names:
            by_home[primary_of(assignments[obj])].append(obj)
        pools: Dict[int, Tuple[str, ...]] = {}
        for pid in pids:
            home = by_home[pid]
            rest = [obj for obj in names if obj not in set(home)]
            pools[pid] = tuple(home + rest)
        return pools
