"""Sharding & partial replication: placement policies and the directory.

This package scales the system past "one fully-replicated object set
on five nodes": :mod:`~repro.shard.policy` maps thousands of logical
objects onto per-object weighted placements of bounded degree across
arbitrary clusters, :mod:`~repro.shard.directory` is the layer every
processor consults to route reads/writes to copy-holders, and
:mod:`~repro.shard.workload` shapes client traffic around the
resulting shards.  ``benchmarks/bench_scaling.py`` (E15) is the
proof: messages per committed transaction track the replication
degree, not the cluster size.
"""

from .directory import (
    CachedDirectory,
    Directory,
    DirectoryStats,
    LocalDirectory,
    make_directory,
)
from .policy import (
    POLICIES,
    HashRingPolicy,
    LocalityPolicy,
    PlacementPolicy,
    RandomKPolicy,
    WeightedHomePolicy,
    make_policy,
)
from .reshard import ReshardAction, ReshardEngine, ReshardStats
from .workload import HomeFirstPools, object_names, primary_of

__all__ = [
    "POLICIES",
    "CachedDirectory",
    "Directory",
    "DirectoryStats",
    "HashRingPolicy",
    "HomeFirstPools",
    "LocalDirectory",
    "LocalityPolicy",
    "PlacementPolicy",
    "RandomKPolicy",
    "ReshardAction",
    "ReshardEngine",
    "ReshardStats",
    "WeightedHomePolicy",
    "make_directory",
    "make_policy",
    "object_names",
    "primary_of",
]
