"""The directory layer: where transactions find an object's copies.

Fan-out used to assume the local placement table — fine for a handful
of processors with full replication, wrong as a model once thousands of
objects shard across tens-to-hundreds of nodes.  A :class:`Directory`
makes the lookup explicit: every client-side routing decision in
Figs. 10–11 (is this object accessible from my view? which copy do I
read? which copies take the write?) goes through one, and the lookup
traffic becomes a first-class measured quantity.

Two implementations:

* :class:`LocalDirectory` — every processor holds the full placement
  map (the paper's implicit assumption, and the default everywhere).
  Lookups are free and always hit; behaviour is bit-identical to the
  pre-directory code, pinned by the golden trace sha.
* :class:`CachedDirectory` — a bounded LRU over the authoritative map,
  modelling a processor that only materializes entries it routes to.
  Misses consult the authority (charged to the stats, not to model
  time — the entry would ride an existing message in a real system)
  and evict cold entries, so the miss counter is the directory
  bandwidth a deployment at that cache size would pay.

Server-side checks (the R4 vote, recovery's accessibility scans) stay
on the authoritative :class:`~repro.core.views.CopyPlacement`: a vote
must not depend on the voter's cache temperature.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional

from ..core.views import CopyPlacement

#: caller-supplied expected-delay function (usually ``protocol.distance``)
DistanceFn = Callable[[int], float]


@dataclass
class DirectoryStats:
    """Per-processor lookup accounting (plain data, picklable)."""

    #: entry resolutions requested by the routing layer
    lookups: int = 0
    #: lookups served from a local/cached entry
    hits: int = 0
    #: lookups that had to consult the authoritative map
    misses: int = 0
    #: cached entries displaced by capacity pressure
    evictions: int = 0
    #: cached entries dropped because their placement epoch went stale
    #: (a concurrent reshard flipped the authoritative entry) or an
    #: explicit ``invalidate(obj)`` removed them
    invalidations: int = 0


class Directory(ABC):
    """Routes logical accesses to copy-holders."""

    def __init__(self) -> None:
        self.stats = DirectoryStats()

    @abstractmethod
    def entry(self, obj: str) -> Mapping[int, int]:
        """The ``{pid: weight}`` entry for ``obj`` (stats-counted)."""

    def copies(self, obj: str) -> set:
        """The processors holding a copy of ``obj``."""
        return set(self.entry(obj))

    def accessible(self, obj: str, view: Iterable[int]) -> bool:
        """Rule R1's weighted-majority test, off the directory entry."""
        members = set(view)
        weights = self.entry(obj)
        in_view = sum(w for p, w in weights.items() if p in members)
        return 2 * in_view > sum(weights.values())

    def read_candidates(self, obj: str, view: Iterable[int],
                        distance: DistanceFn) -> List[int]:
        """Copy holders inside ``view``, nearest first (rule R2)."""
        members = set(view)
        candidates = [p for p in self.entry(obj) if p in members]
        return sorted(candidates, key=lambda p: (distance(p), p))

    def write_targets(self, obj: str, view: Iterable[int]) -> List[int]:
        """Every copy holder inside ``view`` (rule R3), sorted."""
        members = set(view)
        return sorted(p for p in self.entry(obj) if p in members)

    def route_epoch(self, obj: str) -> int:
        """The placement epoch this directory would route ``obj`` on.

        Stats-free (it rides every access-path stamp); directories
        without an authoritative map report epoch 0, matching a
        placement that was never resharded.
        """
        return 0

    def invalidate(self, obj: str) -> bool:
        """Drop any cached entry for ``obj``; True if one was dropped.

        The base directory caches nothing, so this is a no-op — the
        migration engine calls it unconditionally after a flip.
        """
        return False


class LocalDirectory(Directory):
    """Full placement map on every processor — always hits."""

    def __init__(self, placement: CopyPlacement):
        super().__init__()
        self.placement = placement

    def entry(self, obj: str) -> Mapping[int, int]:
        self.stats.lookups += 1
        self.stats.hits += 1
        return self.placement.weights(obj)

    def read_candidates(self, obj: str, view: Iterable[int],
                        distance: DistanceFn) -> List[int]:
        # Delegate so ordering semantics stay defined in one place.
        self.stats.lookups += 1
        self.stats.hits += 1
        return self.placement.holders_by_distance(obj, view, distance)

    def route_epoch(self, obj: str) -> int:
        # Routes come straight off the authoritative map, so the route
        # epoch is always the live epoch.
        return self.placement.epoch_of(obj)

    def __repr__(self) -> str:
        return f"LocalDirectory({self.placement!r})"


class CachedDirectory(Directory):
    """Bounded LRU over the authoritative placement map.

    Entries are tagged with the placement epoch they were cached at.  A
    lookup whose cached epoch no longer matches the authoritative one
    (a reshard flipped the entry) counts an invalidation and refetches,
    so a flip can at worst cost one extra authority consultation per
    cached route — never a stale read: the access path additionally
    stamps the route epoch into each physical request and servers
    reject mismatches.
    """

    def __init__(self, placement: CopyPlacement, capacity: int = 128):
        super().__init__()
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1: {capacity}")
        self.placement = placement
        self.capacity = capacity
        self._cache: "OrderedDict[str, tuple[int, Dict[int, int]]]" = \
            OrderedDict()

    def entry(self, obj: str) -> Mapping[int, int]:
        self.stats.lookups += 1
        cached = self._cache.get(obj)
        if cached is not None:
            epoch, weights = cached
            if epoch == self.placement.epoch_of(obj):
                self.stats.hits += 1
                self._cache.move_to_end(obj)
                return weights
            del self._cache[obj]
            self.stats.invalidations += 1
        self.stats.misses += 1
        epoch = self.placement.epoch_of(obj)
        weights = dict(self.placement.weights(obj))
        self._cache[obj] = (epoch, weights)
        if len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
            self.stats.evictions += 1
        return weights

    def route_epoch(self, obj: str) -> int:
        cached = self._cache.get(obj)
        if cached is not None:
            return cached[0]
        return self.placement.epoch_of(obj)

    def invalidate(self, obj: str) -> bool:
        if self._cache.pop(obj, None) is None:
            return False
        self.stats.invalidations += 1
        return True

    def __repr__(self) -> str:
        return (f"CachedDirectory(capacity={self.capacity}, "
                f"cached={len(self._cache)})")


#: directory factory signature used by the cluster: (pid, placement)
DirectoryFactory = Callable[[int, CopyPlacement], Directory]


def make_directory(name: str,
                   capacity: Optional[int] = None) -> DirectoryFactory:
    """Resolve a directory kind name to a per-processor factory."""
    if name == "local":
        return lambda _pid, placement: LocalDirectory(placement)
    if name == "cached":
        return lambda _pid, placement: CachedDirectory(
            placement, capacity=capacity or 128)
    raise KeyError(
        f"unknown directory kind {name!r}; choose from ['local', 'cached']")
