"""Placement policies: map thousands of logical objects onto per-object
weighted placements of bounded degree.

The paper's §4 machinery (``CopyPlacement``, rule R1's weighted
majority) already supports *arbitrary* per-object placements — Example
2's a²b/b²c/c²d/d²a layout is the seed — but every experiment so far
enumerated objects by hand.  A :class:`PlacementPolicy` turns that into
a bulk operation: given the object names and the cluster's processors,
it returns one ``{pid: weight}`` assignment per object, with the
**primary** copy-holder first (dict insertion order is the contract —
the workload layer derives home-shard affinity from it).

All policies are deterministic pure functions of their parameters:
hash-based ones derive every choice from sha256 (like
:mod:`repro.sim.rng`), and :class:`RandomKPolicy` draws from named
:class:`~repro.sim.rng.RandomStreams` substreams, so the same spec
always yields the same sharding on any machine.
"""

from __future__ import annotations

import bisect
import hashlib
from abc import ABC, abstractmethod
from typing import Dict, List, Sequence

from ..sim.rng import RandomStreams

#: one object's placement: ``{pid: weight}``, primary holder first
Assignment = Dict[int, int]


def _hash(token: str) -> int:
    """A stable 64-bit hash (process-independent, unlike ``hash()``)."""
    digest = hashlib.sha256(token.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class PlacementPolicy(ABC):
    """Assigns copy-holders (and weights) to logical objects in bulk."""

    #: short identifier used by specs, the CLI, and benchmark tables
    name: str = "abstract"

    def __init__(self, degree: int = 3):
        if degree < 1:
            raise ValueError(f"replication degree must be >= 1: {degree}")
        self.degree = degree

    def assign(self, objects: Sequence[str],
               pids: Sequence[int]) -> Dict[str, Assignment]:
        """``{obj: {pid: weight}}`` for every object, primary first."""
        ring = sorted(set(pids))
        if not ring:
            raise ValueError("cannot place objects on an empty cluster")
        if self.degree > len(ring):
            raise ValueError(
                f"{self.name}: replication degree {self.degree} exceeds "
                f"the cluster size {len(ring)}"
            )
        return {obj: self._one(index, obj, ring)
                for index, obj in enumerate(objects)}

    @abstractmethod
    def _one(self, index: int, obj: str, ring: List[int]) -> Assignment:
        """The placement of one object; ``ring`` is the sorted pid list."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(degree={self.degree})"


class HashRingPolicy(PlacementPolicy):
    """Consistent hashing: each processor owns ``vnodes`` points on a
    ring; an object hashes to a point and takes the next ``degree``
    distinct processors clockwise (all weight 1).

    Adding or removing one processor moves only the objects whose
    arc it owned — the classic elasticity argument — and the vnode
    count trades balance for ring size.
    """

    name = "hash-ring"

    def __init__(self, degree: int = 3, vnodes: int = 64):
        super().__init__(degree)
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1: {vnodes}")
        self.vnodes = vnodes
        self._ring_for: Dict[tuple, tuple] = {}

    def _ring(self, pids: List[int]) -> tuple:
        key = tuple(pids)
        if key not in self._ring_for:
            points = sorted(
                (_hash(f"node:{pid}:{v}"), pid)
                for pid in pids for v in range(self.vnodes)
            )
            self._ring_for[key] = (
                [p[0] for p in points], [p[1] for p in points])
        return self._ring_for[key]

    def _one(self, index: int, obj: str, ring: List[int]) -> Assignment:
        hashes, owners = self._ring(ring)
        start = bisect.bisect_left(hashes, _hash(f"obj:{obj}"))
        holders: List[int] = []
        for step in range(len(owners)):
            pid = owners[(start + step) % len(owners)]
            if pid not in holders:
                holders.append(pid)
                if len(holders) == self.degree:
                    break
        return {pid: 1 for pid in holders}


class RandomKPolicy(PlacementPolicy):
    """``degree`` holders drawn uniformly per object (all weight 1).

    Every object draws from its own named substream of one master
    seed, so placements are independent across objects yet fully
    reproducible — and insensitive to the order objects are declared.
    """

    name = "random-k"

    def __init__(self, degree: int = 3, seed: int = 0):
        super().__init__(degree)
        self.streams = RandomStreams(seed)

    def _one(self, index: int, obj: str, ring: List[int]) -> Assignment:
        rng = self.streams.stream(f"place:{obj}")
        holders = rng.sample(ring, self.degree)
        return {pid: 1 for pid in holders}


class WeightedHomePolicy(PlacementPolicy):
    """Example 2's layout, generalized: object ``i``'s *home* processor
    (round-robin on the ring) holds a copy of weight ``degree``; the
    next ``degree - 1`` ring successors hold weight-1 copies.

    Total weight is ``2*degree - 1``, so the home copy alone is a
    weighted majority while *all* the light copies together are not:
    the object is accessible exactly in views containing its home.
    With 4 processors and ``degree=2`` this reproduces the paper's
    a²b / b²c / c²d / d²a placement verbatim.
    """

    name = "weighted-home"

    def _one(self, index: int, obj: str, ring: List[int]) -> Assignment:
        home = index % len(ring)
        weights: Assignment = {ring[home]: self.degree}
        for step in range(1, self.degree):
            weights[ring[(home + step) % len(ring)]] = 1
        return weights


class LocalityPolicy(PlacementPolicy):
    """Zone-local placement: processors are grouped into contiguous
    zones of ``zone_size``; an object's copies fill its home zone
    first (home processor, then its zone peers), spilling onto the
    ring only when the degree exceeds the zone (all weight 1).

    This is the placement a geo-replicated deployment wants: a zone
    (rack, datacenter) holds a majority of most objects' copies, so
    zone-local views keep them accessible when the WAN flaps.
    """

    name = "locality"

    def __init__(self, degree: int = 3, zone_size: int = 5):
        super().__init__(degree)
        if zone_size < 1:
            raise ValueError(f"zone_size must be >= 1: {zone_size}")
        self.zone_size = zone_size

    def _one(self, index: int, obj: str, ring: List[int]) -> Assignment:
        home = index % len(ring)
        zone_start = (home // self.zone_size) * self.zone_size
        zone = [ring[i] for i in range(
            zone_start, min(zone_start + self.zone_size, len(ring)))]
        ordered = zone[home - zone_start:] + zone[:home - zone_start]
        for step in range(1, len(ring)):  # spill past the zone if needed
            pid = ring[(zone_start + self.zone_size - 1 + step) % len(ring)]
            if pid not in ordered:
                ordered.append(pid)
        return {pid: 1 for pid in ordered[:self.degree]}


#: policy registry: name -> constructor(degree=..., seed=...)
POLICIES = {
    HashRingPolicy.name: HashRingPolicy,
    RandomKPolicy.name: RandomKPolicy,
    WeightedHomePolicy.name: WeightedHomePolicy,
    LocalityPolicy.name: LocalityPolicy,
}


def make_policy(name: str, degree: int = 3, seed: int = 0,
                **kwargs: int) -> PlacementPolicy:
    """Resolve a policy name (as specs and the CLI carry it) to an
    instance.  ``seed`` only matters to seeded policies."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown placement policy {name!r}; choose from "
            f"{sorted(POLICIES)}"
        ) from None
    if cls is RandomKPolicy:
        return cls(degree=degree, seed=seed, **kwargs)
    return cls(degree=degree, **kwargs)
