"""Runtime invariant auditing for replica control runs."""

from .auditor import AuditViolation, InvariantAuditor

__all__ = ["AuditViolation", "InvariantAuditor"]
