"""The runtime invariant auditor: S1–S3, R1/R3/R5 and commit safety, live.

The end-of-run checkers (``analysis.one_copy``, the property tests)
judge a finished history; the auditor asserts the paper's invariants *as
events happen*, so a violation is caught at the instant it occurs and
carries the trace context that produced it — which is what a campaign
hunter needs to shrink a failing schedule into a story.

The auditor is pure observation: hooks are one ``if auditor is not
None`` away from the hot paths, it never mutates protocol state, draws
no randomness, and schedules no events — an audited run is
event-for-event identical to an unaudited one.

What it checks, mapped to the paper:

* **S1** (view consistency): every virtual partition commits exactly one
  view — a second join of the same vpid with a different view is flagged.
* **S2** (reflexivity): a processor only joins views containing itself.
* **S3** (serializability of partitions): if ``p ∈ members(v)`` and
  ``p ∈ view(w)`` for ``v ≺ w``, then ``p`` departed ``v`` no later than
  the first join of ``w``.  Same-instant races are held as *pending* and
  resolved by the matching depart; ``finalize()`` flags the leftovers.
* **R1** (accessibility): every logical access happens in a partition
  whose view makes the object accessible (weighted majority).
* **R3** (write all copies): a logical write's target set is exactly the
  object's copies inside the partition's view.
* **R5 + view match** (physical access): a server never serves a copy
  that is update-locked, never serves a partition it is not currently
  committed to, and only serves objects it holds a copy of.
* **Commit safety** (backend-agnostic): a decider's outcome never
  flips once decided, and all processors apply the same outcome for a
  transaction — the contract of every atomic-commit backend, whether
  the decider is a 2PC coordinator or a Paxos Commit recovery leader.
* **Lease staleness** (client tier): a lease-served read at time ``t``
  with bound ``B = L + Δ`` must return a version at least as new as
  the newest version whose commit was applied anywhere by ``t − B``.
  Version tokens carry no order, so the auditor orders them by
  first-apply time (the ``on_committed_write`` timeline); it also
  flags serving past the lease's expiry and grants violating the
  ``L ≤ π`` rule.
* **Placement epochs** (online resharding): R1/R3 are judged against
  the placement the access actually routed on — the live entry when
  the access's epoch stamp matches, the weights recorded at the flip
  otherwise — so a legitimate access racing a migration flip is not a
  false positive.  A flip must advance the object's epoch by exactly
  one (``on_reshard_flip``), a copy may only be installed on a live or
  migration-pending holder (``on_copy_installed``, the *no-orphan-copy*
  invariant), and a copy may only be retired once the live placement
  no longer routes to it (``on_copy_retired``).  An *unguarded* flip —
  one that rewrites the entry without staging or an epoch bump — is
  convicted by exactly these checks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, FrozenSet, Optional, Tuple


@dataclass(frozen=True)
class AuditViolation:
    """One invariant violation with the trace context that led to it."""

    time: float
    invariant: str
    pid: Optional[int]
    detail: str
    context: Tuple = ()

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "invariant": self.invariant,
            "pid": self.pid,
            "detail": self.detail,
            "context": [dict(c) for c in self.context],
        }

    def __str__(self) -> str:
        return f"[t={self.time:.2f}] {self.invariant} @p{self.pid}: {self.detail}"


class InvariantAuditor:
    """Continuously asserts S1–S3, R1/R3/R5 and commit safety."""

    def __init__(self, placement=None, context_size: int = 24):
        self.placement = placement
        self.violations: list[AuditViolation] = []
        #: optional :class:`~repro.obs.trace.Tracer`; None = no tracing
        self.tracer = None
        self._context: deque = deque(maxlen=context_size)
        # view-protocol state (S1-S3)
        self._views: dict = {}          # vpid -> committed view
        self._members: dict = {}        # vpid -> pids that joined it
        self._first_join: dict = {}     # vpid -> time of first join
        self._first_depart: dict = {}   # (pid, vpid) -> first depart time
        self._pending_s3: list = []     # (new_vpid, join_time, pid, old_vpid)
        # commit-outcome state
        self._coord_log: dict = {}      # (pid, txn) -> last logged decision
        self._decided: dict = {}        # txn -> first commit/abort decided
        self._applied: dict = {}        # txn -> first outcome applied anywhere
        # client-tier lease state: per-object committed-version timeline
        self._commit_times: dict = {}   # obj -> [first-apply time, ...]
        self._commit_index: dict = {}   # (obj, version) -> timeline index
        # reshard state: weights each retired epoch routed on
        self._placement_history: dict = {}  # (obj, epoch) -> {pid: weight}

    # -- verdict ---------------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.violations

    def finalize(self) -> None:
        """Flag S3 obligations that never resolved (missing departs)."""
        for new_vpid, join_time, pid, old_vpid in self._pending_s3:
            depart = self._first_depart.get((pid, old_vpid))
            if depart is not None and depart <= join_time:
                continue
            self._violate(
                join_time, "S3", pid,
                f"in view of {new_vpid} but never departed {old_vpid} "
                f"(first join of {new_vpid} at {join_time})",
            )
        self._pending_s3 = []

    def report(self) -> str:
        if self.ok:
            return "auditor: all invariants held"
        return "\n".join(str(v) for v in self.violations)

    # -- view-protocol hooks (wired through History) ---------------------------

    def on_join(self, *, time: float, pid: int, vpid: Any,
                view: FrozenSet[int]) -> None:
        self._note("join", time, pid, vpid=str(vpid), view=sorted(view))
        seen = self._views.get(vpid)
        if seen is None:
            self._views[vpid] = view
            self._first_join[vpid] = time
            # S3 against every older partition already known
            for old_vpid, members in self._members.items():
                if not old_vpid < vpid:
                    continue
                for q in members & view:
                    self._require_depart(vpid, time, q, old_vpid)
        elif view != seen:
            self._violate(
                time, "S1", pid,
                f"{vpid} committed two views: {sorted(seen)} vs {sorted(view)}",
            )
        if pid not in view:
            self._violate(
                time, "S2", pid,
                f"joined {vpid} with view {sorted(view)} not containing itself",
            )
        # a late join of an old partition while a newer view includes us
        for newer, newer_view in self._views.items():
            if vpid < newer and pid in newer_view:
                self._require_depart(newer, self._first_join[newer], pid, vpid)
        self._members.setdefault(vpid, set()).add(pid)

    def on_depart(self, *, time: float, pid: int, vpid: Any) -> None:
        self._note("depart", time, pid, vpid=str(vpid))
        self._first_depart.setdefault((pid, vpid), time)
        still_pending = []
        for pending in self._pending_s3:
            new_vpid, join_time, p, old_vpid = pending
            if (p, old_vpid) != (pid, vpid):
                still_pending.append(pending)
                continue
            depart = self._first_depart[(pid, vpid)]
            if depart > join_time:
                self._violate(
                    time, "S3", pid,
                    f"departed {old_vpid} at {depart} after the first join "
                    f"of {new_vpid} at {join_time}",
                )
        self._pending_s3 = still_pending

    def _require_depart(self, new_vpid: Any, join_time: float, pid: int,
                        old_vpid: Any) -> None:
        depart = self._first_depart.get((pid, old_vpid))
        if depart is not None and depart <= join_time:
            return
        # the matching depart may still land at this same instant —
        # hold the obligation and let on_depart/finalize() resolve it
        self._pending_s3.append((new_vpid, join_time, pid, old_vpid))

    # -- access hooks (wired through AccessMixin) ------------------------------

    def on_logical_access(self, *, time: float, pid: int, txn: Any, kind: str,
                          obj: str, vpid: Any, targets: Tuple[int, ...],
                          epoch: int = 0) -> None:
        self._note("logical", time, pid, txn=str(txn), kind=kind, obj=obj,
                   vpid=str(vpid))
        if self.placement is None:
            return
        view = self._views.get(vpid)
        if view is None:
            return  # a partition the auditor never saw committed; S-checks
        # Judge against the placement the access routed on: an access
        # stamped with an epoch a migration has since flipped is aborted
        # by the R4 stamp check, not an R1/R3 violation.
        weights = self._weights_for(obj, epoch)
        in_view = sum(w for p, w in weights.items() if p in view)
        if 2 * in_view <= sum(weights.values()):
            self._violate(
                time, "R1", pid,
                f"txn {txn} {kind}({obj}) in {vpid} whose view {sorted(view)} "
                "does not make the object accessible",
            )
        if kind == "w":
            expected = set(weights) & set(view)
            if set(targets) != expected:
                self._violate(
                    time, "R3", pid,
                    f"txn {txn} wrote {obj} at {sorted(targets)}, R3 requires "
                    f"all in-view copies {sorted(expected)}",
                )

    def _weights_for(self, obj: str, epoch: int) -> dict:
        """The ``{pid: weight}`` entry the access routed on.

        Live placement when the stamp matches the object's current
        epoch; the weights recorded by the retiring flip otherwise.  A
        stale epoch with no recorded flip falls back to the live entry
        — exactly the pre-reshard behaviour.
        """
        if epoch != self.placement.epoch_of(obj):
            recorded = self._placement_history.get((obj, epoch))
            if recorded is not None:
                return recorded
        return dict(self.placement.weights(obj))

    def on_physical_access(self, *, time: float, pid: int, txn: Any,
                           kind: str, obj: str, vpid: Any, state) -> None:
        self._note("physical", time, pid, txn=str(txn), kind=kind, obj=obj,
                   vpid=str(vpid))
        if obj in state.locked:
            self._violate(
                time, "R5", pid,
                f"served {kind}({obj}) for txn {txn} while the copy is "
                "update-locked",
            )
        if not state.assigned or state.cur_id != vpid:
            current = state.cur_id if state.assigned else None
            self._violate(
                time, "view-match", pid,
                f"served {kind}({obj}) for partition {vpid} while committed "
                f"to {current}",
            )
        elif pid not in state.lview:
            self._violate(
                time, "S2", pid,
                f"assigned to {vpid} with view {sorted(state.lview)} not "
                "containing itself",
            )
        if self.placement is not None and pid not in self.placement.copies(obj):
            self._violate(
                time, "placement", pid,
                f"served {kind}({obj}) without holding a copy",
            )

    # -- reshard hooks (wired through the migration engine) --------------------

    def on_reshard_flip(self, *, time: float, pid: int, obj: str,
                        old_weights, new_weights, old_epoch: int,
                        new_epoch: int, installed) -> None:
        """A migration flipped ``obj``'s directory entry.

        Records the retiring epoch's weights so in-flight accesses
        stamped with it are judged against the placement they actually
        routed on, and convicts flips that skip the epoch bump or route
        to holders that never installed a copy.
        """
        self._note("reshard-flip", time, pid, obj=obj, old_epoch=old_epoch,
                   new_epoch=new_epoch)
        self._placement_history[(obj, old_epoch)] = dict(old_weights)
        if new_epoch != old_epoch + 1:
            self._violate(
                time, "placement-epoch", pid,
                f"flip of {obj} moved the placement epoch {old_epoch} -> "
                f"{new_epoch}; a committed migration must advance it by "
                "exactly one",
            )
        ghosts = sorted(set(new_weights) - set(old_weights) - set(installed))
        if ghosts:
            self._violate(
                time, "reshard-install", pid,
                f"flip of {obj} routes to {ghosts} which never installed "
                "a copy",
            )

    def on_copy_installed(self, *, time: float, pid: int, obj: str) -> None:
        """A reshard materialized a copy of ``obj`` on ``pid``.

        The no-orphan-copy invariant: a copy may only appear on a
        processor the live placement routes to or a staged migration is
        about to — anything else is unreachable storage that R3 will
        never write and R5 will never refresh.
        """
        self._note("reshard-install", time, pid, obj=obj)
        if self.placement is None:
            return
        allowed = self.placement.copies(obj) | \
            self.placement.pending_copies(obj)
        if pid not in allowed:
            self._violate(
                time, "orphan-copy", pid,
                f"installed a copy of {obj} on a processor outside both "
                f"the live placement {sorted(self.placement.copies(obj))} "
                "and any staged migration",
            )

    def on_copy_retired(self, *, time: float, pid: int, obj: str) -> None:
        """A reshard released ``pid``'s copy of ``obj``."""
        self._note("reshard-retire", time, pid, obj=obj)
        if self.placement is None:
            return
        if pid in self.placement.copies(obj):
            self._violate(
                time, "orphan-copy", pid,
                f"retired the copy of {obj} while the live placement "
                "still routes to it",
            )

    # -- atomic-commit hooks -------------------------------------------------------------

    def on_decision(self, time: float, pid: int, txn: Any,
                    outcome: str) -> None:
        self._note("decision", time, pid, txn=str(txn), outcome=outcome)
        key = (pid, txn)
        old = self._coord_log.get(key)
        if old in ("commit", "abort") and outcome != old:
            self._violate(
                time, "commit-decision", pid,
                f"coordinator flipped txn {txn}: {old} -> {outcome}",
            )
        self._coord_log[key] = outcome
        if outcome in ("commit", "abort"):
            first = self._decided.setdefault(txn, outcome)
            if first != outcome:
                self._violate(
                    time, "commit-decision", pid,
                    f"txn {txn} decided {outcome} after {first} elsewhere",
                )
            applied = self._applied.get(txn)
            if applied is not None and applied != outcome:
                self._violate(
                    time, "commit-decision", pid,
                    f"txn {txn} decided {outcome} after a processor already "
                    f"applied {applied}",
                )

    def on_decision_applied(self, time: float, pid: int, txn: Any,
                            outcome: str) -> None:
        self._note("apply", time, pid, txn=str(txn), outcome=outcome)
        first = self._applied.setdefault(txn, outcome)
        if first != outcome:
            self._violate(
                time, "commit-apply", pid,
                f"txn {txn} applied as {outcome} here but {first} elsewhere",
            )
        decided = self._decided.get(txn)
        if decided is not None and outcome != decided:
            self._violate(
                time, "commit-apply", pid,
                f"txn {txn} applied as {outcome}, coordinator logged {decided}",
            )

    # -- client-tier lease hooks -----------------------------------------------

    def on_committed_write(self, *, time: float, pid: int, obj: str,
                           version: Any) -> None:
        """A processor applied a commit that wrote ``obj``.

        First apply wins: the same (obj, version) lands at every copy
        holder, and the *earliest* apply is the moment the write could
        first be observed — the conservative anchor for the staleness
        check.  Strict 2PL orders writes of one object identically at
        every copy, so first-apply order is the version order.
        """
        self._note("commit-write", time, pid, obj=obj, version=str(version))
        key = (obj, version)
        if key in self._commit_index:
            return
        timeline = self._commit_times.setdefault(obj, [])
        self._commit_index[key] = len(timeline)
        timeline.append(time)

    def on_lease_grant(self, *, time: float, pid: int, obj: str,
                       version: Any, duration: float, pi: float) -> None:
        """A processor granted a lease; enforce the L <= pi rule."""
        self._note("lease-grant", time, pid, obj=obj, version=str(version),
                   duration=duration)
        if duration > pi + 1e-9:
            self._violate(
                time, "lease-rule", pid,
                f"granted a {duration}-lease on {obj} with pi={pi}: the "
                "staleness derivation requires L <= pi",
            )

    def on_lease_read(self, *, time: float, pid: int, obj: str,
                      version: Any, expires_at: float,
                      bound: float) -> None:
        """A read was served from a lease; check expiry and staleness.

        The served version must be at least as new as the newest
        version committed (first applied anywhere) by ``time - bound``.
        A version absent from the timeline is the initial value, older
        than every committed write.
        """
        self._note("lease-read", time, pid, obj=obj, version=str(version),
                   bound=bound)
        if time > expires_at + 1e-9:
            self._violate(
                time, "lease-expired", pid,
                f"served {obj} from a lease that expired at {expires_at}",
            )
        timeline = self._commit_times.get(obj, [])
        horizon = time - bound
        # newest timeline index whose first-apply time is <= horizon
        newest_due = -1
        for index, applied_at in enumerate(timeline):
            if applied_at <= horizon:
                newest_due = index
        served = self._commit_index.get((obj, version), -1)
        if served < newest_due:
            self._violate(
                time, "lease-staleness", pid,
                f"lease served {obj} version {version} (commit #{served}) "
                f"at t={time}, but commit #{newest_due} was applied at "
                f"{timeline[newest_due]} <= t - bound ({horizon}): the "
                f"value is staler than the bound {bound} allows",
            )

    # -- internals -------------------------------------------------------------

    def _note(self, event: str, time: float, pid: int, **info) -> None:
        entry = {"event": event, "time": time, "pid": pid}
        entry.update(info)
        self._context.append(entry)

    def _violate(self, time: float, invariant: str, pid: Optional[int],
                 detail: str) -> None:
        violation = AuditViolation(
            time=time, invariant=invariant, pid=pid, detail=detail,
            context=tuple(dict(c) for c in self._context),
        )
        self.violations.append(violation)
        if self.tracer is not None:
            self.tracer.emit("audit.violation", pid=pid or 0,
                             invariant=invariant, detail=detail)

    def __repr__(self) -> str:
        return (f"InvariantAuditor(violations={len(self.violations)}, "
                f"views={len(self._views)})")
