"""The public entry point: build and run a replicated database cluster.

Typical use (see ``examples/quickstart.py``)::

    from repro import Cluster

    cluster = Cluster(processors=3, seed=42)
    cluster.place("x", holders=[1, 2, 3], initial=0)
    cluster.start()

    def body(txn):
        value = yield from txn.read("x")
        yield from txn.write("x", value + 1)
        return value

    outcome = cluster.submit(1, body)
    cluster.run(until=50.0)
    print(outcome.value)           # (True, 0)
    print(cluster.check_one_copy_serializable())
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Mapping, Optional

from .analysis.history import INITIAL_VERSION, History
from .cc.transactions import TransactionManager
from .core.config import ProtocolConfig
from .core.protocol import VirtualPartitionProtocol, bootstrap_partition
from .core.views import CopyPlacement
from .net.failures import FailureInjector
from .net.latency import FixedLatency, LatencyModel
from .net.network import Network
from .net.topology import CommGraph
from .node.processor import Processor
from .node.storage import StorageEngine, StoragePolicy
from .sim import RandomStreams, Simulator

#: protocol factory signature: (processor, placement, config, history,
#: latency, all_pids) -> ReplicaControlProtocol
ProtocolFactory = Callable[..., Any]


class Cluster:
    """A simulated distributed database under one replica control protocol."""

    def __init__(self, processors: int | Iterable[int] = 3, seed: int = 0,
                 latency: Optional[LatencyModel] = None,
                 config: Optional[ProtocolConfig] = None,
                 protocol: Optional[ProtocolFactory] = None,
                 loss_prob: float = 0.0, slow_prob: float = 0.0,
                 slow_factor: float = 5.0,
                 trace: "bool | Any" = False,
                 audit: "bool | Any" = False,
                 directory: "Optional[str | Any]" = None,
                 directory_capacity: Optional[int] = None):
        if isinstance(processors, int):
            pids = list(range(1, processors + 1))
        else:
            pids = sorted(set(processors))
        if not pids:
            raise ValueError("need at least one processor")
        self.pids = pids
        self.sim = Simulator()
        self.streams = RandomStreams(seed)
        self.latency = latency or FixedLatency(1.0)
        self.config = config or ProtocolConfig(delta=self.latency.bound)
        if self.config.delta < self.latency.bound:
            raise ValueError(
                f"config.delta={self.config.delta} is below the latency "
                f"bound {self.latency.bound}: the protocol's timers would "
                "misfire on legitimate delays"
            )
        self.graph = CommGraph(pids)
        self.network = Network(
            self.sim, self.graph, self.latency,
            self.streams.stream("network"),
            loss_prob=loss_prob, slow_prob=slow_prob, slow_factor=slow_factor,
            batch_window=self.config.batch_window,
        )
        self.history = History()
        self.placement = CopyPlacement()
        storage_policy = StoragePolicy(
            checkpoint_every=self.config.checkpoint_every,
            log_retain=self.config.log_retain,
        )
        self.processors: Dict[int, Processor] = {
            pid: Processor(pid, self.sim, self.network,
                           store=StorageEngine(pid, policy=storage_policy))
            for pid in pids
        }
        factory = protocol or VirtualPartitionProtocol
        self.protocols: Dict[int, Any] = {
            pid: factory(self.processors[pid], self.placement, self.config,
                         self.history, self.latency, frozenset(pids))
            for pid in pids
        }
        self.tms: Dict[int, TransactionManager] = {
            pid: TransactionManager(self.protocols[pid], self.history)
            for pid in pids
        }
        if directory is not None:
            from .shard.directory import make_directory
            dir_factory = (make_directory(directory, directory_capacity)
                           if isinstance(directory, str) else directory)
            for pid, proto in self.protocols.items():
                if hasattr(proto, "directory"):
                    proto.directory = dir_factory(pid, self.placement)
        #: per-processor routing directories (protocols that have one)
        self.directories: Dict[int, Any] = {
            pid: proto.directory for pid, proto in self.protocols.items()
            if hasattr(proto, "directory")
        }
        self.injector = FailureInjector(self.sim, self.graph, self.processors,
                                        network=self.network)
        #: structured trace sink; None unless ``trace`` was requested
        self.tracer = None
        if trace:
            from .obs.trace import Tracer
            tracer = trace if isinstance(trace, Tracer) else Tracer(self.sim)
            self._wire_tracer(tracer)
        #: runtime invariant auditor; None unless ``audit`` was requested
        self.auditor = None
        if audit:
            from .audit import InvariantAuditor
            monitor = (audit if isinstance(audit, InvariantAuditor)
                       else InvariantAuditor(self.placement))
            self._wire_auditor(monitor)
        self._started = False

    def _wire_tracer(self, tracer) -> None:
        """Install ``tracer`` on every instrumented layer of the cluster."""
        self.tracer = tracer
        self.network.tracer = tracer
        self.injector.tracer = tracer
        for processor in self.processors.values():
            processor.tracer = tracer
        for proto in self.protocols.values():
            if hasattr(proto, "set_tracer"):
                proto.set_tracer(tracer)
            else:
                proto.tracer = tracer
        for tm in self.tms.values():
            tm.tracer = tracer

    def _wire_auditor(self, auditor) -> None:
        """Install the runtime invariant ``auditor`` on every hook point."""
        self.auditor = auditor
        auditor.tracer = self.tracer
        self.history.auditor = auditor
        for proto in self.protocols.values():
            if hasattr(proto, "auditor"):
                proto.auditor = auditor

    # -- setup -----------------------------------------------------------------

    def place(self, obj: str, holders: Mapping[int, int] | Iterable[int],
              initial: Any = None, size: int = 1) -> None:
        """Declare a logical object, its copy holders/weights, and initial
        value (installed on every copy with the T0 version)."""
        self.placement.place(obj, holders, size=size, members=self.pids)
        self._install_initial(obj, initial, size)

    def place_many(self, assignments: Mapping[str, Mapping[int, int]
                                              | Iterable[int]],
                   initial: Any = None, size: int = 1) -> None:
        """Declare many objects at once (all-or-nothing), e.g. from a
        :meth:`~repro.shard.policy.PlacementPolicy.assign` result."""
        self.placement.place_many(assignments, size=size, members=self.pids)
        for obj in assignments:
            self._install_initial(obj, initial, size)

    def shard(self, policy: "str | Any", objects: Iterable[str],
              degree: int = 3, seed: int = 0, initial: Any = None,
              pids: Optional[Iterable[int]] = None) -> None:
        """Policy-driven setup: shard ``objects`` across the cluster.

        ``policy`` is a policy name (see :data:`repro.shard.POLICIES`)
        or a ready :class:`~repro.shard.policy.PlacementPolicy`.
        ``pids`` restricts the initial assignment to a subset of the
        cluster (the rest stay copy-free members — e.g. spare capacity
        a later reshard expands onto).
        """
        from .shard.policy import PlacementPolicy, make_policy
        if not isinstance(policy, PlacementPolicy):
            policy = make_policy(policy, degree=degree, seed=seed)
        over = self.pids if pids is None else sorted(set(pids))
        strangers = sorted(set(over) - set(self.pids))
        if strangers:
            raise ValueError(
                f"cannot shard over {strangers}: not cluster members")
        self.place_many(policy.assign(list(objects), over), initial=initial)

    def _install_initial(self, obj: str, initial: Any, size: int) -> None:
        for pid in self.placement.copies(obj):
            self.processors[pid].store.place(
                obj, initial=initial, date=None, size=size,
                version=INITIAL_VERSION,
            )

    def start(self, bootstrap: bool = True) -> None:
        """Attach protocols and spawn their tasks.

        ``bootstrap=True`` starts all processors jointly committed to one
        initial partition (an operator-booted system); ``False`` starts
        each alone and lets probing merge them — useful for measuring
        convergence itself.
        """
        if self._started:
            raise RuntimeError("cluster already started")
        for pid in self.pids:
            self.protocols[pid].attach()
        if bootstrap and hasattr(self.protocols[self.pids[0]], "state"):
            bootstrap_partition(list(self.protocols.values()))
        for pid in self.pids:
            self.processors[pid].start()
        self._started = True

    # -- execution -----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Advance the simulation (see :meth:`Simulator.run`)."""
        self.sim.run(until=until)

    def submit(self, pid: int, body: Callable, retries: int = 0,
               backoff: Optional[float] = None):
        """Launch ``body`` as a transaction at processor ``pid``.

        Returns the driving process; after the run, ``process.value`` is
        ``(committed, result_or_reason)``.
        """
        tm = self.tms[pid]
        return self.sim.process(
            tm.run(body, retries=retries, backoff=backoff),
            name=f"txn@p{pid}",
        )

    def read_once(self, pid: int, obj: str):
        """Convenience: a single-read transaction at ``pid``."""
        def body(txn):
            value = yield from txn.read(obj)
            return value
        return self.submit(pid, body)

    def write_once(self, pid: int, obj: str, value: Any):
        """Convenience: a single-write transaction at ``pid``."""
        def body(txn):
            yield from txn.write(obj, value)
            return value
        return self.submit(pid, body)

    # -- results -----------------------------------------------------------

    def tm(self, pid: int) -> TransactionManager:
        return self.tms[pid]

    def session(self, pid: int, spec=None, **knobs):
        """A client session (cache + leases) fronting processor ``pid``.

        ``spec`` is a :class:`~repro.client.session.SessionSpec`;
        keyword knobs (``cache_capacity``, ``cache_policy``,
        ``lease_duration``) build one inline::

            session = cluster.session(1, cache_capacity=8,
                                      lease_duration=5.0)
        """
        from .client.session import ClientSession, SessionSpec
        if spec is None:
            spec = SessionSpec(**knobs)
        elif knobs:
            raise ValueError("pass either a spec or knobs, not both")
        return ClientSession(self.tms[pid], self.protocols[pid], spec,
                             auditor=self.auditor)

    def protocol(self, pid: int):
        return self.protocols[pid]

    def processor(self, pid: int) -> Processor:
        return self.processors[pid]

    def write_trace(self, path) -> int:
        """Dump the collected trace as canonical JSONL; returns the
        number of events written.  Requires ``trace=True``."""
        if self.tracer is None:
            raise RuntimeError("cluster was built without trace=True")
        from .obs.export import write_jsonl
        return write_jsonl(self.tracer.events, path)

    def total_metrics(self):
        """Protocol counters summed over all processors."""
        totals = None
        for pid in self.pids:
            metrics = self.protocols[pid].metrics
            totals = metrics if totals is None else totals.merge(metrics)
        return totals

    def check_serializable(self) -> bool:
        """CP-serializability of the committed physical history."""
        from .analysis.serialization import is_cp_serializable
        return is_cp_serializable(self.history)

    def check_one_copy_serializable(self) -> bool:
        """One-copy serializability of the committed logical history."""
        from .analysis.one_copy import is_one_copy_serializable
        return is_one_copy_serializable(self.history)

    def __repr__(self) -> str:
        return (f"Cluster(n={len(self.pids)}, "
                f"protocol={next(iter(self.protocols.values())).name})")
