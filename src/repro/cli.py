"""Command-line interface: run experiments without writing Python.

Examples::

    python -m repro run --protocol virtual-partitions --processors 5 \\
        --read-fraction 0.95 --duration 300 --partition "1,2,3|4,5@100" \\
        --heal-at 200

    python -m repro compare --protocols virtual-partitions,quorum,rowa \\
        --read-fraction 0.9

    python -m repro scenario example1 --flavor both

    python -m repro trace example2 --out trace.jsonl --analyze

    python -m repro metrics --protocol virtual-partitions --duration 200

    python -m repro sweep --axis seed --values 1,2,3,4,5,6,7,8 --workers 4
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .core.config import ProtocolConfig
from .workload import ExperimentSpec, WorkloadSpec, run_experiment
from .workload.sweep import sweep, sweep_protocols
from .workload.tables import render_table

PROTOCOL_CHOICES = ["virtual-partitions", "rowa", "quorum", "majority",
                    "missing-writes", "naive-view"]


def _parse_partition(text: str):
    """``"1,2,3|4,5@50.0"`` → (time, [[1,2,3],[4,5]])."""
    try:
        blocks_text, time_text = text.rsplit("@", 1)
        when = float(time_text)
        blocks = [
            [int(p) for p in block.split(",") if p]
            for block in blocks_text.split("|")
        ]
    except (ValueError, IndexError) as exc:
        raise argparse.ArgumentTypeError(
            f"bad partition spec {text!r}; expected like '1,2,3|4,5@50'"
        ) from exc
    if not blocks or any(not block for block in blocks):
        raise argparse.ArgumentTypeError(f"empty block in {text!r}")
    return when, blocks


class ScriptedFailures:
    """The failure schedule the CLI flags describe, as a picklable
    callable — ``repro sweep --workers N`` ships specs into worker
    processes, so a closure over ``args`` would not survive the trip."""

    def __init__(self, partitions, heal_at, crashes, recovers):
        self.partitions = list(partitions or [])
        self.heal_at = heal_at
        self.crashes = list(crashes or [])
        self.recovers = list(recovers or [])

    def __call__(self, cluster) -> None:
        for when, blocks in self.partitions:
            cluster.injector.partition_at(when, blocks)
        if self.heal_at is not None:
            cluster.injector.heal_all_at(self.heal_at)
        for when, pid in self.crashes:
            cluster.injector.crash_at(when, pid)
        for when, pid in self.recovers:
            cluster.injector.recover_at(when, pid)


def _session_from(args):
    """The client-tier spec the flags describe; None = tier disabled."""
    from .client import SessionSpec
    cache = getattr(args, "cache", 0)
    lease = getattr(args, "lease", 0.0)
    if not cache and not lease:
        return None
    return SessionSpec(
        cache_capacity=cache,
        cache_policy=getattr(args, "cache_policy", "write-through"),
        lease_duration=lease,
    )


def _spec_from(args, protocol: str) -> ExperimentSpec:
    config = ProtocolConfig(delta=args.delta, pi=args.pi, cc=args.cc,
                            commit_backend=args.commit_backend)
    failures = ScriptedFailures(args.partition, args.heal_at,
                                args.crash, args.recover)

    return ExperimentSpec(
        open_loop=getattr(args, "open_loop", False),
        session=_session_from(args),
        protocol=protocol,
        processors=args.processors,
        objects=args.objects,
        copies_per_object=args.copies,
        placement=args.placement,
        directory=args.directory,
        seed=args.seed,
        duration=args.duration,
        config=config,
        workload=WorkloadSpec(
            read_fraction=args.read_fraction,
            ops_per_txn=args.ops_per_txn,
            mean_interarrival=args.interarrival,
        ),
        failures=failures,
        retries=args.retries,
        check=args.check,
    )


def _result_rows(name: str, result) -> list:
    return [
        name, result.committed, result.aborted,
        f"{result.commit_rate:.2f}",
        f"{result.reads_per_logical_read:.2f}",
        f"{result.writes_per_logical_write:.2f}",
        f"{result.accesses_per_operation:.2f}",
        result.network["sent"],
        f"{result.latency_p50:.1f}",
        f"{result.latency_p99:.1f}",
        "-" if result.one_copy_ok is None else result.one_copy_ok,
    ]


_HEADERS = ["protocol", "committed", "aborted", "commit rate",
            "phys/read", "phys/write", "phys/op", "messages",
            "p50 lat", "p99 lat", "1SR"]


def cmd_run(args) -> int:
    result = run_experiment(_spec_from(args, args.protocol))
    print(render_table(_HEADERS, [_result_rows(args.protocol, result)],
                       title=f"experiment (seed={args.seed}, "
                             f"duration={args.duration})"))
    return 0


def cmd_compare(args) -> int:
    protocols = [p.strip() for p in args.protocols.split(",") if p.strip()]
    results = sweep_protocols(_spec_from(args, protocols[0]), protocols)
    rows = [_result_rows(name, results[name]) for name in protocols]
    print(render_table(_HEADERS, rows,
                       title=f"comparison (seed={args.seed}, paired "
                             "workloads)"))
    return 0


def cmd_scenario(args) -> int:
    from .workload import scenarios

    runners = {
        ("example1", "naive"): scenarios.run_example1_naive,
        ("example1", "vp"): scenarios.run_example1_vp,
        ("example2", "naive"): scenarios.run_example2_naive,
        ("example2", "vp"): scenarios.run_example2_vp,
    }
    flavors = ["naive", "vp"] if args.flavor == "both" else [args.flavor]
    rows = []
    for flavor in flavors:
        outcome = runners[(args.name, flavor)](seed=args.seed)
        rows.append([
            flavor, len(outcome.committed), len(outcome.aborted),
            outcome.cp_serializable, bool(outcome.one_copy.ok),
        ])
    print(render_table(
        ["protocol", "committed", "aborted", "CP-serializable",
         "one-copy SR"],
        rows, title=f"paper scenario {args.name}",
    ))
    return 0


def cmd_trace(args) -> int:
    from .obs.analyze import TraceAnalyzer
    from .obs.export import write_jsonl
    from .workload import scenarios

    runners = {
        ("example1", "naive"): scenarios.run_example1_naive,
        ("example1", "vp"): scenarios.run_example1_vp,
        ("example2", "naive"): scenarios.run_example2_naive,
        ("example2", "vp"): scenarios.run_example2_vp,
    }
    outcome = runners[(args.name, args.flavor)](seed=args.seed, trace=True)
    events = outcome.cluster.tracer.events
    count = write_jsonl(events, args.out)
    print(f"wrote {count} events to {args.out}")
    if args.analyze:
        print(TraceAnalyzer(events).render())
    return 0


def cmd_metrics(args) -> int:
    import json

    result = run_experiment(_spec_from(args, args.protocol))
    print(json.dumps(result.registry.snapshot(), indent=2, sort_keys=True))
    return 0


def _parse_axis_value(token: str):
    """A sweep value from the command line: int, then float, then str."""
    for kind in (int, float):
        try:
            return kind(token)
        except ValueError:
            continue
    return token


def cmd_sweep(args) -> int:
    base = _spec_from(args, args.protocol)
    values = [_parse_axis_value(v.strip())
              for v in args.values.split(",") if v.strip()]
    if not values:
        raise SystemExit("no sweep values supplied")
    wall_start = time.perf_counter()
    results = sweep(base, args.axis, values, workers=args.workers)
    wall = time.perf_counter() - wall_start
    rows = []
    total_events = 0
    for value, result in results:
        total_events += result.events_dispatched
        rows.append(_result_rows(str(value), result)
                    + [result.events_dispatched])
    print(render_table(
        [args.axis] + _HEADERS[1:] + ["events"], rows,
        title=f"sweep over {args.axis} "
              f"({len(values)} runs, workers={args.workers})",
    ))
    rate = total_events / wall if wall else 0.0
    print(f"{len(values)} runs, {total_events} simulated events "
          f"in {wall:.2f}s wall ({rate:,.0f} events/sec aggregate)")
    return 0


def cmd_reshard(args) -> int:
    import dataclasses

    from .shard import ReshardAction

    if args.placement is None:
        args.placement = "hash-ring"
    if not 0 < args.spares < args.processors:
        raise SystemExit(f"--spares must leave a base ring: need "
                         f"0 < {args.spares} < {args.processors}")
    spares = tuple(range(args.processors - args.spares + 1,
                         args.processors + 1))
    action = ReshardAction(time=args.at, add=spares,
                           guarded=not args.unguarded,
                           coordinator=args.coordinator)
    spec = dataclasses.replace(_spec_from(args, args.protocol),
                               reshard=(action,), audit=True)
    result = run_experiment(spec)
    print(render_table(_HEADERS, [_result_rows(args.protocol, result)],
                       title=f"reshard: +{args.spares} processors at "
                             f"t={args.at} (seed={args.seed})"))
    snapshot = result.registry.snapshot() if result.registry else {}
    counters = snapshot.get("counters", {})
    rows = [[key.split(".", 1)[1], counters[key]]
            for key in sorted(counters) if key.startswith("reshard.")]
    rows.append(["txns disturbed (stale-placement aborts)",
                 result.metrics.by_reason.get("stale-placement", 0)])
    rows.append(["audit violations", len(result.audit_violations)])
    print(render_table(["migration", "count"], rows))
    for violation in result.audit_violations[:5]:
        print(f"  violation: {violation}")
    return 1 if result.audit_violations else 0


def cmd_hunt(args) -> int:
    from pathlib import Path

    from .workload.hunt import HuntConfig, hunt, replay_artifact

    if args.replay is not None:
        verdict, result = replay_artifact(Path(args.replay))
        print(f"replayed {args.replay}: committed={result.committed} "
              f"aborted={result.aborted}")
        print(f"verdict: {verdict or 'clean'}")
        failed = verdict is not None
        return int(failed != args.expect_failure)

    cfg = HuntConfig(
        protocol=args.protocol,
        processors=args.processors,
        objects=args.objects,
        copies_per_object=args.copies,
        placement=args.placement,
        commit_backend=args.commit_backend,
        seed=args.seed,
        campaigns=args.campaigns,
        workers=args.workers,
        shrink_budget=args.shrink_budget,
        stop_after=args.stop_after,
        reshard_at=args.reshard_at,
        reshard_spares=args.reshard_spares,
        reshard_guarded=not args.reshard_unguarded,
    )
    out_dir = Path(args.out) if args.out else None
    report = hunt(cfg, out_dir=out_dir, log=print)
    if report.survived:
        print(f"{cfg.protocol}: survived {report.campaigns_run} campaigns "
              f"(seed={cfg.seed}) — no invariant or 1SR violations")
    else:
        print(f"{cfg.protocol}: {len(report.findings)} finding(s) in "
              f"{report.campaigns_run} campaigns (seed={cfg.seed})")
        for finding in report.findings:
            size = (len(finding.shrunk) if finding.shrunk is not None
                    else len(finding.actions))
            where = "" if finding.artifact is None else f" -> {finding.artifact}"
            print(f"  campaign {finding.campaign}: {finding.verdict} "
                  f"[{size} actions{where}]")
    failed = not report.survived
    return int(failed != args.expect_failure)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Virtual partitions replica control — experiment CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--processors", type=int, default=5)
        p.add_argument("--objects", type=int, default=10)
        p.add_argument("--copies", type=int, default=None,
                       help="copies per object (default: full replication)")
        p.add_argument("--placement", default=None,
                       choices=["hash-ring", "random-k", "weighted-home",
                                "locality"],
                       help="shard objects with this placement policy "
                            "(default: legacy contiguous ring)")
        p.add_argument("--directory", default=None,
                       choices=["local", "cached"],
                       help="routing directory kind (default: local "
                            "full-map)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--duration", type=float, default=300.0)
        p.add_argument("--read-fraction", type=float, default=0.9)
        p.add_argument("--ops-per-txn", type=int, default=2)
        p.add_argument("--interarrival", type=float, default=10.0)
        p.add_argument("--retries", type=int, default=1)
        p.add_argument("--delta", type=float, default=1.0,
                       help="message delay bound (the paper's delta)")
        p.add_argument("--pi", type=float, default=10.0,
                       help="probe period (the paper's pi)")
        p.add_argument("--cc", choices=["2pl", "tso"], default="2pl")
        p.add_argument("--commit-backend", choices=["2pc", "paxos"],
                       default="2pc",
                       help="atomic-commit backend (default: blocking 2PC)")
        p.add_argument("--check", action="store_true",
                       help="run the 1SR checker afterwards (small runs)")
        p.add_argument("--open-loop", action="store_true",
                       help="open-loop load: arrivals fire on the Poisson "
                            "clock regardless of service time, so latency "
                            "includes queueing (default: closed loop)")
        p.add_argument("--cache", type=int, default=0, metavar="N",
                       help="per-client LRU cache of N entries "
                            "(default: 0 = no cache)")
        p.add_argument("--cache-policy", default="write-through",
                       choices=["write-through", "write-back"],
                       help="client cache write policy (write-back needs "
                            "--cache > 0)")
        p.add_argument("--lease", type=float, default=0.0, metavar="L",
                       help="lease-based local reads of duration L "
                            "(must be <= pi; default: 0 = no leases)")
        p.add_argument("--partition", type=_parse_partition,
                       action="append", metavar="BLOCKS@TIME",
                       help="e.g. '1,2,3|4,5@50' (repeatable)")
        p.add_argument("--heal-at", type=float, default=None)
        p.add_argument("--crash", type=_parse_crash, action="append",
                       metavar="PID@TIME", help="e.g. '4@30' (repeatable)")
        p.add_argument("--recover", type=_parse_crash, action="append",
                       metavar="PID@TIME")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("--protocol", choices=PROTOCOL_CHOICES,
                       default="virtual-partitions")
    common(run_p)
    run_p.set_defaults(func=cmd_run)

    cmp_p = sub.add_parser("compare", help="same workload, many protocols")
    cmp_p.add_argument("--protocols", default="virtual-partitions,quorum,rowa")
    common(cmp_p)
    cmp_p.set_defaults(func=cmd_compare)

    sc_p = sub.add_parser("scenario", help="run a paper scenario")
    sc_p.add_argument("name", choices=["example1", "example2"])
    sc_p.add_argument("--flavor", choices=["naive", "vp", "both"],
                      default="both")
    sc_p.add_argument("--seed", type=int, default=0)
    sc_p.set_defaults(func=cmd_scenario)

    tr_p = sub.add_parser(
        "trace", help="run a paper scenario with structured tracing"
    )
    tr_p.add_argument("name", choices=["example1", "example2"])
    tr_p.add_argument("--flavor", choices=["naive", "vp"], default="vp")
    tr_p.add_argument("--seed", type=int, default=0)
    tr_p.add_argument("--out", default="trace.jsonl",
                      help="JSONL output path (default: trace.jsonl)")
    tr_p.add_argument("--analyze", action="store_true",
                      help="print the trace analysis report afterwards")
    tr_p.set_defaults(func=cmd_trace)

    mt_p = sub.add_parser(
        "metrics", help="run one experiment, print metrics as JSON"
    )
    mt_p.add_argument("--protocol", choices=PROTOCOL_CHOICES,
                      default="virtual-partitions")
    common(mt_p)
    mt_p.set_defaults(func=cmd_metrics)

    sw_p = sub.add_parser(
        "sweep", help="run one experiment per axis value, optionally "
                      "fanned out across worker processes"
    )
    sw_p.add_argument("--protocol", choices=PROTOCOL_CHOICES,
                      default="virtual-partitions")
    sw_p.add_argument("--axis", default="seed",
                      help="ExperimentSpec field, or workload.<field> "
                           "(default: seed)")
    sw_p.add_argument("--values", required=True,
                      help="comma-separated axis values, e.g. '1,2,3,4'")
    sw_p.add_argument("--workers", type=int, default=1,
                      help="worker processes (1 = serial; results are "
                           "identical either way)")
    common(sw_p)
    sw_p.set_defaults(func=cmd_sweep)

    rs_p = sub.add_parser(
        "reshard", help="run one experiment with a live placement "
                        "migration; print movement and disturbance counts"
    )
    rs_p.add_argument("--protocol", choices=PROTOCOL_CHOICES,
                      default="virtual-partitions")
    rs_p.add_argument("--at", type=float, default=100.0,
                      help="simulation time of the placement change")
    rs_p.add_argument("--spares", type=int, default=1, metavar="N",
                      help="hold the N highest pids out of the initial "
                           "placement, then expand onto them (default: 1)")
    rs_p.add_argument("--unguarded", action="store_true",
                      help="skip the two-phase cutover (flip immediately); "
                           "exists to demonstrate the auditor convicting it")
    rs_p.add_argument("--coordinator", type=int, default=None,
                      help="pid that drives the migration (default: lowest "
                           "base pid)")
    common(rs_p)
    rs_p.set_defaults(func=cmd_reshard)

    ht_p = sub.add_parser(
        "hunt", help="fan out randomized nemesis campaigns; shrink any "
                     "failure to a minimal replayable repro artifact"
    )
    ht_p.add_argument("--protocol", choices=PROTOCOL_CHOICES,
                      default="virtual-partitions")
    ht_p.add_argument("--processors", type=int, default=4)
    ht_p.add_argument("--objects", type=int, default=3)
    ht_p.add_argument("--copies", type=int, default=3,
                      help="replication degree per object")
    ht_p.add_argument("--placement", default=None,
                      choices=["hash-ring", "random-k", "weighted-home",
                               "locality"],
                      help="hunt a sharded topology under this policy")
    ht_p.add_argument("--commit-backend", choices=["2pc", "paxos"],
                      default=None,
                      help="hunt this atomic-commit backend "
                           "(default: the config default, 2PC)")
    ht_p.add_argument("--seed", type=int, default=0,
                      help="hunt seed; every campaign derives from it")
    ht_p.add_argument("--campaigns", type=int, default=50)
    ht_p.add_argument("--workers", type=int, default=None,
                      help="worker processes for the campaign fan-out")
    ht_p.add_argument("--out", default=None,
                      help="directory for repro artifacts (JSON)")
    ht_p.add_argument("--shrink-budget", type=int, default=48,
                      help="max re-runs the shrinker may spend per finding")
    ht_p.add_argument("--stop-after", type=int, default=1,
                      help="stop after this many findings (0 = run all)")
    ht_p.add_argument("--reshard-at", type=float, default=0.0,
                      metavar="T",
                      help="race an online reshard at T against every "
                           "campaign's faults (0 = no reshard)")
    ht_p.add_argument("--reshard-spares", type=int, default=0, metavar="N",
                      help="hold the N highest pids out of the initial "
                           "placement; the reshard expands onto them")
    ht_p.add_argument("--reshard-unguarded", action="store_true",
                      help="flip placements without the two-phase cutover "
                           "— the conviction canary for --expect-failure")
    ht_p.add_argument("--replay", default=None, metavar="ARTIFACT",
                      help="re-run a repro artifact instead of hunting")
    ht_p.add_argument("--expect-failure", action="store_true",
                      help="invert the exit code: success means a finding "
                           "(mutation-canary mode for CI)")
    ht_p.set_defaults(func=cmd_hunt)
    return parser


def _parse_crash(text: str):
    try:
        pid_text, time_text = text.split("@", 1)
        return float(time_text), int(pid_text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"bad spec {text!r}; expected like '4@30'"
        ) from exc


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
