"""Transactions over a replica control protocol.

The transaction manager gives each processor the classic begin /
read / write / commit / abort interface, delegating logical operations
to whatever :class:`~repro.protocols.base.ReplicaControlProtocol` the
experiment installed.  Concurrency control is strict 2PL on copies —
locks are acquired inside the protocol's physical access servers and
released by the end-of-transaction decision messages — which satisfies
assumption A1 (CP-serializability).

Failure semantics: any :class:`~repro.core.errors.AccessAborted` from a
logical operation aborts the whole transaction (the paper's ``signal
abort``), which the caller sees as :class:`TransactionAborted`.  A
transaction object is single-use; retries create a new transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable, Dict, Optional

from ..analysis.history import History
from ..core.errors import AccessAborted, TransactionAborted
from .context import TransactionContext


@dataclass
class TxnStats:
    """Per-processor transaction outcome counters."""

    begun: int = 0
    committed: int = 0
    aborted: int = 0
    abort_reasons: Dict[str, int] = field(default_factory=dict)

    def record_abort(self, reason: str) -> None:
        self.aborted += 1
        key = reason.split(":")[0][:60]
        self.abort_reasons[key] = self.abort_reasons.get(key, 0) + 1


class Transaction:
    """One client transaction; single-use."""

    def __init__(self, manager: "TransactionManager",
                 ctx: TransactionContext):
        self._manager = manager
        self.ctx = ctx
        self.finished = False

    @property
    def txn_id(self):
        return self.ctx.txn_id

    # -- operations (generators; drive with ``yield from``) -----------------

    def read(self, obj: str):
        """Logical read; aborts the transaction on failure."""
        self._check_open()
        try:
            value = yield from self._manager.protocol.logical_read(
                obj, self.ctx
            )
        except AccessAborted as exc:
            yield from self._abort(f"read {obj!r}: {exc.reason}")
            raise TransactionAborted(self.txn_id, exc.reason) from exc
        return value

    def write(self, obj: str, value: Any):
        """Logical write; aborts the transaction on failure."""
        self._check_open()
        try:
            yield from self._manager.protocol.logical_write(
                obj, value, self.ctx
            )
        except AccessAborted as exc:
            yield from self._abort(f"write {obj!r}: {exc.reason}")
            raise TransactionAborted(self.txn_id, exc.reason) from exc

    def commit(self):
        """Validate (rule R4) and commit; raises if validation fails."""
        self._check_open()
        if self.ctx.poisoned:
            yield from self._abort(self.ctx.poisoned)
            raise TransactionAborted(self.txn_id, self.ctx.poisoned)
        try:
            yield from self._manager.protocol.prepare_commit(self.ctx)
        except TransactionAborted as exc:
            yield from self._abort(exc.reason)
            raise
        try:
            yield from self._manager.protocol.end_transaction(
                self.ctx, "commit")
        except TransactionAborted as exc:
            # The decision was ceded to abort while votes were in
            # flight (an in-doubt participant queried the decision
            # log); the prepare round succeeded but the commit cannot.
            yield from self._abort(exc.reason)
            raise
        self.finished = True
        self._manager.stats.committed += 1
        # finish_txn_once: a Paxos Commit recovery leader may have
        # closed the record already (same outcome, by consensus)
        self._manager.history.finish_txn_once(self.txn_id, "committed",
                                              self._now())
        if self._manager.tracer is not None:
            self._manager.tracer.emit("txn.commit", pid=self._manager.pid,
                                      txn=str(self.txn_id))

    def abort(self, reason: str = "user abort"):
        """Voluntary abort."""
        self._check_open()
        yield from self._abort(reason)

    # -- internals -----------------------------------------------------------

    def _abort(self, reason: str):
        yield from self._manager.protocol.end_transaction(self.ctx, "abort")
        self.finished = True
        self._manager.stats.record_abort(reason)
        self._manager.history.finish_txn_once(self.txn_id, "aborted",
                                              self._now(), reason)
        if self._manager.tracer is not None:
            self._manager.tracer.emit("txn.abort", pid=self._manager.pid,
                                      txn=str(self.txn_id), reason=reason)

    def _check_open(self) -> None:
        if self.finished:
            raise RuntimeError(f"{self.txn_id} already finished")

    def _now(self) -> float:
        return self._manager.protocol.processor.sim.now

    def __repr__(self) -> str:
        state = "finished" if self.finished else "active"
        return f"Transaction({self.txn_id}, {state})"


class TransactionManager:
    """Factory and bookkeeper for one processor's transactions."""

    def __init__(self, protocol, history: History):
        self.protocol = protocol
        self.history = history
        self.pid = protocol.processor.pid
        self.stats = TxnStats()
        self._seq = count(1)
        #: optional :class:`~repro.obs.trace.Tracer`; None = no tracing
        self.tracer = None

    def begin(self) -> Transaction:
        """Start a new transaction rooted at this processor."""
        seq = next(self._seq)
        txn_id = (self.pid, seq)
        ctx = TransactionContext(txn_id=txn_id, origin=self.pid)
        ctx.timestamp = (self.protocol.processor.sim.now, self.pid, seq)
        ctx.start_vpid = getattr(self.protocol, "current_partition", None)
        self.stats.begun += 1
        self.history.begin_txn(txn_id, self.pid,
                               self.protocol.processor.sim.now)
        if self.tracer is not None:
            self.tracer.emit("txn.begin", pid=self.pid, txn=str(txn_id))
        return Transaction(self, ctx)

    def run(self, body: Callable[[Transaction], Any], retries: int = 0,
            backoff: Optional[float] = None):
        """Generator: execute ``body(txn)`` with commit and retry.

        ``body`` is a generator function receiving the transaction; it
        performs reads/writes (``yield from txn.read(...)``) and returns
        a result.  Commit is automatic.  On abort the body is retried up
        to ``retries`` times, waiting ``backoff`` between attempts.
        Returns ``(committed, result_or_reason)``.
        """
        sim = self.protocol.processor.sim
        attempts = retries + 1
        reason = "never-ran"
        for attempt in range(attempts):
            txn = self.begin()
            try:
                result = yield from body(txn)
                yield from txn.commit()
                return True, result
            except TransactionAborted as exc:
                reason = exc.reason
                if backoff and attempt + 1 < attempts:
                    yield sim.timeout(backoff)
        return False, reason
