"""A per-processor lock manager for physical copies.

Strict two-phase locking is the concurrency control protocol the paper
names first among the CP-serializable class (assumption A1, §4).  Locks
are taken on *copies* — each processor locks only its local physical
objects — exactly the configuration §6 assumes when deriving the
weakened rule R4.

Grant policy: shared (S) locks are compatible with each other; exclusive
(X) with nothing.  Requests queue FIFO without barging; an S→X upgrade
is granted immediately when the requester is the sole holder, otherwise
it waits at the front of the queue.  Deadlock handling is by timeout at
the caller (waiting requests are cancellable events).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..sim import Event, Simulator

SHARED = "S"
EXCLUSIVE = "X"

_COMPATIBLE = {
    (SHARED, SHARED): True,
    (SHARED, EXCLUSIVE): False,
    (EXCLUSIVE, SHARED): False,
    (EXCLUSIVE, EXCLUSIVE): False,
}


class LockRequest(Event):
    """A pending lock acquisition; cancelling it leaves the queue."""

    __slots__ = ("obj", "txn", "mode", "_manager")

    def __init__(self, manager: "LockManager", obj: str, txn: Any, mode: str):
        super().__init__(manager.sim, name=f"lock({obj},{txn},{mode})")
        self.obj = obj
        self.txn = txn
        self.mode = mode
        self._manager = manager

    def cancel(self) -> None:
        if not self.triggered:
            self._manager._drop_request(self)
            super().cancel()


@dataclass
class _LockState:
    holders: Dict[Any, str] = field(default_factory=dict)
    queue: List[LockRequest] = field(default_factory=list)


class LockManager:
    """Lock table over the local copies of one processor."""

    def __init__(self, sim: Simulator, name: str = "locks"):
        self.sim = sim
        self.name = name
        self._table: Dict[str, _LockState] = {}
        #: grants ever made, for metrics
        self.grants = 0
        self.waits = 0
        #: optional :class:`~repro.obs.trace.Tracer`; None = no tracing
        self.tracer = None
        #: pid stamped on trace events (set by the owning protocol)
        self.trace_pid: Optional[int] = None

    def _emit(self, etype: str, obj: str, txn: Any, mode: str) -> None:
        # Call sites guard on ``self.tracer is not None`` themselves so the
        # disabled path costs one attribute test, not a method call.
        self.tracer.emit(etype, pid=self.trace_pid, obj=obj,
                         txn=str(txn), mode=mode)

    # -- acquisition ------------------------------------------------------------

    def acquire(self, txn: Any, obj: str, mode: str) -> LockRequest:
        """Request a lock; the returned event fires when granted.

        Already-granted cases (re-entrant holds, S under an existing X
        by the same transaction, immediate compatibility) fire at the
        current instant.
        """
        if mode not in (SHARED, EXCLUSIVE):
            raise ValueError(f"unknown lock mode {mode!r}")
        state = self._table.setdefault(obj, _LockState())
        request = LockRequest(self, obj, txn, mode)

        held = state.holders.get(txn)
        if held == EXCLUSIVE or held == mode:
            # Re-entrant: X covers S; same mode is a no-op.
            request.succeed(True)
            return request
        if held == SHARED and mode == EXCLUSIVE:
            if len(state.holders) == 1 and not state.queue:
                state.holders[txn] = EXCLUSIVE
                self.grants += 1
                if self.tracer is not None:
                    self._emit("lock.grant", obj, txn, EXCLUSIVE)
                request.succeed(True)
                return request
            # Upgrade must wait at the front (it beats new requests but
            # cannot bypass already-queued ones without risking starvation).
            state.queue.insert(0, request)
            self.waits += 1
            if self.tracer is not None:
                self._emit("lock.wait", obj, txn, mode)
            return request
        if not state.queue and self._compatible(state, mode):
            state.holders[txn] = mode
            self.grants += 1
            if self.tracer is not None:
                self._emit("lock.grant", obj, txn, mode)
            request.succeed(True)
            return request
        state.queue.append(request)
        self.waits += 1
        if self.tracer is not None:
            self._emit("lock.wait", obj, txn, mode)
        return request

    # -- release ------------------------------------------------------------

    def release_all(self, txn: Any) -> List[str]:
        """Strict 2PL release at end of transaction; returns freed objects."""
        freed = []
        for obj, state in list(self._table.items()):
            if txn in state.holders:
                mode = state.holders.pop(txn)
                freed.append(obj)
                if self.tracer is not None:
                    self._emit("lock.release", obj, txn, mode)
            state.queue = [r for r in state.queue if r.txn != txn]
            self._promote(obj, state)
            if not state.holders and not state.queue:
                del self._table[obj]
        return freed

    # -- inspection ------------------------------------------------------------

    def holders(self, obj: str) -> Dict[Any, str]:
        """Current holders of ``obj``'s lock: ``{txn: mode}``."""
        state = self._table.get(obj)
        return dict(state.holders) if state else {}

    def is_write_locked(self, obj: str) -> bool:
        """True if some transaction holds X on ``obj`` (condition (3) of
        the weakened R4: recovery must not read such a copy)."""
        state = self._table.get(obj)
        return bool(state) and EXCLUSIVE in state.holders.values()

    def holding_txns(self) -> set:
        """All transactions currently holding any lock here."""
        txns = set()
        for state in self._table.values():
            txns |= set(state.holders)
        return txns

    def queue_length(self, obj: str) -> int:
        state = self._table.get(obj)
        return len(state.queue) if state else 0

    # -- internals -----------------------------------------------------------

    def _compatible(self, state: _LockState, mode: str) -> bool:
        return all(
            _COMPATIBLE[(held, mode)] for held in state.holders.values()
        )

    def _promote(self, obj: str, state: _LockState) -> None:
        """Grant queued requests from the head while compatible."""
        while state.queue:
            request = state.queue[0]
            held = state.holders.get(request.txn)
            if held == EXCLUSIVE or held == request.mode:
                state.queue.pop(0)
                request.succeed(True)
                continue
            if held == SHARED and request.mode == EXCLUSIVE:
                if len(state.holders) == 1:
                    state.holders[request.txn] = EXCLUSIVE
                    state.queue.pop(0)
                    self.grants += 1
                    if self.tracer is not None:
                        self._emit("lock.grant", obj, request.txn, EXCLUSIVE)
                    request.succeed(True)
                    continue
                break
            if self._compatible(state, request.mode):
                state.holders[request.txn] = request.mode
                state.queue.pop(0)
                self.grants += 1
                if self.tracer is not None:
                    self._emit("lock.grant", obj, request.txn, request.mode)
                request.succeed(True)
                continue
            break

    def _drop_request(self, request: LockRequest) -> None:
        state = self._table.get(request.obj)
        if state is None:
            return
        try:
            state.queue.remove(request)
        except ValueError:
            return
        if self.tracer is not None:
            self._emit("lock.drop", request.obj, request.txn, request.mode)
        self._promote(request.obj, state)
        if not state.holders and not state.queue:
            del self._table[request.obj]
