"""The concurrency control strategy interface (assumption A1).

The paper requires only that the concurrency control protocol be
CP-serializable and lists two-phase locking [EGLT] and timestamp
ordering [BSR] as members of that class.  Both are implemented behind
this interface so the replica control layer — the paper's contribution
— is strictly independent of the CC choice, and the ablation bench can
swap them under identical workloads.

A strategy answers, per physical access at one copy server: *may this
transaction read/write this copy now?* — possibly after waiting — and
is told the transaction's fate so it can release its admission state.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Set

#: admission results
GRANTED = "granted"
REJECTED_TIMEOUT = "cc-timeout"
REJECTED_TOO_LATE = "cc-too-late"


class ConcurrencyControl(ABC):
    """Per-processor admission control over local physical copies."""

    name: str = "abstract"

    @abstractmethod
    def begin_read(self, txn: Any, ts: Any, obj: str):
        """Generator → (granted: bool, reason).  May wait."""

    @abstractmethod
    def begin_write(self, txn: Any, ts: Any, obj: str):
        """Generator → (granted: bool, reason).  May wait."""

    @abstractmethod
    def finish(self, txn: Any, outcome: str) -> None:
        """The transaction committed or aborted: release admissions."""

    @abstractmethod
    def active_txns(self) -> Set[Any]:
        """Transactions currently holding admissions here (R4 targets)."""

    @abstractmethod
    def stable_read_gate(self, obj: str):
        """Generator → bool: wait until reading ``obj`` cannot observe
        an uncommitted write (condition (3) of the weakened R4 for
        recovery reads); False on timeout."""
