"""Strict two-phase locking as a concurrency control strategy [EGLT].

Wraps the :class:`~repro.cc.locks.LockManager` with the deadlock-
breaking timeout: admission = lock grant; ``finish`` is the strict
release at end of transaction.
"""

from __future__ import annotations

from itertools import count
from typing import Any, Set

from ..sim import Simulator
from .locks import EXCLUSIVE, SHARED, LockManager
from .strategy import ConcurrencyControl, REJECTED_TIMEOUT


class TwoPhaseLocking(ConcurrencyControl):
    """Strict 2PL on copies with timeout-based deadlock breaking."""

    name = "2pl"

    def __init__(self, sim: Simulator, lock_timeout: float,
                 label: str = "2pl"):
        self.sim = sim
        self.lock_timeout = lock_timeout
        self.locks = LockManager(sim, name=label)
        self._gate_seq = count(1)

    def begin_read(self, txn: Any, ts: Any, obj: str):
        granted = yield from self._acquire(txn, obj, SHARED)
        return (granted, None if granted else REJECTED_TIMEOUT)

    def begin_write(self, txn: Any, ts: Any, obj: str):
        granted = yield from self._acquire(txn, obj, EXCLUSIVE)
        return (granted, None if granted else REJECTED_TIMEOUT)

    def finish(self, txn: Any, outcome: str) -> None:
        self.locks.release_all(txn)

    def active_txns(self) -> Set[Any]:
        return self.locks.holding_txns()

    def stable_read_gate(self, obj: str):
        """A short shared lock: granted means no writer holds the copy."""
        gate_txn = ("cc-gate", next(self._gate_seq))
        granted = yield from self._acquire(gate_txn, obj, SHARED)
        if granted:
            self.locks.release_all(gate_txn)
        return granted

    def _acquire(self, txn: Any, obj: str, mode: str):
        request = self.locks.acquire(txn, obj, mode)
        if request.triggered:
            return True
            yield  # pragma: no cover
        tick = self.sim.timeout(self.lock_timeout)
        result = yield self.sim.any_of([request, tick])
        return request in result
