"""Concurrency control: 2PL and TSO strategies, transactions, contexts.

Both strategies are in the CP-serializable class the paper's assumption
A1 requires; the replica control layer is agnostic to the choice
(``ProtocolConfig.cc``).
"""

from .context import TransactionContext
from .factory import make_cc
from .locks import EXCLUSIVE, SHARED, LockManager, LockRequest
from .strategy import ConcurrencyControl
from .transactions import Transaction, TransactionManager, TxnStats
from .tso import TimestampOrdering
from .twopl import TwoPhaseLocking


__all__ = [
    "ConcurrencyControl",
    "EXCLUSIVE",
    "LockManager",
    "LockRequest",
    "SHARED",
    "TimestampOrdering",
    "Transaction",
    "TransactionContext",
    "TransactionManager",
    "TwoPhaseLocking",
    "TxnStats",
    "make_cc",
]
