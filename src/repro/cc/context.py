"""Transaction context threaded through logical operations.

Carries the identifiers and accumulators that rule R4's commit-time
validation needs: where the transaction ran (partition ids), which
processors served its physical accesses, and what it read and wrote.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

TxnId = Tuple[int, int]  # (origin pid, per-processor sequence number)


@dataclass
class TransactionContext:
    """Mutable per-transaction bookkeeping."""

    txn_id: TxnId
    origin: int
    start_vpid: Any = None
    #: globally unique TSO timestamp: (begin_time, pid, seq)
    timestamp: Any = None
    participants: Set[int] = field(default_factory=set)
    vpids: Set[Any] = field(default_factory=set)
    objects_read: Set[str] = field(default_factory=set)
    objects_written: Set[str] = field(default_factory=set)
    #: non-None once the transaction is doomed (it may only abort)
    poisoned: Optional[str] = None
    #: obj -> (version token, serve time) for each logical read — the
    #: client tier's lease grants need to know *what* was read and
    #: *when* the copy served it
    read_versions: Dict[str, Tuple[Any, float]] = field(default_factory=dict)
    #: obj -> placement epoch each logical access routed on; the commit
    #: vote re-checks these against the authoritative map so a reshard
    #: flip mid-transaction aborts the straggler (rule R4's reshard arm)
    placement_epochs: Dict[str, int] = field(default_factory=dict)
    _version_seq: int = 0

    @property
    def objects(self) -> Set[str]:
        """Every logical object the transaction referenced."""
        return self.objects_read | self.objects_written

    def next_version(self) -> Tuple[TxnId, int]:
        """A fresh globally unique version token for a logical write."""
        self._version_seq += 1
        return (self.txn_id, self._version_seq)

    def note_access(self, kind: str, obj: str, server: int,
                    vpid: Any) -> None:
        """Record a served physical access."""
        self.participants.add(server)
        self.vpids.add(vpid)
        if kind == "r":
            self.objects_read.add(obj)
        else:
            self.objects_written.add(obj)

    def poison(self, reason: str) -> None:
        """Mark the transaction as abort-only (first reason wins)."""
        if self.poisoned is None:
            self.poisoned = reason

    def __repr__(self) -> str:
        return f"Txn{self.txn_id}"
