"""Concurrency control strategy factory."""

from __future__ import annotations

from ..sim import Simulator
from .strategy import ConcurrencyControl
from .tso import TimestampOrdering
from .twopl import TwoPhaseLocking


def make_cc(config, sim: Simulator, label: str) -> ConcurrencyControl:
    """Instantiate the strategy named by ``config.cc``."""
    if config.cc == "tso":
        return TimestampOrdering(sim, wait_timeout=config.lock_timeout,
                                 label=label)
    return TwoPhaseLocking(sim, lock_timeout=config.lock_timeout,
                           label=label)
