"""Strict timestamp ordering as a concurrency control strategy [BSR].

Transactions carry a globally unique timestamp ``(begin_time, pid,
seq)``.  Each copy remembers the largest timestamp that read it
(``rts``), the largest that wrote it (``wts``), and the uncommitted
writer if any.  Admission rules (strict TSO, no Thomas write rule —
skipping writes would corrupt the replica dates):

* read at ``ts``: rejected if ``ts < wts`` (the value it should have
  read is already overwritten); if the current write is uncommitted,
  wait for the writer's fate first (no dirty reads);
* write at ``ts``: rejected if ``ts < rts`` or ``ts < wts``; waits for
  an uncommitted earlier writer, then installs itself as the
  uncommitted writer.

Rejections abort the transaction (it retries with a fresh, larger
timestamp).  Waiting is only ever for *older* uncommitted writers, so
wait-for chains strictly decrease in timestamp and deadlock is
impossible — the timeout exists purely as a liveness backstop against
decision messages lost to network failures.

All admission state is volatile (a crash clears it); safety across
crashes is provided by the replica control layer — a recovering
processor joins a fresh partition and stale-partition operations are
rejected by the ``v = cur-id`` check before reaching the CC layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set

from ..sim import Notifier, Simulator
from .strategy import (
    ConcurrencyControl,
    REJECTED_TIMEOUT,
    REJECTED_TOO_LATE,
)


@dataclass
class _CopyMarks:
    rts: Any = None
    wts: Any = None
    uncommitted: Optional[tuple] = None  # (txn, ts)
    readers: Set[Any] = field(default_factory=set)


def _later(a, b) -> bool:
    """ts ``a`` strictly later than ``b`` (None = minus infinity)."""
    if b is None:
        return True
    if a is None:
        return False
    return a > b


class TimestampOrdering(ConcurrencyControl):
    """Strict TSO over local copies."""

    name = "tso"

    def __init__(self, sim: Simulator, wait_timeout: float,
                 label: str = "tso"):
        self.sim = sim
        self.wait_timeout = wait_timeout
        self._marks: Dict[str, _CopyMarks] = {}
        self._changed = Notifier(sim, name=f"{label}.decisions")
        #: admissions per transaction, for finish/active_txns
        self._by_txn: Dict[Any, Set[str]] = {}
        self.rejections = 0

    # -- admission ------------------------------------------------------------

    def begin_read(self, txn: Any, ts: Any, obj: str):
        marks = self._marks.setdefault(obj, _CopyMarks())
        settled = yield from self._await_no_older_uncommitted(txn, ts, obj)
        if not settled:
            return (False, REJECTED_TIMEOUT)
        marks = self._marks.setdefault(obj, _CopyMarks())
        if _later(marks.wts, ts) and not self._own(marks, txn):
            self.rejections += 1
            return (False, REJECTED_TOO_LATE)
        if not _later(ts, marks.rts) and marks.rts is not None:
            pass  # reads never invalidate earlier reads
        if _later(ts, marks.rts):
            marks.rts = ts
        marks.readers.add(txn)
        self._by_txn.setdefault(txn, set()).add(obj)
        return (True, None)

    def begin_write(self, txn: Any, ts: Any, obj: str):
        settled = yield from self._await_no_older_uncommitted(txn, ts, obj)
        if not settled:
            return (False, REJECTED_TIMEOUT)
        marks = self._marks.setdefault(obj, _CopyMarks())
        if self._own(marks, txn):
            # re-writing our own uncommitted value is always fine
            return (True, None)
        if _later(marks.rts, ts) or _later(marks.wts, ts):
            self.rejections += 1
            return (False, REJECTED_TOO_LATE)
        marks.wts = ts
        marks.uncommitted = (txn, ts)
        self._by_txn.setdefault(txn, set()).add(obj)
        return (True, None)

    def _await_no_older_uncommitted(self, txn: Any, ts: Any, obj: str):
        """Strictness: wait for the fate of an uncommitted older writer."""
        deadline = self.sim.now + self.wait_timeout
        while True:
            marks = self._marks.setdefault(obj, _CopyMarks())
            holder = marks.uncommitted
            if holder is None or holder[0] == txn:
                return True
            if _later(holder[1], ts):
                # the uncommitted write is NEWER than us: we are too
                # late either way; let the rts/wts check reject us.
                return True
            if self.sim.now >= deadline:
                return False
            change = self._changed.wait()
            tick = self.sim.timeout(max(deadline - self.sim.now, 0.0))
            yield self.sim.any_of([change, tick])

    @staticmethod
    def _own(marks: _CopyMarks, txn: Any) -> bool:
        return marks.uncommitted is not None and marks.uncommitted[0] == txn

    # -- lifecycle ------------------------------------------------------------

    def finish(self, txn: Any, outcome: str) -> None:
        for obj in self._by_txn.pop(txn, set()):
            marks = self._marks.get(obj)
            if marks is None:
                continue
            marks.readers.discard(txn)
            if marks.uncommitted is not None and marks.uncommitted[0] == txn:
                marks.uncommitted = None
                # An aborted write's value is rolled back by the server's
                # before-image; wts stays conservatively high, which can
                # only cause extra (safe) rejections.
        self._changed.notify_all()

    def active_txns(self) -> Set[Any]:
        return set(self._by_txn)

    def stable_read_gate(self, obj: str):
        """Wait until no uncommitted write marks the copy."""
        deadline = self.sim.now + self.wait_timeout
        while True:
            marks = self._marks.get(obj)
            if marks is None or marks.uncommitted is None:
                return True
            if self.sim.now >= deadline:
                return False
            change = self._changed.wait()
            tick = self.sim.timeout(max(deadline - self.sim.now, 0.0))
            yield self.sim.any_of([change, tick])
