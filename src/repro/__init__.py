"""repro — the virtual partitions replica control protocol, reproduced.

A full implementation of El Abbadi, Skeen & Cristian, *"An Efficient,
Fault-Tolerant Protocol for Replicated Data Management"* (PODS 1985),
with every substrate it needs: a deterministic discrete-event simulator,
a failure-injectable network, per-processor runtimes with durable
storage, strict-2PL concurrency control, baseline replica control
protocols for comparison, and checkers for the paper's correctness
criterion (one-copy serializability).

Quick start::

    from repro import Cluster

    cluster = Cluster(processors=5, seed=7)
    cluster.place("account", holders=[1, 2, 3, 4, 5], initial=100)
    cluster.start()
    cluster.write_once(1, "account", 150)
    cluster.run(until=30.0)
    assert cluster.check_one_copy_serializable()
"""

from .analysis import (
    History,
    check_one_copy,
    is_cp_serializable,
    is_one_copy_serializable,
)
from .cluster import Cluster
from .core import (
    AccessAborted,
    CopyPlacement,
    ProtocolConfig,
    TransactionAborted,
    VirtualPartitionProtocol,
    VpId,
)
from .net import (
    CommGraph,
    DistanceLatency,
    FailureInjector,
    FixedLatency,
    UniformLatency,
)

__version__ = "1.0.0"

__all__ = [
    "AccessAborted",
    "Cluster",
    "CommGraph",
    "CopyPlacement",
    "DistanceLatency",
    "FailureInjector",
    "FixedLatency",
    "History",
    "ProtocolConfig",
    "TransactionAborted",
    "UniformLatency",
    "VirtualPartitionProtocol",
    "VpId",
    "check_one_copy",
    "is_cp_serializable",
    "is_one_copy_serializable",
    "__version__",
]
