"""Campaign hunter: search adversarial fault schedules for violations.

The hunter mechanizes the ROADMAP's "as many scenarios as you can
imagine": it plans randomized nemesis campaigns (directed cuts, delay
surges, grey loss, duplication storms, flapping, crashes, partitions),
fans them over the parallel sweep engine with the runtime invariant
auditor and the 1SR checker armed, and — when a campaign convicts the
protocol — greedily shrinks the fault schedule to a minimal,
deterministically replayable repro artifact.

Everything is derived from one hunt seed through named
:class:`~repro.sim.RandomStreams` substreams, and each campaign's
schedule is *planned up front* in the parent process: a plain list of
:class:`~repro.net.nemesis.FaultAction` records.  Deleting actions from
that list and replaying the rest is exactly what shrinking needs, and
it is why a written artifact reproduces bit-for-bit on any machine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from ..net.nemesis import FaultAction, NemesisMix, apply_schedule, plan_nemesis
from ..sim.rng import RandomStreams
from .generator import WorkloadSpec
from .parallel import run_many
from .runner import ExperimentResult, ExperimentSpec, run_experiment


@dataclass
class ScheduledNemesis:
    """A planned fault schedule as a picklable ``failures`` callback."""

    actions: Tuple[FaultAction, ...]

    def __call__(self, cluster) -> None:
        apply_schedule(cluster.injector, self.actions)


@dataclass
class HuntConfig:
    """Everything one hunt needs; every field is deterministic input."""

    protocol: str = "virtual-partitions"
    processors: int = 4
    objects: int = 3
    copies_per_object: int = 3
    #: placement policy name (None = the legacy contiguous ring); lets
    #: the hunter attack sharded topologies where most objects have
    #: copies on only ``copies_per_object`` of the processors
    placement: Optional[str] = None
    #: atomic-commit backend (None = the config default, 2PC); lets the
    #: hunter attack Paxos Commit with the same fault schedules
    commit_backend: Optional[str] = None
    seed: int = 0
    campaigns: int = 50
    #: last instant a fault may start; every hold is clamped to it
    fault_horizon: float = 180.0
    #: extra run time after ``fault_horizon`` for views and recoveries
    #: to settle (flap tails and probe rounds need room)
    settle: float = 150.0
    #: small and fixed so committed counts stay inside the exact 1SR
    #: checker's limit — every campaign gets a decisive verdict
    txns_per_client: int = 3
    retries: int = 3
    read_fraction: float = 0.6
    mean_interarrival: float = 25.0
    workers: Optional[int] = None
    #: max experiment re-runs the shrinker may spend per finding
    shrink_budget: int = 48
    #: stop hunting after this many findings (0 = run all campaigns)
    stop_after: int = 1
    #: client-session knobs: a non-zero cache or lease duration arms the
    #: client tier in every campaign, so the hunter can attack the lease
    #: staleness bound and write-back flushing with the same schedules
    cache_capacity: int = 0
    cache_policy: str = "write-through"
    lease_duration: float = 0.0
    mix: NemesisMix = field(default_factory=NemesisMix)
    mean_gap: float = 25.0
    #: long holds let faults outlive view-refresh periods — partitions
    #: that heal before anyone refreshes a view convict nothing
    mean_hold: float = 40.0
    burst: Tuple[int, int] = (1, 2)
    start: float = 10.0
    #: online reshard raced against every campaign: at ``reshard_at``
    #: the placement ring expands onto the ``reshard_spares`` highest
    #: pids, which are held out of the initial assignment (0 = no
    #: reshard machinery at all).  Requires ``placement``.
    reshard_at: float = 0.0
    reshard_spares: int = 0
    #: False runs the deliberately unguarded flip — the conviction
    #: canary the auditor must catch
    reshard_guarded: bool = True


@dataclass
class HuntFinding:
    """One convicted campaign, before and after shrinking."""

    campaign: int
    seed: int
    verdict: str
    actions: Tuple[FaultAction, ...]
    shrunk: Optional[Tuple[FaultAction, ...]] = None
    shrunk_verdict: Optional[str] = None
    shrink_runs: int = 0
    artifact: Optional[str] = None


@dataclass
class HuntReport:
    """The outcome of a whole hunt."""

    config: HuntConfig
    campaigns_run: int
    findings: List[HuntFinding]

    @property
    def survived(self) -> bool:
        return not self.findings


def _session_of(cfg: HuntConfig):
    """The campaign's client-session spec (None = raw closed-loop tier)."""
    if cfg.cache_capacity <= 0 and cfg.lease_duration <= 0.0:
        return None
    from ..client.session import SessionSpec
    return SessionSpec(cache_capacity=cfg.cache_capacity,
                       cache_policy=cfg.cache_policy,
                       lease_duration=cfg.lease_duration)


def reshard_schedule(cfg: HuntConfig):
    """The reshard actions a campaign races its faults against.

    Derived entirely from the config — like the fault schedule, planned
    in the parent and replayed deterministically — so an artifact that
    records the knobs reproduces the same migration bit-for-bit.
    """
    if cfg.reshard_at <= 0.0 or cfg.reshard_spares <= 0:
        return None
    if cfg.reshard_spares >= cfg.processors:
        raise ValueError(
            f"reshard_spares={cfg.reshard_spares} leaves no base ring "
            f"in a {cfg.processors}-processor cluster")
    from ..shard import ReshardAction
    spares = tuple(range(cfg.processors - cfg.reshard_spares + 1,
                         cfg.processors + 1))
    return (ReshardAction(time=cfg.reshard_at, add=spares,
                          guarded=cfg.reshard_guarded),)


def campaign_spec(cfg: HuntConfig, actions: Tuple[FaultAction, ...],
                  seed: int) -> ExperimentSpec:
    """The experiment one campaign runs: auditor on, 1SR check on."""
    return ExperimentSpec(
        protocol=cfg.protocol,
        processors=cfg.processors,
        objects=cfg.objects,
        copies_per_object=cfg.copies_per_object,
        placement=cfg.placement,
        commit_backend=cfg.commit_backend,
        seed=seed,
        duration=cfg.fault_horizon,
        grace=cfg.settle,
        workload=WorkloadSpec(read_fraction=cfg.read_fraction,
                              mean_interarrival=cfg.mean_interarrival),
        failures=ScheduledNemesis(tuple(actions)),
        retries=cfg.retries,
        check=True,
        audit=True,
        txns_per_client=cfg.txns_per_client,
        session=_session_of(cfg),
        reshard=reshard_schedule(cfg),
    )


def verdict_of(result: ExperimentResult) -> Optional[str]:
    """None = clean; otherwise a one-line description of the conviction."""
    if result.audit_violations:
        first = result.audit_violations[0]
        return (f"auditor: {len(result.audit_violations)} violation(s), "
                f"first {first['invariant']} at t={first['time']:.2f} "
                f"p{first['pid']}: {first['detail']}")
    if result.one_copy_ok is False:
        return "1SR violation: committed history is not one-copy serializable"
    return None


def plan_campaigns(cfg: HuntConfig) -> List[Tuple[int, Tuple[FaultAction, ...]]]:
    """Derive every campaign's (run seed, fault schedule) from the hunt
    seed — the parent plans, children only replay."""
    streams = RandomStreams(cfg.seed)
    pids = list(range(1, cfg.processors + 1))
    campaigns = []
    for k in range(cfg.campaigns):
        rng = streams.stream(f"nemesis-{k}")
        actions = tuple(plan_nemesis(
            rng, pids, cfg.mix, horizon=cfg.fault_horizon, start=cfg.start,
            mean_gap=cfg.mean_gap, burst=cfg.burst, mean_hold=cfg.mean_hold,
        ))
        seed = streams.stream(f"campaign-{k}").randrange(1 << 30)
        campaigns.append((seed, actions))
    return campaigns


def shrink_schedule(cfg: HuntConfig, seed: int,
                    actions: Tuple[FaultAction, ...],
                    budget: int) -> Tuple[Tuple[FaultAction, ...], int]:
    """Greedy ddmin: drop chunks of the schedule while the run still
    convicts.  Returns (smallest failing schedule found, runs spent)."""

    def still_fails(candidate: Tuple[FaultAction, ...]) -> bool:
        result = run_experiment(campaign_spec(cfg, candidate, seed))
        return verdict_of(result) is not None

    current = list(actions)
    runs = 0
    granularity = 2
    while len(current) >= 1 and runs < budget:
        chunk = max(1, len(current) // granularity)
        reduced = False
        for i in range(0, len(current), chunk):
            if runs >= budget:
                break
            candidate = tuple(current[:i] + current[i + chunk:])
            runs += 1
            if still_fails(candidate):
                current = list(candidate)
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if not reduced:
            if chunk == 1:
                break  # 1-minimal: no single action can be dropped
            granularity = min(len(current), granularity * 2)
    return tuple(current), runs


def write_artifact(path: Path, cfg: HuntConfig,
                   finding: HuntFinding) -> None:
    """Persist a finding as a self-contained, replayable JSON repro."""
    actions = finding.shrunk if finding.shrunk is not None else finding.actions
    data = {
        "protocol": cfg.protocol,
        "processors": cfg.processors,
        "objects": cfg.objects,
        "copies_per_object": cfg.copies_per_object,
        "placement": cfg.placement,
        "commit_backend": cfg.commit_backend,
        "hunt_seed": cfg.seed,
        "campaign": finding.campaign,
        "run_seed": finding.seed,
        "fault_horizon": cfg.fault_horizon,
        "settle": cfg.settle,
        "txns_per_client": cfg.txns_per_client,
        "retries": cfg.retries,
        "read_fraction": cfg.read_fraction,
        "mean_interarrival": cfg.mean_interarrival,
        "cache_capacity": cfg.cache_capacity,
        "cache_policy": cfg.cache_policy,
        "lease_duration": cfg.lease_duration,
        "reshard_at": cfg.reshard_at,
        "reshard_spares": cfg.reshard_spares,
        "reshard_guarded": cfg.reshard_guarded,
        # the derived migration schedule, for human readers; replay
        # re-derives it from the three knobs above
        "reshard_actions": [a.to_dict()
                            for a in (reshard_schedule(cfg) or ())],
        "verdict": finding.shrunk_verdict or finding.verdict,
        "original_action_count": len(finding.actions),
        "actions": [a.to_dict() for a in actions],
    }
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def load_artifact(path: Path) -> Tuple[HuntConfig, int,
                                       Tuple[FaultAction, ...], dict]:
    """Rebuild the (config, seed, schedule) triple an artifact pins."""
    data = json.loads(Path(path).read_text())
    cfg = HuntConfig(
        protocol=data["protocol"],
        processors=data["processors"],
        objects=data["objects"],
        copies_per_object=data["copies_per_object"],
        # absent in artifacts written before sharding existed
        placement=data.get("placement"),
        # absent in artifacts written before Paxos Commit existed
        commit_backend=data.get("commit_backend"),
        seed=data["hunt_seed"],
        fault_horizon=data["fault_horizon"],
        settle=data["settle"],
        txns_per_client=data["txns_per_client"],
        retries=data["retries"],
        read_fraction=data["read_fraction"],
        mean_interarrival=data["mean_interarrival"],
        # absent in artifacts written before the client tier existed
        cache_capacity=data.get("cache_capacity", 0),
        cache_policy=data.get("cache_policy", "write-through"),
        lease_duration=data.get("lease_duration", 0.0),
        # absent in artifacts written before online resharding existed
        reshard_at=data.get("reshard_at", 0.0),
        reshard_spares=data.get("reshard_spares", 0),
        reshard_guarded=data.get("reshard_guarded", True),
    )
    actions = tuple(FaultAction.from_dict(d) for d in data["actions"])
    return cfg, data["run_seed"], actions, data


def replay_artifact(path: Path) -> Tuple[Optional[str], ExperimentResult]:
    """Re-run an artifact's schedule; returns (verdict, result)."""
    cfg, seed, actions, _data = load_artifact(path)
    result = run_experiment(campaign_spec(cfg, actions, seed))
    return verdict_of(result), result


def hunt(cfg: HuntConfig, out_dir: Optional[Path] = None,
         log=None) -> HuntReport:
    """Run the campaign fleet; shrink and persist every finding.

    Campaigns execute in chunks through :func:`run_many` so a hunt with
    ``stop_after`` set stops fanning out soon after it has what it came
    for.  Shrinking runs serially in-process (each step depends on the
    last verdict).
    """
    say = log if log is not None else (lambda _msg: None)
    campaigns = plan_campaigns(cfg)
    findings: List[HuntFinding] = []
    chunk_size = max(4, 2 * (cfg.workers or 1))
    ran = 0
    for lo in range(0, len(campaigns), chunk_size):
        batch = campaigns[lo:lo + chunk_size]
        specs = [campaign_spec(cfg, actions, seed) for seed, actions in batch]
        results = run_many(specs, workers=cfg.workers)
        for offset, result in enumerate(results):
            k = lo + offset
            ran += 1
            verdict = verdict_of(result)
            if verdict is None:
                continue
            seed, actions = campaigns[k]
            say(f"campaign {k}: CONVICTED — {verdict}")
            findings.append(HuntFinding(
                campaign=k, seed=seed, verdict=verdict, actions=actions,
            ))
        if cfg.stop_after and len(findings) >= cfg.stop_after:
            break
    for finding in findings:
        if cfg.shrink_budget > 0:
            say(f"campaign {finding.campaign}: shrinking "
                f"{len(finding.actions)} actions "
                f"(budget {cfg.shrink_budget} runs)")
            shrunk, spent = shrink_schedule(
                cfg, finding.seed, finding.actions, cfg.shrink_budget)
            finding.shrunk = shrunk
            finding.shrink_runs = spent
            confirm = run_experiment(
                campaign_spec(cfg, shrunk, finding.seed))
            finding.shrunk_verdict = verdict_of(confirm)
            say(f"campaign {finding.campaign}: shrunk to {len(shrunk)} "
                f"actions in {spent} runs — {finding.shrunk_verdict}")
        if out_dir is not None:
            out_dir = Path(out_dir)
            out_dir.mkdir(parents=True, exist_ok=True)
            path = out_dir / (f"hunt-{cfg.protocol}-s{cfg.seed}"
                              f"-c{finding.campaign}.json")
            write_artifact(path, cfg, finding)
            finding.artifact = str(path)
            say(f"campaign {finding.campaign}: artifact written to {path}")
    return HuntReport(config=cfg, campaigns_run=ran, findings=findings)
