"""The paper's example scenarios, staged exactly.

These builders reproduce the two counterexamples of §4 under any
protocol, with the failure timing pinned to the instants the paper's
narrative requires.  The anomaly tests and ``bench_example1.py`` /
``bench_example2.py`` run them twice — once under
:class:`~repro.protocols.naive_view.NaiveViewProtocol` (expecting a
one-copy serializability violation) and once under the virtual
partitions protocol (expecting correctness under identical timing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..analysis.one_copy import OneCopyResult, check_one_copy
from ..analysis.serialization import is_cp_serializable
from ..cluster import Cluster
from ..protocols.naive_view import NaiveViewProtocol

#: processor names used in the paper's figures
A, B, C, D = 1, 2, 3, 4


@dataclass
class ScenarioOutcome:
    """What a staged scenario produced."""

    cluster: Cluster
    committed: List[Any]
    aborted: List[Any]
    one_copy: OneCopyResult
    cp_serializable: bool
    final_values: Dict[Tuple[str, int], Any]

    @property
    def lost_update(self) -> bool:
        """Example 1's symptom: two increments, all copies at 1."""
        values = {v for (obj, _pid), v in self.final_values.items()
                  if obj == "x"}
        return values == {1}


def _collect_outcome(cluster: Cluster, objects) -> ScenarioOutcome:
    final = {}
    for obj in objects:
        for pid in cluster.placement.copies(obj):
            value, _date = cluster.processor(pid).store.peek(obj)
            final[(obj, pid)] = value
    history = cluster.history
    return ScenarioOutcome(
        cluster=cluster,
        committed=[r.txn for r in history.committed()],
        aborted=[r.txn for r in history.aborted()],
        one_copy=check_one_copy(history),
        cp_serializable=is_cp_serializable(history),
        final_values=final,
    )


def _increment_body(obj: str):
    def body(txn):
        value = yield from txn.read(obj)
        yield from txn.write(obj, value + 1)
        return value
    return body


def run_example1_naive(seed: int = 0, trace: bool = False) -> ScenarioOutcome:
    """Example 1 under the naive protocol: the lost increment.

    Fig. 1's graph — A·B cut, both connected to C — gives
    view(A)={A,C}, view(B)={B,C}, view(C)={A,B,C}: every processor
    sees a majority of x's three copies.  A increments x using its
    local copy, then B increments x using *its* (still-initial) local
    copy.  Both commit; the update is lost; the execution is
    serializable but not one-copy serializable.
    """
    cluster = Cluster(processors=3, seed=seed, protocol=NaiveViewProtocol,
                      trace=trace)
    cluster.place("x", holders=[A, B, C], initial=0)
    cluster.start()
    for pid in cluster.pids:
        cluster.protocol(pid).auto_refresh = False
    cluster.graph.cut_link(A, B)
    for pid in cluster.pids:
        cluster.protocol(pid).refresh_view()  # A3 taken literally

    first = cluster.submit(A, _increment_body("x"))
    cluster.run(until=30.0)
    second = cluster.submit(B, _increment_body("x"))
    cluster.run(until=60.0)
    assert first.value[0] and second.value[0], "both increments must commit"
    return _collect_outcome(cluster, ["x"])


def run_example1_vp(seed: int = 0, retries: int = 40,
                    backoff: float = 4.0,
                    trace: bool = False) -> ScenarioOutcome:
    """Example 1's failure under the virtual partitions protocol.

    Same non-transitive graph and the same two increment transactions
    (with retries, since partition churn may abort attempts).  The
    protocol serializes the partitions, so the second increment reads
    the first one's value through C's copy and no update is lost.
    """
    cluster = Cluster(processors=3, seed=seed, trace=trace)
    cluster.place("x", holders=[A, B, C], initial=0)
    cluster.start()
    cluster.injector.cut_at(2.0, A, B)

    first = cluster.submit(A, _increment_body("x"), retries=retries,
                           backoff=backoff)
    cluster.run(until=250.0)
    second = cluster.submit(B, _increment_body("x"), retries=retries,
                            backoff=backoff)
    cluster.run(until=500.0)
    assert first.value[0] and second.value[0], (
        f"increments must eventually commit: {first.value}, {second.value}"
    )
    return _collect_outcome(cluster, ["x"])


#: Table 2's copy placement: superscript 2 = weight 2
EXAMPLE2_PLACEMENT = {
    "a": {A: 2, D: 1},
    "b": {B: 2, A: 1},
    "c": {C: 2, B: 1},
    "d": {D: 2, C: 1},
}

#: Table 2's transactions: processor -> (read object, write object)
EXAMPLE2_TXNS = {A: ("b", "a"), B: ("c", "b"), C: ("d", "c"), D: ("a", "d")}


def _read_write_body(read_obj: str, write_obj: str, tag: str):
    def body(txn):
        value = yield from txn.read(read_obj)
        yield from txn.write(write_obj, f"{tag}-wrote-{write_obj}")
        return value
    return body


def run_example2_naive(seed: int = 0, trace: bool = False) -> ScenarioOutcome:
    """Example 2 under the naive protocol: the stale-view cycle.

    The system starts partitioned {A,B} | {C,D} and re-partitions to
    {B,C} | {A,D} (Fig. 2).  B and D update their views immediately;
    A and C still hold the old views (Table 1).  Each processor then
    runs its Table 2 transaction, each touching only local copies.
    All four commit; the execution is serializable but the reads-from
    cycle T_A→T_B→T_C→T_D→T_A makes it non-1SR.
    """
    cluster = Cluster(processors=4, seed=seed, protocol=NaiveViewProtocol,
                      trace=trace)
    for obj, holders in EXAMPLE2_PLACEMENT.items():
        cluster.place(obj, holders=holders, initial=f"{obj}0")
    cluster.start()
    for pid in cluster.pids:
        cluster.protocol(pid).auto_refresh = False

    cluster.graph.partition([{A, B}, {C, D}])
    for pid in cluster.pids:
        cluster.protocol(pid).refresh_view()
    cluster.run(until=5.0)
    # Re-partition; only B and D notice (Table 1's intermediate state).
    cluster.graph.partition([{B, C}, {A, D}])
    cluster.protocol(B).refresh_view()
    cluster.protocol(D).refresh_view()

    outcomes = []
    for pid, (read_obj, write_obj) in sorted(EXAMPLE2_TXNS.items()):
        outcomes.append(cluster.submit(
            pid, _read_write_body(read_obj, write_obj, f"T{pid}")
        ))
        cluster.run(until=cluster.sim.now + 20.0)
    assert all(done.value[0] for done in outcomes), (
        "all four Table-2 transactions must commit under the naive protocol"
    )
    return _collect_outcome(cluster, list(EXAMPLE2_PLACEMENT))


def run_example2_vp(seed: int = 0, retries: int = 40,
                    backoff: float = 4.0,
                    trace: bool = False) -> ScenarioOutcome:
    """Example 2's re-partition under the virtual partitions protocol.

    Identical placement, partition timing, and transaction programs.
    S3 forces every processor in a new partition's view to depart its
    old partition before anyone joins, so the Table-2 cycle cannot
    form: whatever commits is one-copy serializable.
    """
    cluster = Cluster(processors=4, seed=seed, trace=trace)
    for obj, holders in EXAMPLE2_PLACEMENT.items():
        cluster.place(obj, holders=holders, initial=f"{obj}0")
    cluster.start()
    cluster.injector.partition_at(2.0, [{A, B}, {C, D}])
    cluster.run(until=120.0)
    cluster.injector.partition_at(cluster.sim.now + 1.0, [{B, C}, {A, D}])

    outcomes = {}
    for pid, (read_obj, write_obj) in sorted(EXAMPLE2_TXNS.items()):
        outcomes[pid] = cluster.submit(
            pid, _read_write_body(read_obj, write_obj, f"T{pid}"),
            retries=retries, backoff=backoff,
        )
    cluster.run(until=700.0)
    return _collect_outcome(cluster, list(EXAMPLE2_PLACEMENT))
