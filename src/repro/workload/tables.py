"""ASCII tables and series for benchmark reports.

The benchmark harness prints results in the same shape the paper's
claims are stated (who wins, by what factor, where crossovers fall);
these helpers keep that output consistent across benches.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}" if abs(value) < 10 else f"{value:.1f}"
    return str(value)


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[Any]],
                 title: str = "") -> str:
    """A boxed, aligned ASCII table."""
    grid = [list(map(format_cell, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in grid:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells, pad=" "):
        return "| " + " | ".join(
            cell.ljust(width, pad) for cell, width in zip(cells, widths)
        ) + " |"

    separator = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out = []
    if title:
        out.append(title)
    out.append(separator)
    out.append(line(headers))
    out.append(separator)
    for row in grid:
        out.append(line(row))
    out.append(separator)
    return "\n".join(out)


def format_quantiles(summary: dict, quantiles: Sequence[str] = ("p50", "p99"),
                     ) -> str:
    """A compact ``p50/p99`` cell from a histogram ``summary()`` dict.

    Empty histograms render as ``-`` so latency columns stay readable
    in cells where nothing committed.
    """
    if not summary or not summary.get("count"):
        return "-"
    return "/".join(format_cell(float(summary.get(q, 0.0)))
                    for q in quantiles)


def render_series(label: str, xs: Sequence[Any],
                  ys: Sequence[float], x_name: str = "x",
                  y_name: str = "y") -> str:
    """A one-line-per-point series, greppable in benchmark logs."""
    out = [f"# series: {label} ({x_name} -> {y_name})"]
    for x, y in zip(xs, ys):
        out.append(f"{label}\t{format_cell(x)}\t{format_cell(y)}")
    return "\n".join(out)
