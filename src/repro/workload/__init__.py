"""Workloads, scenarios, and the experiment harness."""

from .generator import WorkloadGenerator, WorkloadSpec, body_for
from .runner import (
    ExperimentResult,
    ExperimentSpec,
    build_cluster,
    run_experiment,
)
from .sweep import grid, sweep, sweep_protocols
from .tables import render_series, render_table

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "WorkloadGenerator",
    "WorkloadSpec",
    "body_for",
    "build_cluster",
    "grid",
    "render_series",
    "render_table",
    "run_experiment",
    "sweep",
    "sweep_protocols",
]
