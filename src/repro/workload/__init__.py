"""Workloads, scenarios, and the experiment harness."""

from .generator import WorkloadGenerator, WorkloadSpec, body_for
from .parallel import default_workers, portable_result, run_many
from .runner import (
    ExperimentResult,
    ExperimentSpec,
    build_cluster,
    run_experiment,
)
from .sweep import averaged, grid, sweep, sweep_protocols
from .tables import render_series, render_table

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "WorkloadGenerator",
    "WorkloadSpec",
    "averaged",
    "body_for",
    "build_cluster",
    "default_workers",
    "grid",
    "portable_result",
    "render_series",
    "render_table",
    "run_experiment",
    "run_many",
    "sweep",
    "sweep_protocols",
]
