"""Workloads, scenarios, and the experiment harness."""

from .generator import WorkloadGenerator, WorkloadSpec, body_for
from .hunt import (
    HuntConfig,
    HuntFinding,
    HuntReport,
    ScheduledNemesis,
    hunt,
    replay_artifact,
)
from .parallel import default_workers, portable_result, run_many
from .runner import (
    ExperimentResult,
    ExperimentSpec,
    build_cluster,
    run_experiment,
)
from .sweep import averaged, grid, sweep, sweep_protocols
from .tables import render_series, render_table

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "HuntConfig",
    "HuntFinding",
    "HuntReport",
    "ScheduledNemesis",
    "WorkloadGenerator",
    "WorkloadSpec",
    "averaged",
    "body_for",
    "build_cluster",
    "default_workers",
    "grid",
    "hunt",
    "portable_result",
    "render_series",
    "render_table",
    "replay_artifact",
    "run_experiment",
    "run_many",
    "sweep",
    "sweep_protocols",
]
