"""Parallel experiment execution: fan specs out across CPU cores.

Every experiment is an isolated, deterministically seeded simulation,
so a sweep is embarrassingly parallel: each child process builds its
own :class:`~repro.sim.Simulator` from the pickled
:class:`~repro.workload.runner.ExperimentSpec` and replays exactly the
run the serial path would have produced.  Only wall-clock differs —
committed/aborted counts, protocol metrics, message-cost counters, and
the registry snapshot are identical between ``workers=1`` and
``workers=N`` (pinned by ``tests/workload/test_parallel.py``).

Two practical constraints follow from pickling:

* Specs cross a process boundary, so their callables (``failures``,
  ``objects_for``) must be module-level functions or picklable
  callable objects — not lambdas or closures.  The CLI's
  :class:`~repro.cli.ScriptedFailures` is the reference example.
* A finished :class:`Cluster` holds live generators and cannot cross
  back, so parallel results carry ``cluster=None``
  (:func:`portable_result`); everything derived from the cluster —
  metrics, network stats, the registry, the 1SR verdict — is computed
  in the child and shipped home as plain data.

A child that raises does not hang the pool: the exception is re-raised
in the parent by ``Future.result()`` in submission order.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Iterable, List, Optional

from .runner import ExperimentResult, ExperimentSpec, run_experiment


def default_workers() -> int:
    """Worker count used when ``workers=None``: one per *available* CPU
    (CPU affinity masks and container quotas count, raw core totals
    don't)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def portable_result(result: ExperimentResult) -> ExperimentResult:
    """A copy of ``result`` that survives pickling.

    The live cluster (simulator, generators, open processes) stays in
    the child; all measured outputs are plain data and travel intact.
    """
    return replace(result, cluster=None)


def _run_portable(spec: ExperimentSpec) -> ExperimentResult:
    """Child entry point: run one experiment, return the picklable part."""
    return portable_result(run_experiment(spec))


def run_many(specs: Iterable[ExperimentSpec],
             workers: Optional[int] = None) -> List[ExperimentResult]:
    """Run every spec, in parallel when ``workers`` allows.

    Results come back in submission order regardless of which child
    finishes first, so callers can ``zip`` them with their inputs.
    ``workers=None`` uses one worker per CPU; ``workers<=1`` (or a
    single spec) runs serially in-process, in which case results keep
    their live ``cluster`` exactly as :func:`run_experiment` returns it.
    """
    specs = list(specs)
    count = default_workers() if workers is None else workers
    if count <= 1 or len(specs) <= 1:
        return [run_experiment(spec) for spec in specs]
    with ProcessPoolExecutor(max_workers=min(count, len(specs))) as pool:
        futures = [pool.submit(_run_portable, spec) for spec in specs]
        return [future.result() for future in futures]
