"""Synthetic transaction workloads.

The paper's cost argument is parameterized by the read/write mix
("reads outnumber writes") and failure rarity; the generator produces
transaction bodies over a keyspace with a configurable read fraction,
object-selection skew, and transaction size, plus a Poisson arrival
process to drive open-loop experiments.
"""

from __future__ import annotations

import random
from bisect import bisect
from dataclasses import dataclass
from itertools import accumulate
from typing import Callable, List, Sequence, Tuple


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a transaction mix."""

    read_fraction: float = 0.9
    ops_per_txn: int = 2
    zipf_s: float = 0.0  # 0 = uniform object choice
    #: mean inter-arrival time of transactions per processor
    mean_interarrival: float = 5.0

    def __post_init__(self):
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(f"read_fraction out of range: {self.read_fraction}")
        if self.ops_per_txn < 1:
            raise ValueError("transactions need at least one operation")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be non-negative")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")


class WorkloadGenerator:
    """Draws transaction programs according to a :class:`WorkloadSpec`."""

    def __init__(self, spec: WorkloadSpec, objects: Sequence[str],
                 rng: random.Random):
        if not objects:
            raise ValueError("need at least one object")
        self.spec = spec
        self.objects = list(objects)
        self.rng = rng
        self._weights = self._zipf_weights()
        self._cdf = list(accumulate(self._weights))

    def _zipf_weights(self) -> List[float]:
        if self.spec.zipf_s == 0:
            return [1.0] * len(self.objects)
        return [1.0 / (rank ** self.spec.zipf_s)
                for rank in range(1, len(self.objects) + 1)]

    def pick_object(self) -> str:
        """One object, uniform or zipf-skewed.

        Inverse-CDF sampling over a *precomputed* cumulative table —
        one ``rng.random()`` and a bisect per draw (``random.choices``
        draws identically but re-accumulates the weights every call,
        which is O(n) per object on sharded keyspaces of thousands).
        The draw sequence is bit-identical to ``rng.choices(objects,
        weights, k=1)`` under the same rng state.
        """
        point = self.rng.random() * self._cdf[-1]
        return self.objects[bisect(self._cdf, point,
                                   0, len(self.objects) - 1)]

    def next_program(self) -> List[Tuple[str, str]]:
        """A transaction program: a list of ``("r"|"w", obj)`` steps.

        Objects within one transaction are distinct (sampled without
        replacement) to keep lock ordering simple and deadlocks rare —
        deadlock behaviour is exercised separately by the cc tests.
        """
        count = min(self.spec.ops_per_txn, len(self.objects))
        if self.spec.zipf_s == 0:
            chosen = self.rng.sample(self.objects, count)
        else:
            chosen = []
            while len(chosen) < count:
                obj = self.pick_object()
                if obj not in chosen:
                    chosen.append(obj)
        return [
            ("r" if self.rng.random() < self.spec.read_fraction else "w", obj)
            for obj in sorted(chosen)
        ]

    def next_interarrival(self) -> float:
        """Exponential inter-arrival time."""
        return self.rng.expovariate(1.0 / self.spec.mean_interarrival)


def body_for(program: Sequence[Tuple[str, str]],
             tag: str = "") -> Callable:
    """Turn a program into a transaction body for ``TransactionManager.run``.

    Writes store a fresh unique value derived from what was read (or the
    step index), so every write is distinguishable to the checkers.
    """

    def body(txn):
        result = None
        for index, (kind, obj) in enumerate(program):
            if kind == "r":
                result = yield from txn.read(obj)
            else:
                yield from txn.write(obj, f"{tag}#{txn.txn_id}/{index}")
        return result

    return body
