"""Parameter sweeps over experiment specs.

Every sweep shape builds its full spec list up front and hands it to
:func:`~repro.workload.parallel.run_many`, so one ``workers=N``
argument parallelizes all of them.  ``workers=1`` (the default) is the
plain serial path; parallel runs return results identical to it, in
the same order — each child owns its own seeded simulator.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple

from .parallel import run_many
from .runner import ExperimentResult, ExperimentSpec


def sweep(base: ExperimentSpec, axis: str, values: Sequence[Any],
          workers: int = 1) -> List[Tuple[Any, ExperimentResult]]:
    """Run ``base`` once per value of ``axis``.

    ``axis`` may name a field of :class:`ExperimentSpec` or, with the
    ``workload.`` prefix, a field of its :class:`WorkloadSpec`.
    """
    values = list(values)
    specs = [_with(base, axis, value) for value in values]
    return list(zip(values, run_many(specs, workers=workers)))


def sweep_protocols(base: ExperimentSpec, protocols: Sequence[str],
                    workers: int = 1) -> Dict[str, ExperimentResult]:
    """Run the identical workload under each protocol (paired seeds)."""
    names = list(protocols)
    specs = [replace(base, protocol=name) for name in names]
    return dict(zip(names, run_many(specs, workers=workers)))


def grid(base: ExperimentSpec, axes: Dict[str, Sequence[Any]],
         workers: int = 1) -> List[Tuple[Dict[str, Any], ExperimentResult]]:
    """Full cartesian sweep over several axes."""
    names = sorted(axes)
    points: List[Dict[str, Any]] = []
    specs: List[ExperimentSpec] = []

    def recurse(index: int, point: Dict[str, Any],
                spec: ExperimentSpec) -> None:
        if index == len(names):
            points.append(dict(point))
            specs.append(spec)
            return
        axis = names[index]
        for value in axes[axis]:
            point[axis] = value
            recurse(index + 1, point, _with(spec, axis, value))
        del point[axis]

    recurse(0, {}, base)
    return list(zip(points, run_many(specs, workers=workers)))


def averaged(run: Callable[[int], float], seeds: Iterable[int],
             workers: int = 1) -> float:
    """Mean of a scalar measurement across seeds.

    With ``workers > 1``, seeds fan out over a process pool; ``run``
    must then be picklable (a module-level function, not a closure).
    """
    seeds = list(seeds)
    if not seeds:
        raise ValueError("no seeds supplied")
    if workers <= 1 or len(seeds) <= 1:
        values = [run(seed) for seed in seeds]
    else:
        with ProcessPoolExecutor(
                max_workers=min(workers, len(seeds))) as pool:
            values = list(pool.map(run, seeds))
    return sum(values) / len(values)


def _with(spec: ExperimentSpec, axis: str, value: Any) -> ExperimentSpec:
    if axis.startswith("workload."):
        field = axis.split(".", 1)[1]
        if not hasattr(spec.workload, field):
            raise AttributeError(f"WorkloadSpec has no field {field!r}")
        return replace(spec, workload=replace(spec.workload,
                                              **{field: value}))
    if not hasattr(spec, axis):
        raise AttributeError(f"ExperimentSpec has no field {axis!r}")
    return replace(spec, **{axis: value})
