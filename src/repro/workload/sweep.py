"""Parameter sweeps over experiment specs."""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple

from .runner import ExperimentResult, ExperimentSpec, run_experiment


def sweep(base: ExperimentSpec, axis: str,
          values: Sequence[Any]) -> List[Tuple[Any, ExperimentResult]]:
    """Run ``base`` once per value of ``axis``.

    ``axis`` may name a field of :class:`ExperimentSpec` or, with the
    ``workload.`` prefix, a field of its :class:`WorkloadSpec`.
    """
    results = []
    for value in values:
        results.append((value, run_experiment(_with(base, axis, value))))
    return results


def sweep_protocols(base: ExperimentSpec, protocols: Sequence[str],
                    ) -> Dict[str, ExperimentResult]:
    """Run the identical workload under each protocol (paired seeds)."""
    return {
        name: run_experiment(replace(base, protocol=name))
        for name in protocols
    }


def grid(base: ExperimentSpec, axes: Dict[str, Sequence[Any]],
         ) -> List[Tuple[Dict[str, Any], ExperimentResult]]:
    """Full cartesian sweep over several axes."""
    names = sorted(axes)
    results: List[Tuple[Dict[str, Any], ExperimentResult]] = []

    def recurse(index: int, point: Dict[str, Any],
                spec: ExperimentSpec) -> None:
        if index == len(names):
            results.append((dict(point), run_experiment(spec)))
            return
        axis = names[index]
        for value in axes[axis]:
            point[axis] = value
            recurse(index + 1, point, _with(spec, axis, value))
        del point[axis]

    recurse(0, {}, base)
    return results


def averaged(run: Callable[[int], float], seeds: Iterable[int]) -> float:
    """Mean of a scalar measurement across seeds."""
    values = [run(seed) for seed in seeds]
    if not values:
        raise ValueError("no seeds supplied")
    return sum(values) / len(values)


def _with(spec: ExperimentSpec, axis: str, value: Any) -> ExperimentSpec:
    if axis.startswith("workload."):
        field = axis.split(".", 1)[1]
        if not hasattr(spec.workload, field):
            raise AttributeError(f"WorkloadSpec has no field {field!r}")
        return replace(spec, workload=replace(spec.workload,
                                              **{field: value}))
    if not hasattr(spec, axis):
        raise AttributeError(f"ExperimentSpec has no field {axis!r}")
    return replace(spec, **{axis: value})
