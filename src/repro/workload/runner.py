"""The experiment harness: one protocol, one workload, one failure script.

Drives an open-loop client at every processor, collects protocol and
network counters, and computes the derived quantities the paper's
claims are stated in: physical accesses per logical operation, messages
per committed transaction, abort rates, and availability.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional

from ..client.session import ClientSession, SessionSpec
from ..cluster import Cluster
from ..core.config import ProtocolConfig
from ..net.latency import LatencyModel
from ..obs.metrics import MetricsRegistry
from ..protocols import protocol_factory
from .generator import WorkloadGenerator, WorkloadSpec, body_for

#: message kinds on the transaction path (Figs. 10-12 + the atomic
#: commit backends: 2PC's vote round and Paxos Commit's px-* consensus
#: traffic).  The complement — probes, view creation, copy update — is
#: background maintenance whose volume scales with cluster size and
#: run length, not with committed work; scaling claims must separate
#: the two.
TXN_MESSAGE_KINDS = frozenset({
    "read", "read-reply", "write", "write-reply",
    "prepare", "prepare-reply", "release",
    "txn-status", "txn-status-reply",
    "px-accept", "px-accepted",
    "px-p1", "px-p1-reply", "px-p2", "px-p2-reply",
})


@dataclass
class ExperimentSpec:
    """Everything one experiment run needs."""

    protocol: str = "virtual-partitions"
    processors: int = 5
    objects: int = 10
    copies_per_object: Optional[int] = None  # None = full replication
    seed: int = 0
    duration: float = 400.0
    grace: float = 60.0
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    latency: Optional[LatencyModel] = None
    config: Optional[ProtocolConfig] = None
    #: callback(cluster) scheduling failures before the run starts
    failures: Optional[Callable[[Cluster], None]] = None
    retries: int = 0
    check: bool = False  # run the 1SR checker afterwards (small runs only)
    trace: bool = False  # collect a structured event trace (cluster.tracer)
    audit: bool = False  # hook in the runtime invariant auditor
    #: concurrent clients per processor (>1 creates same-tick fan-out
    #: overlap, which is what transport batching coalesces)
    clients: int = 1
    #: fixed transaction count per client (None = open loop until
    #: ``duration``); fixed counts make paired runs attempt identical work
    txns_per_client: Optional[int] = None
    #: optional per-client object pool: (pid, client_index) -> object
    #: names that client draws from (None = every client uses all objects)
    objects_for: Optional[Callable[[int, int], Any]] = None
    #: placement policy name (see :data:`repro.shard.POLICIES`); None =
    #: the legacy contiguous-ring layout.  ``copies_per_object`` is the
    #: replication degree in both cases.
    placement: Optional[str] = None
    #: directory kind routing accesses ("local"/"cached"); None = local
    directory: Optional[str] = None
    #: cache capacity for the "cached" directory (None = its default)
    directory_capacity: Optional[int] = None
    #: atomic-commit backend override ("2pc"/"paxos"); None = whatever
    #: ``config`` says (itself defaulting to "2pc")
    commit_backend: Optional[str] = None
    #: open-loop load: arrivals fire on the Poisson clock regardless of
    #: service time (each spawns a worker), so latency includes
    #: queueing.  False (default) is the historical closed loop —
    #: rng-identical to the pre-session driver.
    open_loop: bool = False
    #: client-tier knobs (cache + leases); None = no session tier, the
    #: byte-identical default path
    session: Optional["SessionSpec"] = None
    #: online placement changes: a tuple of :class:`~repro.shard.
    #: reshard.ReshardAction` (or their dicts).  Requires ``placement``;
    #: the pids the actions add are held out of the initial assignment
    #: and joined live by the migration engine.  None = no reshard
    #: machinery is constructed at all (the byte-identical default).
    reshard: Optional[tuple] = None


@dataclass
class ExperimentResult:
    """Raw counters + derived metrics from one run."""

    spec: ExperimentSpec
    committed: int
    aborted: int
    metrics: Any
    network: dict
    one_copy_ok: Optional[bool]
    cluster: Optional[Cluster]
    registry: Optional[MetricsRegistry] = None
    #: kernel events dispatched during the run — deterministic for a
    #: seeded spec, so it participates in serial/parallel equality
    events_dispatched: int = 0
    #: wall-clock seconds spent inside ``cluster.run`` — NOT
    #: deterministic, deliberately excluded from :meth:`fingerprint`
    wall_seconds: float = 0.0
    #: runtime invariant violations (as plain dicts, so results cross
    #: process boundaries); empty unless ``spec.audit`` was set
    audit_violations: tuple = ()

    @property
    def events_per_sec(self) -> float:
        """Simulated events dispatched per wall-clock second."""
        return (self.events_dispatched / self.wall_seconds
                if self.wall_seconds else 0.0)

    def fingerprint(self) -> dict:
        """Every deterministic output of the run, as plain data.

        Two runs of the same spec — serial or parallel, this kernel or
        the last one — must produce equal fingerprints; wall-clock and
        the live cluster are excluded because they legitimately differ.
        """
        metrics = self.metrics
        if dataclasses.is_dataclass(metrics):
            metrics = dataclasses.asdict(metrics)
        return {
            "committed": self.committed,
            "aborted": self.aborted,
            "one_copy_ok": self.one_copy_ok,
            "metrics": metrics,
            "network": dict(self.network),
            "events_dispatched": self.events_dispatched,
            "registry": (self.registry.snapshot()
                         if self.registry is not None else None),
            "audit_violations": [dict(v) for v in self.audit_violations],
        }

    @property
    def attempted(self) -> int:
        return self.committed + self.aborted

    @property
    def commit_rate(self) -> float:
        return self.committed / self.attempted if self.attempted else 0.0

    @property
    def reads_per_logical_read(self) -> float:
        """Physical accesses per logical read — the paper's headline
        efficiency metric (1.0 for read-one protocols)."""
        m = self.metrics
        data_reads = m.physical_read_rpcs - m.version_collect_rpcs
        return data_reads / m.logical_reads if m.logical_reads else 0.0

    @property
    def writes_per_logical_write(self) -> float:
        m = self.metrics
        return (m.physical_write_rpcs / m.logical_writes
                if m.logical_writes else 0.0)

    @property
    def accesses_per_operation(self) -> float:
        """Physical accesses per logical operation over the whole mix."""
        m = self.metrics
        ops = m.logical_reads + m.logical_writes
        total = m.physical_read_rpcs + m.physical_write_rpcs
        return total / ops if ops else 0.0

    @property
    def messages_per_committed_txn(self) -> float:
        return (self.network["sent"] / self.committed
                if self.committed else float("inf"))

    @property
    def txn_messages(self) -> int:
        """Messages on the transaction path only (no probe/view traffic)."""
        by_kind = self.network.get("by_kind", {})
        return sum(count for kind, count in by_kind.items()
                   if kind in TXN_MESSAGE_KINDS)

    @property
    def txn_messages_per_committed_txn(self) -> float:
        """The scaling claim's metric: transaction-path messages per
        commit.  Tracks the replication degree; background maintenance
        (which *does* grow with cluster size) is excluded."""
        return (self.txn_messages / self.committed
                if self.committed else float("inf"))

    @property
    def envelopes_per_committed_txn(self) -> float:
        """Physical transmissions per committed transaction — with
        batching this drops below :attr:`messages_per_committed_txn`."""
        envelopes = self.network.get("envelopes", self.network["sent"])
        return (envelopes / self.committed
                if self.committed else float("inf"))

    @property
    def batch_occupancy(self) -> float:
        """Mean logical messages per envelope (1.0 = no batching win)."""
        return self.network.get("batch_occupancy", 1.0)

    # -- client-tier views (latency SLO + session efficiency) ----------------

    def latency_summary(self) -> dict:
        """Percentile summary of client-observed program latency.

        ``client.txn_latency`` measures completion − arrival per
        committed program (queueing included under open loop, zero for
        locally-served programs); protocol-only runs fall back to the
        history-derived ``txn.latency`` service times.
        """
        if self.registry is None:
            return {"count": 0}
        histograms = self.registry.snapshot()["histograms"]
        for name in ("client.txn_latency", "txn.latency"):
            summary = histograms.get(name)
            if summary and summary.get("count"):
                return summary
        return {"count": 0}

    @property
    def latency_p50(self) -> float:
        return self.latency_summary().get("p50", 0.0)

    @property
    def latency_p99(self) -> float:
        return self.latency_summary().get("p99", 0.0)

    def _client_counter(self, name: str) -> int:
        if self.registry is None:
            return 0
        return self.registry.snapshot()["counters"].get(name, 0)

    @property
    def local_read_fraction(self) -> float:
        """Reads served without a protocol transaction (cache + lease)."""
        reads = self._client_counter("client.reads")
        if not reads:
            return 0.0
        return (self._client_counter("client.lease_reads")
                + self._client_counter("client.cache_reads")) / reads

    @property
    def messages_per_client_program(self) -> float:
        """Transaction-path messages per *committed client program*.

        With a session tier, locally-served programs commit without a
        protocol transaction, so this is the cost metric that makes
        session cells comparable to the no-session baseline (whose
        programs and protocol transactions coincide).
        """
        programs = self._client_counter("client.programs_committed")
        denominator = programs or self.committed
        return (self.txn_messages / denominator
                if denominator else float("inf"))


def build_cluster(spec: ExperimentSpec) -> Cluster:
    """Construct (but do not run) the cluster an ExperimentSpec describes."""
    config = spec.config
    if spec.commit_backend is not None:
        config = replace(config or ProtocolConfig(),
                         commit_backend=spec.commit_backend)
    cluster = Cluster(
        processors=spec.processors, seed=spec.seed,
        latency=spec.latency, config=config,
        protocol=protocol_factory(spec.protocol),
        trace=spec.trace,
        audit=spec.audit,
        directory=spec.directory,
        directory_capacity=spec.directory_capacity,
    )
    pids = cluster.pids
    copies = spec.copies_per_object or len(pids)
    if not 1 <= copies <= len(pids):
        raise ValueError(f"copies_per_object out of range: {copies}")
    if spec.placement is None:
        if spec.reshard:
            raise ValueError("reshard requires a placement policy")
        for index in range(spec.objects):
            holders = [pids[(index + k) % len(pids)] for k in range(copies)]
            cluster.place(f"o{index}", holders=holders, initial=0)
    elif spec.reshard:
        from ..shard import ReshardAction, ReshardEngine, object_names
        from ..shard.policy import make_policy
        policy = make_policy(spec.placement, degree=copies, seed=spec.seed)
        actions = tuple(
            action if isinstance(action, ReshardAction)
            else ReshardAction.from_dict(action)
            for action in spec.reshard
        )
        names = object_names(spec.objects)
        engine = ReshardEngine(cluster, policy, names, actions)
        # the added pids start copy-free: the initial placement covers
        # only the base ring, and the engine grows it live
        cluster.shard(policy, names, initial=0, pids=engine.base_pids)
        engine.enable()
        cluster.reshard_engine = engine
    else:
        from ..shard import object_names
        cluster.shard(spec.placement, object_names(spec.objects),
                      degree=copies, seed=spec.seed, initial=0)
    return cluster


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    """Execute one experiment and gather its results."""
    cluster = build_cluster(spec)
    cluster.start()
    if spec.failures is not None:
        spec.failures(cluster)
    objects = [f"o{i}" for i in range(spec.objects)]

    if spec.clients < 1:
        raise ValueError(f"clients must be >= 1: {spec.clients}")
    observer = ClientObserver()
    sessions: list = []
    for pid in cluster.pids:
        for client in range(spec.clients):
            # client 0 keeps the original stream/tag names so existing
            # single-client runs stay byte-identical under one seed
            suffix = "" if client == 0 else f"c{client}"
            pool = (objects if spec.objects_for is None
                    else list(spec.objects_for(pid, client)))
            generator = WorkloadGenerator(
                spec.workload, pool,
                cluster.streams.stream(f"workload-p{pid}{suffix}"),
            )
            session = None
            if spec.session is not None and spec.session.enabled:
                session = ClientSession(cluster.tm(pid),
                                        cluster.protocols[pid],
                                        spec.session,
                                        auditor=cluster.auditor)
                sessions.append(session)
            cluster.sim.process(
                _client(cluster, pid, generator, spec, tag=f"p{pid}{suffix}",
                        session=session, observer=observer),
                name=f"client@p{pid}{suffix}",
            )

    wall_start = time.perf_counter()
    cluster.run(until=spec.duration + spec.grace)
    wall_seconds = time.perf_counter() - wall_start

    committed = len(cluster.history.committed())
    aborted = len(cluster.history.aborted())
    one_copy_ok: Optional[bool] = None
    if spec.check:
        from ..analysis.one_copy import InconclusiveCheck
        try:
            one_copy_ok = cluster.check_one_copy_serializable()
        except InconclusiveCheck:
            one_copy_ok = None  # too many records for the exact checker
    audit_violations: tuple = ()
    if cluster.auditor is not None:
        cluster.auditor.finalize()
        audit_violations = tuple(
            v.to_dict() for v in cluster.auditor.violations
        )
    return ExperimentResult(
        spec=spec,
        committed=committed,
        aborted=aborted,
        metrics=cluster.total_metrics(),
        network=cluster.network.stats.snapshot(),
        one_copy_ok=one_copy_ok,
        cluster=cluster,
        registry=collect_registry(cluster, sessions=sessions,
                                  observer=observer),
        events_dispatched=cluster.sim.dispatched,
        wall_seconds=wall_seconds,
        audit_violations=audit_violations,
    )


@dataclass
class ClientObserver:
    """Client-observed latency samples, shared by a run's client loops.

    One sample per committed program: completion − arrival.  Under the
    closed loop arrival is when the think-time sleep ends (so the
    sample equals service time); under the open loop arrival is the
    Poisson clock tick, so queueing behind slow transactions shows up
    — the latency-SLO view a cost-per-transaction metric cannot give.
    """

    latencies: list = field(default_factory=list)


def collect_registry(cluster: Cluster, sessions=(),
                     observer: Optional[ClientObserver] = None,
                     ) -> MetricsRegistry:
    """Distil a finished cluster's counters into a metrics registry.

    This is the structured-output side of every experiment and
    benchmark: counters for transaction outcomes and per-kind message
    traffic, gauges for protocol-level totals, and a histogram of
    committed-transaction latencies (simulated time).
    """
    registry = MetricsRegistry()
    registry.counter("sim.dispatched").inc(cluster.sim.dispatched)
    if cluster.auditor is not None:
        registry.counter("audit.violations").inc(
            len(cluster.auditor.violations))
    history = cluster.history
    committed = history.committed()
    registry.counter("txn.committed").inc(len(committed))
    registry.counter("txn.aborted").inc(len(history.aborted()))
    latency = registry.histogram("txn.latency")
    for record in committed:
        if record.end_time is not None:
            latency.observe(record.end_time - record.begin_time)
    stats = cluster.network.stats
    registry.counter("msg.sent").inc(stats.sent)
    registry.counter("msg.delivered").inc(stats.delivered)
    registry.counter("msg.dropped").inc(stats.dropped)
    registry.counter("msg.envelopes").inc(stats.envelopes)
    registry.counter("msg.macro_wakeups").inc(stats.macro_wakeups)
    registry.gauge("msg.batch_occupancy").set(stats.batch_occupancy)
    if committed:
        registry.gauge("txn.messages_per_commit").set(
            stats.sent / len(committed))
        registry.gauge("txn.envelopes_per_commit").set(
            stats.envelopes / len(committed))
    for kind in sorted(stats.by_kind):
        registry.counter(f"msg.kind.{kind}").inc(stats.by_kind[kind])
    fanout_latency = registry.histogram("transport.fanout_latency")
    for pid in cluster.pids:
        transport = cluster.processors[pid].transport
        registry.counter("transport.fanouts").inc(transport.fanouts)
        registry.counter("transport.broadcasts").inc(transport.broadcasts)
        registry.counter("transport.rpcs").inc(transport.rpcs)
        registry.counter("transport.no_responses").inc(
            transport.no_responses)
        registry.counter("transport.early_exits").inc(
            transport.early_exits)
        registry.counter("transport.late_replies").inc(
            transport.late_replies)
        registry.counter("transport.routed_fanouts").inc(
            transport.routed_fanouts)
        fanout_latency.observe_many(transport.fanout_latencies)
    for pid in sorted(getattr(cluster, "directories", {})):
        dstats = cluster.directories[pid].stats
        registry.counter("directory.lookups").inc(dstats.lookups)
        registry.counter("directory.hits").inc(dstats.hits)
        registry.counter("directory.misses").inc(dstats.misses)
        registry.counter("directory.evictions").inc(dstats.evictions)
        registry.counter("directory.invalidations").inc(dstats.invalidations)
    retained = 0
    for pid in cluster.pids:
        store = cluster.processors[pid].store
        stats = getattr(store, "stats", None)
        if stats is None:
            continue  # a bare CopyStore was injected; no engine stats
        registry.counter("storage.wal_appends").inc(stats.wal_appends)
        registry.counter("storage.forced_syncs").inc(stats.forced_syncs)
        registry.counter("storage.checkpoints").inc(stats.checkpoints)
        registry.counter("storage.compacted_entries").inc(
            stats.compacted_entries)
        registry.counter("storage.truncated_reads").inc(
            stats.truncated_reads)
        registry.counter("storage.replayed_records").inc(
            stats.replayed_records)
        registry.counter("storage.replayed_bytes").inc(stats.replayed_bytes)
        retained += store.retained_entries()
    registry.gauge("storage.retained_entries").set(retained)
    totals = cluster.total_metrics()
    if totals is not None:
        for name in ("vp_created", "vp_joined", "recoveries",
                     "transfer_units", "catchup_fallbacks",
                     "logical_reads", "logical_writes",
                     "physical_read_rpcs", "physical_write_rpcs",
                     "decisions_retired", "reshard_installs",
                     "reshard_retires"):
            registry.gauge(f"protocol.{name}").set(getattr(totals, name, 0))
        # The commit protocol's measured blocking window: sim time each
        # prepared participant spent in doubt before its outcome landed.
        registry.log_histogram("txn.in_doubt_dwell").observe_many(
            getattr(totals, "in_doubt_dwell", []))
    engine = getattr(cluster, "reshard_engine", None)
    if engine is not None:
        for name, value in engine.stats.to_dict().items():
            registry.counter(f"reshard.{name}").inc(value)
    if observer is not None and observer.latencies:
        registry.log_histogram("client.txn_latency").observe_many(
            observer.latencies)
    if sessions:
        _collect_sessions(registry, cluster, sessions)
    return registry


def _collect_sessions(registry: MetricsRegistry, cluster: Cluster,
                      sessions) -> None:
    """Aggregate the client tier's per-session stats into the registry."""
    read_latency = registry.log_histogram("client.read_latency")
    staleness = registry.log_histogram("client.staleness")
    for session in sessions:
        stats = session.stats
        registry.counter("client.programs").inc(stats.programs)
        registry.counter("client.programs_committed").inc(stats.committed)
        registry.counter("client.programs_aborted").inc(stats.aborted)
        registry.counter("client.programs_local").inc(stats.local_programs)
        registry.counter("client.reads").inc(stats.reads)
        registry.counter("client.writes").inc(stats.writes)
        registry.counter("client.lease_reads").inc(stats.lease_reads)
        registry.counter("client.cache_reads").inc(stats.cache_reads)
        registry.counter("client.remote_reads").inc(stats.remote_reads)
        registry.counter("client.local_writes").inc(stats.local_writes)
        registry.counter("client.remote_writes").inc(stats.remote_writes)
        registry.counter("client.flush_writes").inc(stats.flush_writes)
        read_latency.observe_many(stats.read_latencies)
        staleness.observe_many(stats.staleness)
        if session.cache is not None:
            cache = session.cache.stats
            registry.counter("client.cache.hits").inc(cache.hits)
            registry.counter("client.cache.misses").inc(cache.misses)
            registry.counter("client.cache.evictions").inc(cache.evictions)
            registry.counter("client.cache.dirty_evictions").inc(
                cache.dirty_evictions)
            registry.counter("client.cache.invalidations").inc(
                cache.invalidations)
    # lease tables are per-processor (shared by that node's sessions),
    # so collect them from the protocols, not the sessions
    for pid in cluster.pids:
        table = getattr(cluster.protocols[pid], "lease_table", None)
        if table is None:
            continue
        stats = table.stats
        registry.counter("client.lease.granted").inc(stats.granted)
        registry.counter("client.lease.served").inc(stats.served)
        registry.counter("client.lease.expired").inc(stats.expired)
        registry.counter("client.lease.revoked").inc(stats.revoked)
        registry.counter("client.lease.invalidated").inc(stats.invalidated)


def _client(cluster: Cluster, pid: int, generator: WorkloadGenerator,
            spec: ExperimentSpec, tag: str, session=None, observer=None):
    """One client: Poisson arrivals until the duration elapses, or for
    exactly ``spec.txns_per_client`` transactions when that is set.

    Closed loop (default): each arrival waits for the previous program
    to finish — think-time load, rng- and event-identical to the
    historical driver (the golden-trace pin covers it).  Open loop
    (``spec.open_loop``): arrivals fire on the interarrival clock
    regardless of service time, each spawning a worker, so the latency
    samples include queueing.  Both loops draw interarrival-then-
    program per transaction, keeping the two modes draw-for-draw
    identical on one seed.
    """
    sim = cluster.sim
    tm = cluster.tm(pid)
    backoff = 2 * cluster.config.delta

    def run_one(index, program, arrival):
        if session is not None:
            committed, _ = yield from session.run_program(
                program, tag=f"{tag}t{index}", retries=spec.retries,
                backoff=backoff)
        else:
            body = body_for(program, tag=f"{tag}t{index}")
            committed, _ = yield from tm.run(body, retries=spec.retries,
                                             backoff=backoff)
        if committed and observer is not None:
            observer.latencies.append(sim.now - arrival)

    def one(index):
        # draw order matters: interarrival was drawn by the caller,
        # the program is drawn here — exactly the historical sequence
        program = generator.next_program()
        yield from run_one(index, program, sim.now)

    def spawn(index):
        program = generator.next_program()
        return sim.process(run_one(index, program, sim.now),
                           name=f"txn@{tag}t{index}")

    workers = []
    if spec.txns_per_client is not None:
        for index in range(spec.txns_per_client):
            yield sim.timeout(generator.next_interarrival())
            if spec.open_loop:
                workers.append(spawn(index))
            else:
                yield from one(index)
    else:
        index = 0
        while sim.now < spec.duration:
            yield sim.timeout(generator.next_interarrival())
            if sim.now >= spec.duration:
                break
            if spec.open_loop:
                workers.append(spawn(index))
            else:
                yield from one(index)
            index += 1
    for worker in workers:
        if worker.is_alive:
            yield worker
    if session is not None:
        # write-back's flush-on-close: pending dirty entries must reach
        # the store before the client stops (open-loop stragglers past
        # the duration horizon keep their dirty values client-side)
        yield from session.drain(retries=spec.retries, backoff=backoff)
