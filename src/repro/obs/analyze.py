"""Trace analysis: reconstruct protocol behaviour from an event stream.

The analyzer consumes the flat JSONL event stream and rebuilds the
artifacts a replication engineer actually debugs with:

* **per-view timelines** — for every virtual partition id: who
  initiated it, when the invitations went out, who accepted and when,
  when it committed, who joined, and when rule R5 finished bringing
  each copy up to date;
* **message breakdowns** — sends/deliveries/drops by message kind;
* **lock-wait distributions** — how long admissions queued, matched
  wait→grant per (processor, object, transaction);
* **transaction outcomes** — commit/abort counts, abort reasons, and
  commit latency percentiles;
* **view-formation critical paths** — the invite → last-accept →
  commit → last-join → recovery-done segment chain whose longest leg
  explains a slow view change.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from . import events as ev
from .events import TraceEvent
from .metrics import Histogram

_VPID_RE = re.compile(r"vp\((\d+),(\d+)\)")


def vpid_key(vpid: str) -> Tuple[int, int]:
    """Sort key matching the protocol's total order on vp-ids."""
    match = _VPID_RE.fullmatch(vpid)
    if match is None:
        return (1 << 62, 0)  # unknown formats sort last
    return (int(match.group(1)), int(match.group(2)))


@dataclass
class ViewFormation:
    """Everything the trace says about one virtual partition."""

    vpid: str
    initiator: Optional[int] = None
    invited_at: Optional[float] = None
    accepts: List[Tuple[float, int]] = field(default_factory=list)
    committed_at: Optional[float] = None
    view: Optional[list] = None
    joins: Dict[int, float] = field(default_factory=dict)
    recoveries: List[Tuple[float, int, str]] = field(default_factory=list)
    abandoned: bool = False

    @property
    def formed(self) -> bool:
        return bool(self.joins)

    @property
    def last_join(self) -> Optional[float]:
        return max(self.joins.values()) if self.joins else None

    @property
    def recovery_done(self) -> Optional[float]:
        return max(t for t, _, _ in self.recoveries) \
            if self.recoveries else None


class TraceAnalyzer:
    """Pure functions of a recorded (or re-loaded) event stream."""

    def __init__(self, events: Iterable[TraceEvent]):
        self.events = sorted(events, key=lambda e: e.time)

    # -- view formation -------------------------------------------------------

    def view_timelines(self) -> Dict[str, ViewFormation]:
        """Per-vpid formation records, in the protocol's vp-id order."""
        views: Dict[str, ViewFormation] = {}

        def view_for(vpid: str) -> ViewFormation:
            record = views.get(vpid)
            if record is None:
                record = views[vpid] = ViewFormation(vpid)
            return record

        for event in self.events:
            etype = event.etype
            if not (etype.startswith("vp.") or etype.startswith("recover.")):
                continue
            vpid = event.fields.get("vpid")
            if vpid is None:
                continue
            record = view_for(str(vpid))
            if etype == ev.VP_INVITE:
                record.initiator = event.pid
                if record.invited_at is None:
                    record.invited_at = event.time
            elif etype == ev.VP_ACCEPT:
                record.accepts.append((event.time, event.pid))
            elif etype == ev.VP_COMMIT:
                record.committed_at = event.time
                record.view = event.fields.get("view")
            elif etype == ev.VP_JOIN:
                record.joins[event.pid] = event.time
                if record.view is None:
                    record.view = event.fields.get("view")
            elif etype == ev.VP_ABANDON:
                record.abandoned = True
            elif etype == ev.RECOVER_OBJECT or etype == ev.RECOVER_FRESH:
                record.recoveries.append(
                    (event.time, event.pid, event.fields.get("obj", "?"))
                )
        return dict(sorted(views.items(), key=lambda kv: vpid_key(kv[0])))

    def critical_path(self, vpid: str) -> List[Tuple[str, float, float]]:
        """The formation's segment chain as ``(label, start, end)``.

        Segments with no trace evidence (e.g. a bootstrap partition that
        was never invited) are omitted; durations are end - start.
        """
        record = self.view_timelines().get(vpid)
        if record is None:
            return []
        path: List[Tuple[str, float, float]] = []
        cursor = record.invited_at
        if cursor is not None and record.accepts:
            last_accept = max(t for t, _ in record.accepts)
            path.append(("invite->last-accept", cursor, last_accept))
            cursor = last_accept
        if cursor is not None and record.committed_at is not None:
            path.append(("accepts->commit", cursor, record.committed_at))
            cursor = record.committed_at
        if record.last_join is not None:
            start = cursor if cursor is not None else record.last_join
            path.append(("commit->last-join", start, record.last_join))
            cursor = record.last_join
        if record.recovery_done is not None and cursor is not None:
            path.append(("join->recovery-done", cursor,
                         record.recovery_done))
        return path

    # -- messages -------------------------------------------------------------

    def message_breakdown(self) -> Dict[str, Dict[str, int]]:
        """``{message kind: {sent, delivered, dropped}}``, sorted."""
        table: Dict[str, Dict[str, int]] = {}
        column = {ev.MSG_SEND: "sent", ev.MSG_RECV: "delivered",
                  ev.MSG_DROP: "dropped"}
        for event in self.events:
            name = column.get(event.etype)
            if name is None:
                continue
            kind = event.fields.get("kind", "?")
            row = table.setdefault(
                kind, {"sent": 0, "delivered": 0, "dropped": 0})
            row[name] += 1
        return dict(sorted(table.items()))

    # -- locks ----------------------------------------------------------------

    def lock_waits(self) -> Histogram:
        """Wait→grant durations, matched per (pid, object, transaction).

        Requests that never got granted (dropped on timeout or still
        queued at the end of the trace) are not wait samples — they show
        up in ``lock.drop`` counts instead.
        """
        pending: Dict[tuple, float] = {}
        waits = Histogram("lock.wait")
        for event in self.events:
            if event.etype not in (ev.LOCK_WAIT, ev.LOCK_GRANT,
                                   ev.LOCK_DROP):
                continue
            key = (event.pid, event.fields.get("obj"),
                   event.fields.get("txn"))
            if event.etype == ev.LOCK_WAIT:
                pending[key] = event.time
            else:
                started = pending.pop(key, None)
                if started is not None and event.etype == ev.LOCK_GRANT:
                    waits.observe(event.time - started)
        return waits

    # -- transactions ---------------------------------------------------------

    def txn_outcomes(self) -> dict:
        """Counts, abort reasons, and commit-latency distribution."""
        begun: Dict[str, float] = {}
        committed = aborted = 0
        reasons: Dict[str, int] = {}
        latency = Histogram("txn.latency")
        for event in self.events:
            txn = event.fields.get("txn")
            if event.etype == ev.TXN_BEGIN:
                begun[txn] = event.time
            elif event.etype == ev.TXN_COMMIT:
                committed += 1
                if txn in begun:
                    latency.observe(event.time - begun[txn])
            elif event.etype == ev.TXN_ABORT:
                aborted += 1
                reason = str(event.fields.get("reason", "?")).split(":")[0]
                reasons[reason] = reasons.get(reason, 0) + 1
        return {
            "begun": len(begun),
            "committed": committed,
            "aborted": aborted,
            "abort_reasons": dict(sorted(reasons.items())),
            "latency": latency.summary(),
        }

    # -- rollups --------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for event in self.events:
            totals[event.etype] = totals.get(event.etype, 0) + 1
        return dict(sorted(totals.items()))

    def summary(self) -> dict:
        """One JSON-ready dict with every analysis rolled up."""
        views = self.view_timelines()
        return {
            "events": len(self.events),
            "by_type": self.counts(),
            "messages": self.message_breakdown(),
            "lock_waits": self.lock_waits().summary(),
            "txns": self.txn_outcomes(),
            "views": {
                vpid: {
                    "initiator": record.initiator,
                    "invited_at": record.invited_at,
                    "accepts": len(record.accepts),
                    "committed_at": record.committed_at,
                    "view": record.view,
                    "joins": {str(p): t for p, t
                              in sorted(record.joins.items())},
                    "recoveries": len(record.recoveries),
                }
                for vpid, record in views.items()
            },
        }

    def render(self) -> str:
        """A human-readable report of the run."""
        lines: List[str] = []
        views = self.view_timelines()
        lines.append(f"trace: {len(self.events)} events, "
                     f"{len(views)} virtual partitions")
        lines.append("")
        lines.append("view formations:")
        for vpid, record in views.items():
            joined = ",".join(str(p) for p in sorted(record.joins))
            stamp = (f"committed@{record.committed_at:g}"
                     if record.committed_at is not None else
                     ("abandoned" if record.abandoned else "bootstrap"))
            lines.append(f"  {vpid}: {stamp} "
                         f"accepts={len(record.accepts)} "
                         f"joined=[{joined}] "
                         f"recoveries={len(record.recoveries)}")
            for label, start, end in self.critical_path(vpid):
                lines.append(f"      {label}: {start:g} -> {end:g} "
                             f"(+{end - start:g})")
        lines.append("")
        lines.append("messages (kind: sent/delivered/dropped):")
        for kind, row in self.message_breakdown().items():
            lines.append(f"  {kind}: {row['sent']}/{row['delivered']}"
                         f"/{row['dropped']}")
        waits = self.lock_waits().summary()
        lines.append("")
        lines.append(f"lock waits: {waits}")
        txns = self.txn_outcomes()
        lines.append(f"txns: committed={txns['committed']} "
                     f"aborted={txns['aborted']} "
                     f"reasons={txns['abort_reasons']}")
        return "\n".join(lines)
