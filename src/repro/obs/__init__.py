"""Observability: structured tracing, metrics, and trace tooling.

The subsystem has four pieces:

* :mod:`repro.obs.events` — the typed trace event model (message
  send/recv/drop, view-formation phases, lock waits, R5 recovery
  reads, transaction outcomes), all stamped with simulated time;
* :mod:`repro.obs.trace` — the :class:`Tracer` recorder, wired through
  ``Cluster(trace=True)``;
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry
  with a zero-overhead :class:`NullRegistry` for disabled runs;
* :mod:`repro.obs.export` / :mod:`repro.obs.analyze` — deterministic
  JSONL traces and the analyzer that reconstructs per-view timelines,
  message breakdowns, and lock-wait distributions from them
  (``repro trace`` / ``repro metrics`` on the command line).
"""

from .analyze import TraceAnalyzer, ViewFormation, vpid_key
from .events import TraceEvent, jsonable
from .export import dumps_jsonl, event_line, read_jsonl, write_jsonl
from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    LogBucketHistogram,
    MetricsRegistry,
    NullRegistry,
)
from .trace import Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LogBucketHistogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "TraceAnalyzer",
    "TraceEvent",
    "Tracer",
    "ViewFormation",
    "dumps_jsonl",
    "event_line",
    "jsonable",
    "read_jsonl",
    "vpid_key",
    "write_jsonl",
]
