"""A metrics registry: counters, gauges, and histograms.

The registry is the structured companion to the benchmark tables —
every ``bench_*`` run and every :func:`~repro.workload.runner.
run_experiment` call loads its results into one so the numbers exist
in machine-readable form, giving future performance PRs a stable
baseline to diff against.

Disabled recording uses :class:`NullRegistry`, whose instruments are
shared do-nothing singletons — callers keep the same
``registry.counter("x").inc()`` shape with no conditional at the call
site and no allocation per lookup.
"""

from __future__ import annotations

import math
from bisect import insort
from typing import Dict, List, Optional

#: percentiles reported in every histogram summary
SUMMARY_PERCENTILES = (50.0, 90.0, 95.0, 99.0)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time measurement; set to whatever was last observed."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A distribution with exact percentile summaries.

    Values are kept sorted (insertion via ``bisect``), so percentile
    queries are O(1) and summaries are cheap; simulation runs observe
    thousands of samples, not millions, so exactness beats bucketing.
    """

    __slots__ = ("name", "_sorted", "_sum")

    def __init__(self, name: str):
        self.name = name
        self._sorted: List[float] = []
        self._sum = 0.0

    def observe(self, value: float) -> None:
        insort(self._sorted, value)
        self._sum += value

    def observe_many(self, values) -> None:
        """Bulk observe: one sort instead of n insertions.

        Used when a finished run loads accumulated samples (e.g. the
        transport's fan-out latencies) into a registry at once.
        """
        batch = list(values)
        if not batch:
            return
        self._sorted = sorted(self._sorted + batch)
        self._sum += sum(batch)

    @property
    def count(self) -> int:
        return len(self._sorted)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / len(self._sorted) if self._sorted else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile; 0 with no samples."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile out of range: {p}")
        if not self._sorted:
            return 0.0
        rank = max(1, -(-len(self._sorted) * p // 100))  # ceil, rank >= 1
        return self._sorted[int(rank) - 1]

    def summary(self) -> dict:
        """Count, sum, mean, min/max, and the standard percentiles."""
        if not self._sorted:
            return {"count": 0}
        result = {
            "count": len(self._sorted),
            "sum": self._sum,
            "mean": self.mean,
            "min": self._sorted[0],
            "max": self._sorted[-1],
        }
        for p in SUMMARY_PERCENTILES:
            result[f"p{p:g}"] = self.percentile(p)
        return result

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={len(self._sorted)})"


class LogBucketHistogram(Histogram):
    """A bounded histogram over geometric buckets.

    The exact :class:`Histogram` keeps every sample, which is right for
    a few thousand fan-out latencies but wrong for open-loop latency
    recording, where a load driver can observe one sample per simulated
    transaction for millions of transactions.  This variant keeps one
    counter per geometric bucket (growth factor 2**(1/16), so quantile
    answers carry at most ~2.2% relative error), giving O(log range)
    memory no matter how many samples land, plus exact count/sum/min/
    max.  Buckets merge counter-wise, so per-run histograms aggregate
    across sweep cells and worker processes without resorting.

    Only non-negative values are accepted — every user (latencies,
    staleness ages, dwell times) measures elapsed simulated time.
    """

    __slots__ = ("_buckets", "_zero", "_count", "_min", "_max")

    #: per-decade resolution: bucket i spans [GROWTH**i, GROWTH**(i+1))
    GROWTH = 2.0 ** (1.0 / 16.0)
    _LOG_GROWTH = math.log(2.0) / 16.0
    #: nudge keeps exact powers of GROWTH on their own bucket's floor
    #: despite float log rounding (pinned by the boundary unit test)
    _EDGE_EPS = 1e-9

    def __init__(self, name: str):
        self.name = name
        self._buckets: Dict[int, int] = {}
        self._zero = 0          # zero is its own bucket (log undefined)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    @classmethod
    def bucket_index(cls, value: float) -> int:
        """The geometric bucket a positive value falls into."""
        return math.floor(math.log(value) / cls._LOG_GROWTH + cls._EDGE_EPS)

    @classmethod
    def bucket_value(cls, index: int) -> float:
        """A bucket's representative: the geometric middle of its span."""
        return cls.GROWTH ** (index + 0.5)

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(
                f"histogram {self.name} records elapsed time; "
                f"got negative value {value}"
            )
        if value == 0:
            self._zero += 1
        else:
            index = self.bucket_index(value)
            self._buckets[index] = self._buckets.get(index, 0) + 1
        self._count += 1
        self._sum += value
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)

    def observe_many(self, values) -> None:
        for value in values:
            self.observe(value)

    def merge(self, other: "LogBucketHistogram") -> None:
        """Fold another log-bucket histogram's counts into this one."""
        if not isinstance(other, LogBucketHistogram):
            raise TypeError(
                f"cannot merge {type(other).__name__} into log-bucket "
                f"histogram {self.name}"
            )
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self._zero += other._zero
        self._count += other._count
        self._sum += other._sum
        for bound in (other._min, other._max):
            if bound is None:
                continue
            self._min = bound if self._min is None else min(self._min, bound)
            self._max = bound if self._max is None else max(self._max, bound)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over buckets; 0 with no samples.

        Answers are bucket representatives, so they sit within one half
        bucket width (~2.2% relative) of the exact answer — except the
        extremes: rank 1 with a recorded min and the top rank clamp to
        the exact min/max.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile out of range: {p}")
        if not self._count:
            return 0.0
        rank = max(1, -(-self._count * p // 100))  # ceil, rank >= 1
        if rank >= self._count:
            return float(self._max)  # type: ignore[arg-type]
        seen = self._zero
        if rank <= seen:
            return 0.0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank <= seen:
                value = self.bucket_value(index)
                # clamp representatives into the observed range
                return min(max(value, self._min),  # type: ignore[arg-type]
                           self._max)              # type: ignore[arg-type]
        return float(self._max)  # type: ignore[arg-type]

    def summary(self) -> dict:
        if not self._count:
            return {"count": 0}
        result = {
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "min": self._min,
            "max": self._max,
        }
        for p in SUMMARY_PERCENTILES:
            result[f"p{p:g}"] = self.percentile(p)
        return result

    def __repr__(self) -> str:
        return (f"LogBucketHistogram({self.name}, n={self._count}, "
                f"buckets={len(self._buckets)})")


class MetricsRegistry:
    """Interned instruments, keyed by name."""

    enabled = True

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_unclaimed(name, self._counters)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_unclaimed(name, self._gauges)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_unclaimed(name, self._histograms)
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def log_histogram(self, name: str) -> LogBucketHistogram:
        """A bounded log-bucketed histogram (see LogBucketHistogram)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_unclaimed(name, self._histograms)
            instrument = self._histograms[name] = LogBucketHistogram(name)
        elif not isinstance(instrument, LogBucketHistogram):
            raise ValueError(
                f"metric {name!r} already registered as an exact histogram"
            )
        return instrument

    def _check_unclaimed(self, name: str, claiming: dict) -> None:
        for table in (self._counters, self._gauges, self._histograms):
            if table is not claiming and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as another kind"
                )

    def snapshot(self) -> dict:
        """Everything recorded, as a sorted, JSON-ready dict."""
        return {
            "counters": {name: c.value for name, c
                         in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g
                       in sorted(self._gauges.items())},
            "histograms": {name: h.summary() for name, h
                           in sorted(self._histograms.items())},
        }

    def __repr__(self) -> str:
        return (f"MetricsRegistry({len(self._counters)} counters, "
                f"{len(self._gauges)} gauges, "
                f"{len(self._histograms)} histograms)")


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass


class _NullLogBucketHistogram(LogBucketHistogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    def merge(self, other: LogBucketHistogram) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """The disabled recorder: every lookup returns a shared no-op.

    ``snapshot()`` is always empty; ``inc``/``set``/``observe`` discard
    their arguments without allocating, so instrumented code needs no
    "is metrics on?" branch.
    """

    enabled = False

    def __init__(self):
        super().__init__()
        self._counter = _NullCounter("null")
        self._gauge = _NullGauge("null")
        self._histogram = _NullHistogram("null")
        self._log_histogram = _NullLogBucketHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._counter

    def gauge(self, name: str) -> Gauge:
        return self._gauge

    def histogram(self, name: str) -> Histogram:
        return self._histogram

    def log_histogram(self, name: str) -> LogBucketHistogram:
        return self._log_histogram

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: a process-wide disabled registry, for defaulting optional parameters
NULL_REGISTRY = NullRegistry()
