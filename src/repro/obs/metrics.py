"""A metrics registry: counters, gauges, and histograms.

The registry is the structured companion to the benchmark tables —
every ``bench_*`` run and every :func:`~repro.workload.runner.
run_experiment` call loads its results into one so the numbers exist
in machine-readable form, giving future performance PRs a stable
baseline to diff against.

Disabled recording uses :class:`NullRegistry`, whose instruments are
shared do-nothing singletons — callers keep the same
``registry.counter("x").inc()`` shape with no conditional at the call
site and no allocation per lookup.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Optional

#: percentiles reported in every histogram summary
SUMMARY_PERCENTILES = (50.0, 90.0, 99.0)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time measurement; set to whatever was last observed."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A distribution with exact percentile summaries.

    Values are kept sorted (insertion via ``bisect``), so percentile
    queries are O(1) and summaries are cheap; simulation runs observe
    thousands of samples, not millions, so exactness beats bucketing.
    """

    __slots__ = ("name", "_sorted", "_sum")

    def __init__(self, name: str):
        self.name = name
        self._sorted: List[float] = []
        self._sum = 0.0

    def observe(self, value: float) -> None:
        insort(self._sorted, value)
        self._sum += value

    def observe_many(self, values) -> None:
        """Bulk observe: one sort instead of n insertions.

        Used when a finished run loads accumulated samples (e.g. the
        transport's fan-out latencies) into a registry at once.
        """
        batch = list(values)
        if not batch:
            return
        self._sorted = sorted(self._sorted + batch)
        self._sum += sum(batch)

    @property
    def count(self) -> int:
        return len(self._sorted)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / len(self._sorted) if self._sorted else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile; 0 with no samples."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile out of range: {p}")
        if not self._sorted:
            return 0.0
        rank = max(1, -(-len(self._sorted) * p // 100))  # ceil, rank >= 1
        return self._sorted[int(rank) - 1]

    def summary(self) -> dict:
        """Count, sum, mean, min/max, and the standard percentiles."""
        if not self._sorted:
            return {"count": 0}
        result = {
            "count": len(self._sorted),
            "sum": self._sum,
            "mean": self.mean,
            "min": self._sorted[0],
            "max": self._sorted[-1],
        }
        for p in SUMMARY_PERCENTILES:
            result[f"p{p:g}"] = self.percentile(p)
        return result

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={len(self._sorted)})"


class MetricsRegistry:
    """Interned instruments, keyed by name."""

    enabled = True

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_unclaimed(name, self._counters)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_unclaimed(name, self._gauges)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_unclaimed(name, self._histograms)
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def _check_unclaimed(self, name: str, claiming: dict) -> None:
        for table in (self._counters, self._gauges, self._histograms):
            if table is not claiming and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as another kind"
                )

    def snapshot(self) -> dict:
        """Everything recorded, as a sorted, JSON-ready dict."""
        return {
            "counters": {name: c.value for name, c
                         in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g
                       in sorted(self._gauges.items())},
            "histograms": {name: h.summary() for name, h
                           in sorted(self._histograms.items())},
        }

    def __repr__(self) -> str:
        return (f"MetricsRegistry({len(self._counters)} counters, "
                f"{len(self._gauges)} gauges, "
                f"{len(self._histograms)} histograms)")


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """The disabled recorder: every lookup returns a shared no-op.

    ``snapshot()`` is always empty; ``inc``/``set``/``observe`` discard
    their arguments without allocating, so instrumented code needs no
    "is metrics on?" branch.
    """

    enabled = False

    def __init__(self):
        super().__init__()
        self._counter = _NullCounter("null")
        self._gauge = _NullGauge("null")
        self._histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._counter

    def gauge(self, name: str) -> Gauge:
        return self._gauge

    def histogram(self, name: str) -> Histogram:
        return self._histogram

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: a process-wide disabled registry, for defaulting optional parameters
NULL_REGISTRY = NullRegistry()
