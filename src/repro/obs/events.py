"""The structured trace event model.

A trace is a flat, time-ordered stream of typed events stamped with
simulated time, the emitting processor, and (where meaningful) the
virtual partition the event belongs to.  Event types are dotted names
grouped by subsystem (``msg.*``, ``vp.*``, ``lock.*``, ``txn.*``,
``recover.*``, ``fail.*``, ``proc.*``, ``sim.*``) so analyzers and
filters can select whole families by prefix.

Everything in an event must serialize *deterministically*: two runs of
the same seeded simulation must produce byte-identical JSONL traces
(the replay-debugging guarantee tested by
``tests/obs/test_determinism.py``).  That is why :func:`jsonable`
exists — it normalizes sets to sorted lists, :class:`~repro.core.ids.
VpId` and transaction ids to strings, and never falls back to a repr
that could embed a memory address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

# -- message transport ------------------------------------------------------
MSG_SEND = "msg.send"
MSG_RECV = "msg.recv"
MSG_DROP = "msg.drop"
MSG_LATE_REPLY = "msg.late-reply"  # reply arrived after its waiter left

# -- failure injection and the processor lifecycle --------------------------
FAIL_INJECT = "fail.inject"
PROC_CRASH = "proc.crash"
PROC_RECOVER = "proc.recover"

# -- virtual partition formation (Figs. 4-6) --------------------------------
VP_DEPART = "vp.depart"
VP_INVITE = "vp.invite"           # initiator sent newvp to everyone
VP_ACCEPT = "vp.accept"           # acceptor agreed to an invitation
VP_ACCEPT_RECV = "vp.accept-recv"  # initiator collected one acceptance
VP_ABANDON = "vp.abandon"         # a higher id arrived during the 2delta wait
VP_COMMIT = "vp.commit"           # initiator committed the new view
VP_JOIN = "vp.join"               # a processor committed to a partition
VP_COMMIT_TIMEOUT = "vp.commit-timeout"  # Fig. 6's 3delta timer fired
VP_COMMIT_EXCLUDED = "vp.commit-excluded"  # committed view excludes us (S2 guard)

# -- rule R5: Update-Copies-in-View (Fig. 9, §6) ---------------------------
RECOVER_START = "recover.start"
RECOVER_FRESH = "recover.fresh"    # split-off fast path: no reads needed
RECOVER_OBJECT = "recover.object"  # one copy brought up to date

# -- concurrency control ----------------------------------------------------
LOCK_GRANT = "lock.grant"
LOCK_WAIT = "lock.wait"
LOCK_DROP = "lock.drop"      # a queued request was cancelled/abandoned
LOCK_RELEASE = "lock.release"

# -- transactions -----------------------------------------------------------
TXN_BEGIN = "txn.begin"
TXN_COMMIT = "txn.commit"
TXN_ABORT = "txn.abort"
TXN_INDOUBT = "txn.indoubt"   # prepared participant lost its decide
TXN_RESOLVE = "txn.resolve"   # resolver learned the 2PC outcome

# -- runtime invariant auditor ----------------------------------------------
AUDIT_VIOLATION = "audit.violation"

# -- simulation kernel (opt-in; very chatty) --------------------------------
SIM_STEP = "sim.step"


def jsonable(value: Any) -> Any:
    """Normalize ``value`` into a deterministic JSON-serializable form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (set, frozenset)):
        return sorted((jsonable(v) for v in value), key=repr)
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in sorted(
            value.items(), key=lambda kv: str(kv[0]))}
    return str(value)


@dataclass
class TraceEvent:
    """One structured trace record.

    ``fields`` carries the per-type payload (object names, message
    kinds, views, reasons, ...); ``pid`` is the emitting processor or
    ``None`` for system-level events.
    """

    time: float
    etype: str
    pid: Optional[int] = None
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """A flat dict with the reserved keys ``t``, ``e``, ``p``."""
        record: Dict[str, Any] = {"t": self.time, "e": self.etype,
                                  "p": self.pid}
        for key in sorted(self.fields):
            record[key] = jsonable(self.fields[key])
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "TraceEvent":
        fields = {k: v for k, v in record.items() if k not in ("t", "e", "p")}
        return cls(time=record["t"], etype=record["e"],
                   pid=record.get("p"), fields=fields)

    def __repr__(self) -> str:
        return (f"TraceEvent({self.time:g} {self.etype} p={self.pid} "
                f"{self.fields!r})")
