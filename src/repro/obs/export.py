"""JSONL trace export and import.

One event per line, keys sorted, compact separators, values normalized
by :func:`~repro.obs.events.jsonable` — the combination that makes two
same-seed runs serialize byte-identically (the determinism guard in
``tests/obs/test_determinism.py`` diffs these bytes directly).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, List, Union

from .events import TraceEvent

PathOrFile = Union[str, Path, IO[str]]


def event_line(event: TraceEvent) -> str:
    """The canonical single-line JSON form of one event."""
    return json.dumps(event.to_dict(), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


def dumps_jsonl(events: Iterable[TraceEvent]) -> str:
    """The whole trace as one JSONL string (trailing newline included).

    Built with a single ``join`` rather than per-event writes — an
    ``attach_kernel`` trace easily runs to hundreds of thousands of
    lines, where two method calls per event dominate.  The bytes are
    unchanged (pinned by the trace-determinism test).
    """
    lines = [event_line(event) for event in events]
    if not lines:
        return ""
    lines.append("")  # trailing newline
    return "\n".join(lines)


def write_jsonl(events: Iterable[TraceEvent], out: PathOrFile) -> int:
    """Write ``events`` to a path or open text file; returns the count.

    Buffered like :func:`dumps_jsonl`: every line is serialized first,
    then written in one call instead of two writes per event.
    """
    if isinstance(out, (str, Path)):
        with open(out, "w", encoding="utf-8") as handle:
            return write_jsonl(events, handle)
    lines = [event_line(event) for event in events]
    if lines:
        out.write("\n".join(lines) + "\n")
    return len(lines)


def read_jsonl(source: PathOrFile) -> List[TraceEvent]:
    """Load a JSONL trace back into :class:`TraceEvent` records."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return read_jsonl(handle)
    events = []
    for line in source:
        line = line.strip()
        if line:
            events.append(TraceEvent.from_dict(json.loads(line)))
    return events
