"""The trace recorder.

Design constraints, in priority order:

1. **Zero overhead when off.**  Instrumented classes default their
   ``tracer`` attribute to ``None`` and guard every emission with
   ``if self.tracer is not None`` — when tracing is disabled the hot
   paths pay one attribute load per site, nothing more.  There is no
   always-on no-op object on the message path.
2. **Determinism.**  A tracer only ever records simulated time and
   values normalized by :func:`~repro.obs.events.jsonable`; two runs of
   the same seeded cluster serialize to byte-identical JSONL.
3. **Selectivity.**  ``kinds`` restricts recording to event-type
   prefixes (``kinds={"vp", "txn"}`` keeps partition formation and
   transaction outcomes while dropping the chatty message stream).
"""

from __future__ import annotations

from typing import Collection, List, Optional

from ..sim import Simulator
from .events import SIM_STEP, TraceEvent


class Tracer:
    """Collects :class:`TraceEvent` records from an instrumented run."""

    __slots__ = ("sim", "events", "_prefixes")

    def __init__(self, sim: Simulator,
                 kinds: Optional[Collection[str]] = None):
        self.sim = sim
        self.events: List[TraceEvent] = []
        self._prefixes: Optional[tuple] = (
            tuple(sorted(kinds)) if kinds is not None else None
        )

    def emit(self, etype: str, pid: Optional[int] = None, **fields) -> None:
        """Record one event at the current simulated instant."""
        if self._prefixes is not None and not etype.startswith(self._prefixes):
            return
        self.events.append(TraceEvent(self.sim.now, etype, pid, fields))

    # -- optional kernel-level stream ---------------------------------------

    def attach_kernel(self, sim: Optional[Simulator] = None) -> None:
        """Subscribe to the simulator's event-dispatch hook.

        Records one ``sim.step`` event per kernel dispatch — extremely
        chatty, so it is opt-in rather than part of the default wiring.
        """
        target = sim or self.sim

        def hook(when: float, event) -> None:
            self.events.append(TraceEvent(
                when, SIM_STEP, None, {"event": getattr(event, "name", "")}
            ))

        target.trace_hook = hook

    # -- introspection -------------------------------------------------------

    def by_type(self, etype: str) -> List[TraceEvent]:
        """All recorded events of exactly ``etype``."""
        return [e for e in self.events if e.etype == etype]

    def counts(self) -> dict:
        """``{event type: occurrences}`` over everything recorded."""
        totals: dict = {}
        for event in self.events:
            totals[event.etype] = totals.get(event.etype, 0) + 1
        return dict(sorted(totals.items()))

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"Tracer({len(self.events)} events)"
