"""The shared fan-out transport primitive.

Every layer of the protocol speaks the same ``send … receive …
[no-response: …]`` shape from the paper's figures: issue the same kind
of request to a set of processors in parallel, wait under one deadline,
and treat silence as evidence about the view.  Before this module each
layer hand-rolled that loop (``one_write``, ``one_vote``, ``one_read``,
the accept/ack collection loops, ``_fanout``); now they all route
through two primitives owned by the :class:`~repro.node.processor.
Processor`:

* :class:`ScatterCall` — parallel RPCs with per-target reply matching
  (``scatter`` / ``gather``, or the one-shot ``scatter_gather``).  A
  caller-supplied *quorum predicate* enables early exit: once the
  responses collected so far satisfy it, the remaining workers are
  killed and the partial result map is returned (``quorum_call``).
* ``broadcast_collect`` (on the processor) — one-way broadcast followed
  by a timed mailbox collection window, the Figs. 5/7 pattern where
  replies are *not* RPC responses but independent messages.

Workers are plain simulation processes, **not** processor tasks: a
crash of the calling processor must not orphan the gather — each worker
is bounded by its RPC timeout, and a crashed sender's messages are
dropped by the network anyway.  (This preserves the crash semantics the
hand-rolled sites documented individually.)

:class:`TransportStats` counts fan-outs, per-target RPCs, silences and
early exits, and records the model-time duration of every completed
gather — the fan-out latency histogram the experiment harness reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional


class NoResponse(Exception):
    """An expected reply did not arrive within the timeout.

    This is the trigger for the paper's ``[no-response: Create-new-VP;
    ...]`` exception handlers: a missing reply is evidence that the
    local view no longer matches the can-communicate relation.
    """

    def __init__(self, dst: int, kind: str):
        super().__init__(f"no response from {dst} to {kind!r}")
        self.dst = dst
        self.kind = kind


#: predicate over the partial result map; True = stop waiting
QuorumPredicate = Callable[[Dict[int, Any]], bool]


@dataclass
class TransportStats:
    """Per-processor fan-out accounting (cumulative, crash-proof)."""

    #: completed or started scatter calls
    fanouts: int = 0
    #: broadcast_collect rounds
    broadcasts: int = 0
    #: individual request RPCs issued by scatter calls
    rpcs: int = 0
    #: RPCs that timed out without a reply
    no_responses: int = 0
    #: gathers cut short by a satisfied quorum predicate
    early_exits: int = 0
    #: scatter calls whose target set came from a directory lookup
    routed_fanouts: int = 0
    #: replies that arrived after their waiter timed out or was killed
    late_replies: int = 0
    #: model-time duration of each completed gather
    fanout_latencies: List[float] = field(default_factory=list)


class ScatterCall:
    """An in-flight parallel RPC fan-out.

    Created by :meth:`Processor.scatter`; the request workers start
    immediately.  Call :meth:`gather` (a generator — drive it with
    ``yield from``) to wait for the result map ``{target: payload}``
    where ``None`` marks a silent target.  Creating the call and
    gathering later lets a caller do local work (e.g. its own vote)
    while the requests are in flight, exactly like the hand-rolled
    two-phase sites did.
    """

    def __init__(self, processor, targets: Iterable[int], kind: str,
                 payload_for: Callable[[int], Optional[Mapping[str, Any]]],
                 *, timeout: float, label: Optional[str] = None):
        self.processor = processor
        self.sim = processor.sim
        self.kind = kind
        self.started_at = self.sim.now
        stats = processor.transport
        stats.fanouts += 1
        prefix = label or kind
        self._procs: Dict[int, Any] = {}
        for server in targets:
            stats.rpcs += 1
            self._procs[server] = self.sim.process(
                self._one(server, payload_for(server), timeout),
                name=f"{prefix}->{server}",
            )

    def _one(self, server: int, payload, timeout: float):
        try:
            response = yield from self.processor.rpc(
                server, self.kind, payload, timeout=timeout
            )
        except NoResponse:
            self.processor.transport.no_responses += 1
            return None
        return response.payload

    def gather(self, quorum: Optional[QuorumPredicate] = None):
        """Generator: collect ``{target: payload_or_None}``.

        Without ``quorum``, waits for every worker (each bounded by the
        call's timeout).  With it, the predicate is evaluated on the
        partial result map after every arrival; once satisfied the
        remaining workers are killed and the partial map is returned —
        absent targets are simply missing keys, distinct from the
        explicit ``None`` of a timed-out target.
        """
        stats = self.processor.transport
        procs = self._procs
        if not procs:
            stats.fanout_latencies.append(0.0)
            return {}
        if quorum is None:
            fired = yield self.sim.all_of(list(procs.values()))
            results = {server: fired[proc] for server, proc in procs.items()}
        else:
            results: Dict[int, Any] = {}
            pending = dict(procs)
            while pending:
                fired = yield self.sim.any_of(list(pending.values()))
                for server, proc in list(pending.items()):
                    if proc in fired:
                        results[server] = fired[proc]
                        del pending[server]
                if pending and quorum(results):
                    for proc in pending.values():
                        if proc.is_alive:
                            proc.kill()
                    stats.early_exits += 1
                    break
        stats.fanout_latencies.append(self.sim.now - self.started_at)
        return results
