"""Checkpoints and per-copy log compaction.

A checkpoint is an immutable snapshot of everything durable — the
materialized copies (with their retained write logs and compaction
floors), the durable cells, and the decision log — anchored at a WAL
LSN.  Recovery restores the snapshot and replays the WAL tail after
that LSN; the WAL prefix the snapshot captures can be discarded.

Compaction bounds the §6 write logs: at checkpoint time each copy's
log is trimmed to its newest ``retain`` entries, and the date of the
newest *discarded* entry becomes the copy's **retained floor**.  A
``log_since(obj, after)`` with ``after`` below the floor can no longer
be answered exactly — the engine raises :class:`~repro.node.storage.
wal.LogTruncated` and the catch-up path falls back to a full-object
transfer (the §6 trade made explicit: bounded log memory against
occasionally shipping the whole object).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from .store import Copy, CopyStore, LogEntry


@dataclass(frozen=True)
class CopySnapshot:
    """One copy's durable state at checkpoint time."""

    obj: str
    value: Any
    date: Any
    version: Any
    size: int
    #: the retained (possibly compacted) write log, oldest first
    log: Tuple[LogEntry, ...]
    #: newest compacted-away date; ``NO_FLOOR`` = log complete
    floor: Any


#: sentinel distinguishing "never compacted" from a ``None``-dated floor
#: (the initial placement entry carries ``date=None`` and can itself be
#: compacted away)
NO_FLOOR = object()


@dataclass(frozen=True)
class Checkpoint:
    """Everything durable, frozen at WAL position ``lsn``."""

    lsn: int
    copies: Tuple[CopySnapshot, ...]
    cells: Tuple[Tuple[str, Any], ...]
    decisions: Tuple[Tuple[Any, str], ...]


EMPTY_CHECKPOINT = Checkpoint(lsn=0, copies=(), cells=(), decisions=())


def snapshot_copies(store: CopyStore,
                    floors: Dict[str, Any]) -> Tuple[CopySnapshot, ...]:
    """Freeze every copy of ``store`` (sorted by object name)."""
    snaps = []
    for obj in sorted(store.local_objects):
        copy = store._get(obj)
        snaps.append(CopySnapshot(
            obj=obj, value=copy.value, date=copy.date,
            version=copy.version, size=copy.size,
            log=tuple(copy.log),
            floor=floors.get(obj, NO_FLOOR),
        ))
    return tuple(snaps)


def restore_copies(pid: int, copies: Tuple[CopySnapshot, ...]
                   ) -> Tuple[CopyStore, Dict[str, Any]]:
    """Rebuild a materialized store (and its floors) from snapshots."""
    store = CopyStore(pid)
    floors: Dict[str, Any] = {}
    for snap in copies:
        store.place(snap.obj, initial=snap.value, date=snap.date,
                    size=snap.size, version=snap.version)
        copy = store._get(snap.obj)
        copy.log = list(snap.log)
        if snap.floor is not NO_FLOOR:
            floors[snap.obj] = snap.floor
    return store, floors


def compact_copy(copy: Copy, retain: int,
                 current_floor: Any = NO_FLOOR) -> Tuple[int, Any]:
    """Trim ``copy.log`` to its newest ``retain`` entries.

    Returns ``(discarded_count, new_floor)`` where the floor is the
    date of the newest discarded entry (logs are append-ordered, so
    that is the largest date compacted away).  With nothing to discard
    the existing floor is kept.
    """
    if retain < 1:
        raise ValueError(f"retain must be at least 1: {retain}")
    excess = len(copy.log) - retain
    if excess <= 0:
        return 0, current_floor
    discarded = copy.log[:excess]
    copy.log = copy.log[excess:]
    return excess, discarded[-1].date


def compact_store(store: CopyStore, retain: Optional[int],
                  floors: Dict[str, Any]) -> int:
    """Compact every copy's log in place; updates ``floors``.

    Returns the total number of discarded entries.  ``retain=None``
    (compaction disabled) is a no-op.
    """
    if retain is None:
        return 0
    total = 0
    for obj in sorted(store.local_objects):
        copy = store._get(obj)
        dropped, floor = compact_copy(copy, retain,
                                      floors.get(obj, NO_FLOOR))
        total += dropped
        if floor is not NO_FLOOR:
            floors[obj] = floor
    return total
