"""The durable storage engine: WAL + checkpoints over the copy table.

:class:`StorageEngine` is what a :class:`~repro.node.processor.
Processor` exposes as ``.store``.  It preserves the original
:class:`~repro.node.storage.store.CopyStore` API exactly — ``place`` /
``read`` / ``write`` / ``install`` / ``log_since`` / ``apply_log`` and
friends keep their semantics — so the protocol layers above migrate
without change, while every mutation is additionally journalled into a
typed write-ahead log:

* crash recovery is replay: :meth:`rebuilt` restores the last
  checkpoint and replays the WAL tail, reproducing the pre-crash
  durable state bit for bit (``tests/integration/test_crash_replay.py``);
* checkpoints bound the journal, and per-copy **log compaction**
  (``StoragePolicy.log_retain``) bounds the §6 write logs — after
  compaction, :meth:`log_since` raises :class:`~repro.node.storage.wal.
  LogTruncated` for requests reaching below the retained floor instead
  of silently returning a partial history;
* the 2PC force-write points (prepare records, decision-log entries,
  ``max-id`` bumps) are journalled as *forced* records, giving the
  protocol layer an explicit durability cost model to charge
  (``ProtocolConfig.storage_append_cost`` / ``storage_sync_cost``) and
  :class:`StorageStats` the counters observability reports.

With the default policy (no auto-checkpoints, no compaction) the
engine is behaviourally identical to the bare ``CopyStore`` it wraps —
pinned by ``tests/node/test_storage_engine.py`` and the trace-identity
property in ``tests/properties/test_storage_transparency.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from .checkpoint import (
    EMPTY_CHECKPOINT,
    NO_FLOOR,
    Checkpoint,
    compact_store,
    restore_copies,
    snapshot_copies,
)
from .store import CopyStore, DurableCell, LogEntry
from .wal import (
    REC_APPLY,
    REC_CELL,
    REC_DECISION,
    REC_INSTALL,
    REC_PLACE,
    REC_PREPARE,
    REC_RETIRE,
    REC_WRITE,
    LogTruncated,
    WalRecord,
    WriteAheadLog,
)


@dataclass(frozen=True)
class StoragePolicy:
    """Checkpoint/compaction knobs (derived from ``ProtocolConfig``)."""

    #: auto-checkpoint after this many WAL appends (0 = manual only)
    checkpoint_every: int = 0
    #: per-copy log entries kept at compaction (None = never compact)
    log_retain: Optional[int] = None

    def __post_init__(self):
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0: {self.checkpoint_every}")
        if self.log_retain is not None and self.log_retain < 1:
            raise ValueError(
                f"log_retain must be None or >= 1: {self.log_retain}")


DEFAULT_POLICY = StoragePolicy()


@dataclass
class StorageStats:
    """Durability cost accounting (cumulative, crash-proof)."""

    #: WAL records appended (forced ones included)
    wal_appends: int = 0
    #: appends that were force-synced (2PC force-write points)
    forced_syncs: int = 0
    #: checkpoints taken (manual + automatic)
    checkpoints: int = 0
    #: per-copy log entries discarded by compaction
    compacted_entries: int = 0
    #: ``log_since`` requests refused below the compaction floor
    truncated_reads: int = 0
    #: WAL records replayed by :meth:`StorageEngine.rebuilt`
    replayed_records: int = 0
    #: estimated bytes replayed at recovery
    replayed_bytes: int = 0


class EngineCell(DurableCell):
    """A durable cell whose writes are journalled by the engine."""

    def __init__(self, engine: "StorageEngine", name: str, initial: Any):
        super().__init__(initial)
        self._engine = engine
        self._name = name

    @property
    def value(self) -> Any:
        return self._value

    @value.setter
    def value(self, new: Any) -> None:
        self._value = new
        self._engine._journal(REC_CELL, forced=True,
                              cell=self._name, value=new)


class StorageEngine:
    """Per-processor durable storage: the ``CopyStore`` facade over a WAL."""

    def __init__(self, pid: int, policy: StoragePolicy = DEFAULT_POLICY):
        self.pid = pid
        self.policy = policy
        self.wal = WriteAheadLog()
        self.stats = StorageStats()
        self._store = CopyStore(pid)
        #: per-object compaction floor (absent key = log complete)
        self._floors: Dict[str, Any] = {}
        self._cells: Dict[str, DurableCell] = {}
        #: journalled coordinator decisions (txn -> latest outcome)
        self._decisions: Dict[Any, str] = {}
        self._checkpoint: Checkpoint = EMPTY_CHECKPOINT
        self._appends_since_checkpoint = 0
        self._replaying = False

    # -- journalling --------------------------------------------------------

    def _journal(self, kind: str, *, forced: bool = False,
                 **fields: Any) -> Optional[WalRecord]:
        if self._replaying:
            return None
        record = self.wal.append(kind, forced=forced, **fields)
        self.stats.wal_appends += 1
        if forced:
            self.stats.forced_syncs += 1
        self._appends_since_checkpoint += 1
        every = self.policy.checkpoint_every
        if every and self._appends_since_checkpoint >= every:
            self.checkpoint()
        return record

    # -- CopyStore facade: placement ----------------------------------------

    def place(self, obj: str, initial: Any = None, date: Any = None,
              size: int = 1, version: Any = None) -> None:
        self._store.place(obj, initial=initial, date=date, size=size,
                          version=version)
        self._journal(REC_PLACE, obj=obj, value=initial, date=date,
                      size=size, version=version)

    def holds(self, obj: str) -> bool:
        return self._store.holds(obj)

    def retire(self, obj: str) -> None:
        """Release the local copy after a reshard moved it; journalled."""
        self._store.retire(obj)
        self._floors.pop(obj, None)
        self._journal(REC_RETIRE, obj=obj)

    @property
    def local_objects(self) -> set:
        return self._store.local_objects

    # -- CopyStore facade: access -------------------------------------------

    def read(self, obj: str):
        return self._store.read(obj)

    def write(self, obj: str, value: Any, date: Any,
              version: Any = None) -> None:
        self._store.write(obj, value, date, version)
        self._journal(REC_WRITE, obj=obj, value=value, date=date,
                      version=version)

    def peek(self, obj: str):
        return self._store.peek(obj)

    def date(self, obj: str) -> Any:
        return self._store.date(obj)

    def version(self, obj: str) -> Any:
        return self._store.version(obj)

    def size(self, obj: str) -> int:
        return self._store.size(obj)

    @property
    def reads(self) -> Dict[str, int]:
        return self._store.reads

    @property
    def writes(self) -> Dict[str, int]:
        return self._store.writes

    # -- CopyStore facade: recovery support ---------------------------------

    def install(self, obj: str, value: Any, date: Any,
                version: Any = None) -> None:
        self._store.install(obj, value, date, version)
        self._journal(REC_INSTALL, obj=obj, value=value, date=date,
                      version=version)

    def log_since(self, obj: str, after: Any) -> List[LogEntry]:
        """As ``CopyStore.log_since``, but truncation-aware.

        Raises :class:`LogTruncated` when compaction may have discarded
        entries the answer should contain: the full history was
        requested (``after=None``) of a compacted log, or ``after``
        lies below the retained floor.  A ``None``-dated floor (only
        the initial placement entry was discarded) still answers any
        dated ``after`` exactly, since ``None``-dated entries are never
        part of a dated answer.
        """
        floor = self._floors.get(obj, NO_FLOOR)
        if floor is not NO_FLOOR:
            if after is None or (floor is not None and after < floor):
                self.stats.truncated_reads += 1
                raise LogTruncated(obj, after, floor)
        return self._store.log_since(obj, after)

    def apply_log(self, obj: str, entries: Iterable[LogEntry]) -> int:
        """As ``CopyStore.apply_log``; each applied entry is journalled."""
        applied = 0
        for entry in entries:
            current = self._store.date(obj)
            if current is None or (entry.date is not None
                                   and entry.date > current):
                self._store.install(obj, entry.value, entry.date,
                                    entry.version)
                self._journal(REC_APPLY, obj=obj, value=entry.value,
                              date=entry.date, version=entry.version)
                applied += 1
        return applied

    def compaction_floor(self, obj: str) -> Any:
        """The copy's retained floor, or ``NO_FLOOR`` if never compacted."""
        return self._floors.get(obj, NO_FLOOR)

    # -- durable cells -------------------------------------------------------

    def durable_cell(self, name: str, initial: Any = None) -> DurableCell:
        """A named crash-surviving scalar, journalled on every write.

        Re-requesting an existing name returns the live cell (its
        current value wins over ``initial``), so recovery hooks can
        reacquire their cells idempotently.
        """
        cell = self._cells.get(name)
        if cell is None:
            cell = EngineCell(self, name, initial)
            self._cells[name] = cell
            self._journal(REC_CELL, cell=name, value=initial)
        return cell

    # -- 2PC force-write points ---------------------------------------------

    def record_prepare(self, txn: Any, objects: Any = None) -> None:
        """Journal a participant's yes-vote prepare record (forced)."""
        self._journal(REC_PREPARE, forced=True, txn=txn,
                      value=sorted(objects) if objects else None)

    def record_decision(self, txn: Any, outcome: str,
                        forced: bool = True) -> None:
        """Journal a coordinator decision-log entry.

        ``forced=True`` for real decisions (the force-write before any
        decide message leaves); the ``undecided`` log-entry open and
        crash-time presumed-abort finalization ride unforced.
        """
        self._decisions[txn] = outcome
        self._journal(REC_DECISION, forced=forced, txn=txn,
                      outcome=outcome)

    @property
    def decisions(self) -> Dict[Any, str]:
        """The journalled decision log (read-only view for recovery)."""
        return dict(self._decisions)

    def decision_of(self, txn: Any) -> Optional[str]:
        """One transaction's journalled outcome (O(1); None = no entry).

        The protocol layer retires decided entries from its in-memory
        map and answers late ``txn-status`` queries from here instead.
        """
        return self._decisions.get(txn)

    # -- checkpoints and compaction -------------------------------------------

    def checkpoint(self, compact: Optional[bool] = None) -> Checkpoint:
        """Snapshot all durable state and truncate the journalled prefix.

        Compaction (when the policy enables it, or ``compact=True``)
        runs *before* the snapshot so the checkpoint captures the
        trimmed logs and their floors.
        """
        do_compact = (self.policy.log_retain is not None
                      if compact is None else compact)
        if do_compact and self.policy.log_retain is not None:
            self.stats.compacted_entries += compact_store(
                self._store, self.policy.log_retain, self._floors)
        snap = Checkpoint(
            lsn=self.wal.tail_lsn,
            copies=snapshot_copies(self._store, self._floors),
            cells=tuple((name, cell.value) for name, cell
                        in sorted(self._cells.items())),
            decisions=tuple(sorted(self._decisions.items(), key=repr)),
        )
        self.wal.truncate_through(snap.lsn)
        self._checkpoint = snap
        self._appends_since_checkpoint = 0
        self.stats.checkpoints += 1
        return snap

    @property
    def last_checkpoint(self) -> Checkpoint:
        return self._checkpoint

    def retained_entries(self) -> int:
        """Total write-log entries currently held across all copies."""
        return sum(len(self._store._get(obj).log)
                   for obj in self._store.local_objects)

    # -- crash recovery -------------------------------------------------------

    def rebuilt(self) -> "StorageEngine":
        """A fresh engine recovered from checkpoint + WAL replay.

        This is the honest crash-recovery model: nothing of the live
        materialized state is reused — the snapshot is restored and the
        replay tail applied on top.  The recovered engine finishes with
        a fresh (uncompacted) checkpoint of its rebuilt state, like a
        real recovery would, so its own journal starts clean.
        """
        engine = StorageEngine(self.pid, self.policy)
        engine._replaying = True
        try:
            checkpoint = self._checkpoint
            engine._store, engine._floors = restore_copies(
                self.pid, checkpoint.copies)
            for name, value in checkpoint.cells:
                engine._cells[name] = EngineCell(engine, name, value)
            engine._decisions = dict(checkpoint.decisions)
            for record in self.wal.records_after(checkpoint.lsn):
                engine._replay(record)
                engine.stats.replayed_records += 1
                engine.stats.replayed_bytes += record.cost_bytes()
        finally:
            engine._replaying = False
        engine.checkpoint(compact=False)
        return engine

    def _replay(self, record: WalRecord) -> None:
        store = self._store
        if record.kind == REC_PLACE:
            store.place(record.obj, initial=record.value, date=record.date,
                        size=record.size or 1, version=record.version)
        elif record.kind in (REC_WRITE, REC_INSTALL, REC_APPLY):
            # install reproduces exactly what write/install/apply_log
            # left behind: value, date, version, and one log entry —
            # without re-counting transaction writes.
            store.install(record.obj, record.value, record.date,
                          record.version)
        elif record.kind == REC_CELL:
            cell = self._cells.get(record.cell)
            if cell is None:
                self._cells[record.cell] = EngineCell(
                    self, record.cell, record.value)
            else:
                cell._value = record.value
        elif record.kind == REC_DECISION:
            self._decisions[record.txn] = record.outcome
        elif record.kind == REC_PREPARE:
            pass  # participant-volatile bookkeeping; nothing materialized
        elif record.kind == REC_RETIRE:
            if store.holds(record.obj):
                store.retire(record.obj)
            self._floors.pop(record.obj, None)
        else:  # pragma: no cover - append() validates kinds
            raise ValueError(f"unknown WAL record kind {record.kind!r}")

    def durable_snapshot(self) -> dict:
        """Canonical durable state, for recovery-equality assertions."""
        copies = {}
        for obj in sorted(self._store.local_objects):
            copy = self._store._get(obj)
            copies[obj] = {
                "value": copy.value,
                "date": copy.date,
                "version": copy.version,
                "size": copy.size,
                "log": tuple((e.date, e.value, e.version)
                             for e in copy.log),
            }
        return {
            "copies": copies,
            "floors": {obj: self._floors[obj]
                       for obj in sorted(self._floors)},
            "cells": {name: cell.value
                      for name, cell in sorted(self._cells.items())},
            "decisions": dict(self._decisions),
        }

    def __repr__(self) -> str:
        return (f"StorageEngine(pid={self.pid}, "
                f"objects={sorted(self._store.local_objects)}, "
                f"wal={len(self.wal)} records)")
