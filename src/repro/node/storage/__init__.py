"""Durable per-processor storage, as a layered engine.

* :mod:`~repro.node.storage.store` — the materialized copy table
  (:class:`CopyStore`): values, dates, versions, §6 write logs;
* :mod:`~repro.node.storage.wal` — the typed append-only write-ahead
  log (:class:`WriteAheadLog`) every durable mutation is journalled to;
* :mod:`~repro.node.storage.checkpoint` — snapshots and per-copy log
  compaction with retained-floor tracking;
* :mod:`~repro.node.storage.engine` — :class:`StorageEngine`, the
  ``CopyStore``-compatible facade processors actually hold, plus the
  :class:`StoragePolicy` knobs and :class:`StorageStats` counters.

``from repro.node.storage import CopyStore`` keeps working: the
original flat module became this package, and every public name is
re-exported here.
"""

from .checkpoint import NO_FLOOR, Checkpoint, CopySnapshot
from .engine import (
    DEFAULT_POLICY,
    EngineCell,
    StorageEngine,
    StoragePolicy,
    StorageStats,
)
from .store import Copy, CopyStore, DurableCell, LogEntry
from .wal import (
    RECORD_KINDS,
    LogTruncated,
    WalRecord,
    WriteAheadLog,
)

__all__ = [
    "Checkpoint",
    "Copy",
    "CopySnapshot",
    "CopyStore",
    "DEFAULT_POLICY",
    "DurableCell",
    "EngineCell",
    "LogEntry",
    "LogTruncated",
    "NO_FLOOR",
    "RECORD_KINDS",
    "StorageEngine",
    "StoragePolicy",
    "StorageStats",
    "WalRecord",
    "WriteAheadLog",
]
