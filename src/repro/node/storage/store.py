"""The materialized copy table: physical copies, dates, and write logs.

Each processor stores, for every logical object it replicates (Fig. 3's
``local`` set and §5's ``value``/``date`` functions):

* the current **value** of its physical copy,
* the **date** — the virtual-partition identifier current when the copy
  was last written (any totally ordered token works; the protocol layer
  uses :class:`~repro.core.ids.VpId`),
* a **write log** of ``(date, value)`` entries enabling the §6
  missing-writes catch-up optimization (ship only the writes the copy
  missed, instead of the whole object).

:class:`CopyStore` is the in-memory *materialized* layer of the storage
engine — the state the paper's ``value``/``date`` functions read.  What
makes storage durable is the layer above it: :class:`~repro.node.
storage.engine.StorageEngine` journals every mutation into a write-ahead
log and can rebuild an identical ``CopyStore`` from checkpoint + replay
(see :mod:`repro.node.storage.wal` and :mod:`repro.node.storage.
checkpoint`).  Only the protocol tasks' volatile state (views, partition
assignment) is lost on a crash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List


@dataclass(frozen=True)
class LogEntry:
    """One physical write applied to a copy."""

    date: Any
    value: Any
    version: Any = None


@dataclass
class Copy:
    """A physical copy of a logical object."""

    obj: str
    value: Any
    date: Any
    size: int = 1
    version: Any = None
    log: List[LogEntry] = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.log is None:
            self.log = [LogEntry(self.date, self.value, self.version)]


class CopyStore:
    """All physical copies held by one processor. Crash-durable."""

    def __init__(self, pid: int):
        self.pid = pid
        self._copies: Dict[str, Copy] = {}
        #: physical access counters, by object
        self.reads: Dict[str, int] = {}
        self.writes: Dict[str, int] = {}

    # -- placement ------------------------------------------------------------

    def place(self, obj: str, initial: Any = None, date: Any = None,
              size: int = 1, version: Any = None) -> None:
        """Create the local copy of logical object ``obj``.

        ``version`` is the opaque token identifying the write that
        produced the current value; the correctness checkers use it to
        compute the exact reads-from relation.
        """
        if obj in self._copies:
            raise KeyError(f"copy of {obj!r} already placed on {self.pid}")
        if size < 1:
            raise ValueError("object size must be at least 1")
        self._copies[obj] = Copy(obj, initial, date, size=size, version=version)

    def holds(self, obj: str) -> bool:
        """True if this processor has a copy of ``obj``."""
        return obj in self._copies

    def retire(self, obj: str) -> None:
        """Drop the local copy — a reshard moved it to other processors.

        Releases the copy's storage (value and write log); the physical
        access counters survive as history.  Raises ``KeyError`` if
        there is no copy to retire.
        """
        self._get(obj)
        del self._copies[obj]

    @property
    def local_objects(self) -> set[str]:
        """Fig. 3's ``local``: logical objects with a copy here."""
        return set(self._copies)

    # -- access ------------------------------------------------------------

    def read(self, obj: str) -> tuple[Any, Any]:
        """Physical read: ``(value, date)`` of the local copy."""
        copy = self._get(obj)
        self.reads[obj] = self.reads.get(obj, 0) + 1
        return copy.value, copy.date

    def write(self, obj: str, value: Any, date: Any,
              version: Any = None) -> None:
        """Physical write with its logical date; appended to the log."""
        copy = self._get(obj)
        self.writes[obj] = self.writes.get(obj, 0) + 1
        copy.value = value
        copy.date = date
        copy.version = version
        copy.log.append(LogEntry(date, value, version))

    def peek(self, obj: str) -> tuple[Any, Any]:
        """Read without counting (used by recovery metrics)."""
        copy = self._get(obj)
        return copy.value, copy.date

    def date(self, obj: str) -> Any:
        """The logical date of the local copy."""
        return self._get(obj).date

    def version(self, obj: str) -> Any:
        """The version token of the write the copy currently holds."""
        return self._get(obj).version

    def size(self, obj: str) -> int:
        """Declared size of the object (cost unit for full transfers)."""
        return self._get(obj).size

    # -- recovery support ---------------------------------------------------

    def install(self, obj: str, value: Any, date: Any,
                version: Any = None) -> None:
        """Overwrite the copy during partition initialization (R5 recover).

        Unlike :meth:`write` this does not count as a transaction write,
        but it is logged so later catch-ups see a consistent history.
        """
        copy = self._get(obj)
        copy.value = value
        copy.date = date
        copy.version = version
        copy.log.append(LogEntry(date, value, version))

    def log_since(self, obj: str, after: Any) -> List[LogEntry]:
        """Log entries with date strictly greater than ``after``.

        The §6 optimization: these are exactly the writes a copy with
        date ``after`` missed (by Theorem 1', writes are ordered by
        partition creation order).  ``after=None`` returns everything.
        """
        copy = self._get(obj)
        if after is None:
            return list(copy.log)
        return [entry for entry in copy.log
                if entry.date is not None and entry.date > after]

    def apply_log(self, obj: str, entries: Iterable[LogEntry]) -> int:
        """Apply missed writes in order; returns how many were applied."""
        copy = self._get(obj)
        applied = 0
        for entry in entries:
            if copy.date is None or (entry.date is not None
                                     and entry.date > copy.date):
                copy.value = entry.value
                copy.date = entry.date
                copy.version = entry.version
                copy.log.append(entry)
                applied += 1
        return applied

    # -- helpers -----------------------------------------------------------

    def _get(self, obj: str) -> Copy:
        try:
            return self._copies[obj]
        except KeyError:
            raise KeyError(f"no copy of {obj!r} on processor {self.pid}") from None

    def __repr__(self) -> str:
        return f"CopyStore(pid={self.pid}, objects={sorted(self._copies)})"


class DurableCell:
    """A named crash-surviving scalar (e.g. the protocol's ``max-id``).

    The paper requires partition identifiers to be globally unique and
    increasing even across crashes; keeping ``max-id`` durable is the
    standard way to get that.
    """

    def __init__(self, initial: Any = None):
        self._value = initial

    @property
    def value(self) -> Any:
        return self._value

    @value.setter
    def value(self, new: Any) -> None:
        self._value = new
