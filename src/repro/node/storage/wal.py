"""The typed append-only write-ahead log.

Every durable mutation a processor performs — copy writes, recovery
installs, log catch-ups, decision-log entries, prepare records, and
durable-cell bumps (``max-id``) — is journalled here as one typed,
LSN-stamped record *before* it is considered durable.  Crash recovery
is then honest by construction: load the last checkpoint, replay the
records after its LSN, and the rebuilt state equals the pre-crash
durable state (pinned by ``tests/integration/test_crash_replay.py``).

Records are either plain **appends** (copy writes ride on the next
group sync) or **forced** (the 2PC force-write points: a participant's
prepare record, the coordinator's decision-log entry, a ``max-id``
bump).  Gray & Lamport's *Consensus on Transaction Commit* makes those
forced writes the central cost metric of a commit protocol; the
protocol layer charges ``ProtocolConfig.storage_sync_cost`` model time
at each one, and :class:`~repro.node.storage.engine.StorageStats`
counts both kinds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

# -- record kinds -----------------------------------------------------------

#: a copy was created (``CopyStore.place``)
REC_PLACE = "place"
#: a transaction's physical write (``CopyStore.write``)
REC_WRITE = "write"
#: a recovery overwrite (``CopyStore.install``, R5)
REC_INSTALL = "install"
#: one missed log entry applied during §6 catch-up (``apply_log``)
REC_APPLY = "apply"
#: a durable scalar cell changed (e.g. the protocol's ``max-id``)
REC_CELL = "cell"
#: a coordinator decision-log entry (undecided / commit / abort)
REC_DECISION = "decision"
#: a participant's yes-vote prepare record (2PC uncertainty window)
REC_PREPARE = "prepare"
#: a copy was retired — its storage released — after a reshard moved
#: it elsewhere (``CopyStore.retire``)
REC_RETIRE = "retire"

RECORD_KINDS = frozenset({
    REC_PLACE, REC_WRITE, REC_INSTALL, REC_APPLY,
    REC_CELL, REC_DECISION, REC_PREPARE, REC_RETIRE,
})


class LogTruncated(LookupError):
    """A ``log_since`` request reaches below the compaction floor.

    Entries with dates at or below the floor were compacted away, so a
    partial answer would silently miss writes — the §6 catch-up must
    fall back to a full-object transfer instead (see
    ``core/copy_update.py``).
    """

    def __init__(self, obj: str, after: Any, floor: Any):
        super().__init__(
            f"log of {obj!r} truncated: entries after {after!r} are "
            f"incomplete below the compaction floor {floor!r}"
        )
        self.obj = obj
        self.after = after
        self.floor = floor


@dataclass(frozen=True)
class WalRecord:
    """One journalled mutation.

    The fields beyond ``lsn``/``kind``/``forced`` are kind-dependent;
    unused ones stay ``None``.  Records are immutable — replay and
    accounting may share them freely.
    """

    lsn: int
    kind: str
    forced: bool = False
    obj: Optional[str] = None
    value: Any = None
    date: Any = None
    version: Any = None
    size: Optional[int] = None
    cell: Optional[str] = None
    txn: Any = None
    outcome: Optional[str] = None

    def cost_bytes(self) -> int:
        """A deterministic size estimate for replay-cost accounting.

        The simulation has no real serialization; the byte figure is
        the canonical repr length of the record's payload, which is
        stable across runs of one seed (everything stored is builtin
        scalars, tuples, and ``VpId``-style value types).
        """
        payload = (self.kind, self.obj, self.value, self.date,
                   self.version, self.size, self.cell, self.txn,
                   self.outcome)
        return len(repr(payload))


class WriteAheadLog:
    """The append-only journal: strictly increasing LSNs, replayable tail.

    Checkpointing truncates the prefix a checkpoint snapshot already
    captures (``truncate_through``); what remains is exactly the replay
    tail recovery needs.
    """

    def __init__(self) -> None:
        self._records: List[WalRecord] = []
        self._next_lsn = 1
        #: LSN of the newest record ever appended (0 = none yet);
        #: survives truncation — it anchors checkpoint positions
        self.tail_lsn = 0

    def append(self, kind: str, *, forced: bool = False,
               obj: Optional[str] = None, value: Any = None,
               date: Any = None, version: Any = None,
               size: Optional[int] = None, cell: Optional[str] = None,
               txn: Any = None, outcome: Optional[str] = None) -> WalRecord:
        if kind not in RECORD_KINDS:
            raise ValueError(f"unknown WAL record kind {kind!r}")
        record = WalRecord(
            lsn=self._next_lsn, kind=kind, forced=forced, obj=obj,
            value=value, date=date, version=version, size=size,
            cell=cell, txn=txn, outcome=outcome,
        )
        self._next_lsn += 1
        self.tail_lsn = record.lsn
        self._records.append(record)
        return record

    def records_after(self, lsn: int) -> List[WalRecord]:
        """The replay tail: every retained record with LSN > ``lsn``."""
        return [r for r in self._records if r.lsn > lsn]

    def truncate_through(self, lsn: int) -> int:
        """Drop records with LSN <= ``lsn``; returns how many were cut.

        Only valid once a checkpoint at ``lsn`` exists — the engine
        enforces that ordering.
        """
        before = len(self._records)
        self._records = [r for r in self._records if r.lsn > lsn]
        return before - len(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def __repr__(self) -> str:
        return (f"WriteAheadLog({len(self._records)} records, "
                f"tail_lsn={self.tail_lsn})")
