"""The processor runtime hosting protocol tasks.

A :class:`Processor` owns:

* typed mailboxes — one FIFO per message kind, fed by the network;
* an RPC helper implementing the paper's ``send ... receive ...
  [no-response: ...]`` pattern (Figs. 9–11) with reply matching and a
  timeout;
* a task registry: protocol layers register named generator factories;
  tasks are (re)spawned on start/recover and killed on crash, matching
  the paper's model where a crash wipes all volatile state but durable
  storage (the :class:`~repro.node.storage.CopyStore`) survives.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Mapping, Optional

from ..net.message import Message
from ..net.network import Network
from ..sim import MessageQueue, Process, Simulator, Timer
from .storage import StorageEngine
from .transport import (  # noqa: F401  (NoResponse re-exported)
    NoResponse, QuorumPredicate, ScatterCall, TransportStats,
)

TaskFactory = Callable[[], Any]  # returns a generator


class Processor:
    """One node of the distributed system."""

    def __init__(self, pid: int, sim: Simulator, network: Network,
                 store: Optional[StorageEngine] = None):
        self.pid = pid
        self.sim = sim
        self.network = network
        #: durable storage — survives crashes; the cluster may supply an
        #: engine configured with checkpoint/compaction policy
        self.store = store if store is not None else StorageEngine(pid)
        self.alive = True
        #: fan-out accounting for the shared transport primitives
        self.transport = TransportStats()
        #: optional :class:`~repro.obs.trace.Tracer`; None = no tracing
        self.tracer = None
        self._mailboxes: Dict[str, MessageQueue] = {}
        self._reply_waiters: Dict[int, Any] = {}
        self._task_factories: Dict[str, TaskFactory] = {}
        self._tasks: Dict[str, Process] = {}
        self._crash_hooks: list[Callable[[], None]] = []
        self._recover_hooks: list[Callable[[], None]] = []
        network.register(pid, self._on_delivery,
                         inline=self._on_delivery_inline)

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"Processor({self.pid}, {state})"

    # -- messaging ------------------------------------------------------------

    def send(self, dst: int, kind: str, payload: Mapping[str, Any]
             | None = None) -> Message:
        """Fire-and-forget send; returns the envelope (for reply matching)."""
        message = Message(src=self.pid, dst=dst, kind=kind,
                          payload=payload or {}, sent_at=self.sim.now,
                          msg_id=self.network.next_msg_id())
        self.network.send(message)
        return message

    def reply(self, request: Message, kind: str,
              payload: Mapping[str, Any] | None = None) -> None:
        """Respond to ``request``; routed back to its ``rpc`` waiter."""
        response = Message(
            src=self.pid, dst=request.src, kind=kind,
            payload=payload or {}, reply_to=request.msg_id,
            sent_at=self.sim.now, msg_id=self.network.next_msg_id(),
        )
        self.network.send(response)

    def rpc(self, dst: int, kind: str, payload: Mapping[str, Any] | None,
            timeout: float):
        """Generator: request/response with a deadline.

        Use as ``response = yield from processor.rpc(...)``.  Raises
        :class:`NoResponse` when no reply arrives within ``timeout`` —
        the caller decides whether that aborts the operation, retries
        elsewhere, or triggers a new virtual partition.
        """
        request = self.send(dst, kind, payload)
        waiter = self.sim.event(name=f"rpc#{request.msg_id}")
        self._reply_waiters[request.msg_id] = waiter
        tick = self.sim.timeout(timeout, name=f"rpc-timeout#{request.msg_id}")
        try:
            result = yield self.sim.any_of([waiter, tick])
        finally:
            self._reply_waiters.pop(request.msg_id, None)
        if waiter in result:
            return result[waiter]
        raise NoResponse(dst, kind)

    def mailbox(self, kind: str) -> MessageQueue:
        """The FIFO of unconsumed ``kind`` messages (created on demand)."""
        if kind not in self._mailboxes:
            self._mailboxes[kind] = MessageQueue(
                self.sim, name=f"p{self.pid}.{kind}"
            )
        return self._mailboxes[kind]

    def receive(self, kind: str):
        """Event firing with the next ``kind`` message."""
        return self.mailbox(kind).get()

    # -- fan-out primitives (see node/transport.py) ---------------------------

    def scatter(self, targets: Iterable[int], kind: str,
                payload_for: Callable[[int], Mapping[str, Any] | None],
                *, timeout: float,
                label: Optional[str] = None) -> ScatterCall:
        """Start parallel RPCs to ``targets``; gather the replies later.

        The two-phase form: requests go out now, the caller may do
        local work, then ``results = yield from call.gather()``.
        """
        return ScatterCall(self, targets, kind, payload_for,
                           timeout=timeout, label=label)

    def scatter_to_copies(self, directory, obj: str, view: Iterable[int],
                          kind: str,
                          payload_for: Callable[[int],
                                                Mapping[str, Any] | None],
                          *, timeout: float, label: Optional[str] = None):
        """Directory-routed fan-out: resolve ``obj``'s copy-holders
        inside ``view`` through ``directory`` and scatter to them.

        Returns ``(targets, call)`` — the resolved holder list (sorted)
        and the in-flight :class:`ScatterCall`; the caller gathers when
        ready.  Counted separately from plain scatters so routed
        traffic is measurable per processor.
        """
        targets = directory.write_targets(obj, view)
        self.transport.routed_fanouts += 1
        call = self.scatter(targets, kind, payload_for,
                            timeout=timeout, label=label)
        return targets, call

    def scatter_gather(self, targets: Iterable[int], kind: str,
                       payload_for: Callable[[int], Mapping[str, Any] | None],
                       *, timeout: float,
                       quorum: Optional[QuorumPredicate] = None,
                       label: Optional[str] = None):
        """Generator: parallel RPCs to ``targets`` under one deadline.

        Returns ``{target: reply_payload_or_None}`` (None = silence).
        With ``quorum``, stops early once the predicate holds on the
        partial map (see :meth:`ScatterCall.gather`).
        """
        call = self.scatter(targets, kind, payload_for,
                            timeout=timeout, label=label)
        results = yield from call.gather(quorum=quorum)
        return results

    def quorum_call(self, targets: Iterable[int], kind: str,
                    payload_for: Callable[[int], Mapping[str, Any] | None],
                    *, timeout: float, quorum: QuorumPredicate,
                    label: Optional[str] = None):
        """Generator: ``scatter_gather`` with a required quorum predicate."""
        results = yield from self.scatter_gather(
            targets, kind, payload_for,
            timeout=timeout, quorum=quorum, label=label,
        )
        return results

    def broadcast_collect(self, targets: Iterable[int], kind: str,
                          payload: Mapping[str, Any] | None, *,
                          reply_kind: str, window: float,
                          accept: Callable[[Message], bool]):
        """Generator: one-way broadcast, then a timed collection window.

        The Figs. 5/7 pattern: send ``kind`` to every target, then for
        ``window`` time units drain the ``reply_kind`` mailbox, passing
        each message to ``accept`` — which filters (return False to
        ignore) and may record per-arrival state (trace events,
        responder sets) at receipt time.  Returns the accepted messages.
        """
        self.transport.broadcasts += 1
        for dst in targets:
            self.send(dst, kind, payload)
        timer = Timer(self.sim, name=f"p{self.pid}.collect-{reply_kind}")
        timer.set(window)
        box = self.mailbox(reply_kind)
        collected: list[Message] = []
        while True:
            get = box.get()
            tick = timer.wait()
            fired = yield self.sim.any_of([get, tick])
            if get in fired:
                message = fired[get]
                if accept(message):
                    collected.append(message)
            else:
                return collected

    def _on_delivery(self, message: Message) -> None:
        if not self.alive:
            return
        if message.reply_to is not None:
            waiter = self._reply_waiters.pop(message.reply_to, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(message)
                return
            # Late or duplicate reply: nobody is waiting; drop it — but
            # visibly.  A steady stream of late replies means timeouts
            # are tuned below the real round-trip time.
            self.transport.late_replies += 1
            if self.tracer is not None:
                self.tracer.emit("msg.late-reply", pid=self.pid,
                                 src=message.src, kind=message.kind,
                                 reply_to=message.reply_to)
            return
        self.mailbox(message.kind).put(message)

    def _on_delivery_inline(self, message: Message) -> None:
        """Macro-event variant of :meth:`_on_delivery` (batched mode).

        Wakes the reply waiter / mailbox getter *within the current
        dispatch* — ``fire_inline`` / ``put_inline`` instead of
        scheduled wakeup events — so a whole envelope drains as one
        kernel dispatch.  Filtering (dead processor, late replies) is
        identical to the classic path.
        """
        if not self.alive:
            return
        if message.reply_to is not None:
            waiter = self._reply_waiters.pop(message.reply_to, None)
            if waiter is not None and self.sim.fire_inline(waiter, message):
                return
            self.transport.late_replies += 1
            if self.tracer is not None:
                self.tracer.emit("msg.late-reply", pid=self.pid,
                                 src=message.src, kind=message.kind,
                                 reply_to=message.reply_to)
            return
        self.mailbox(message.kind).put_inline(message)

    # -- task management ----------------------------------------------------------

    def add_task(self, name: str, factory: TaskFactory) -> None:
        """Register a long-running protocol task (spawned by :meth:`start`)."""
        if name in self._task_factories:
            raise KeyError(f"task {name!r} already registered on {self.pid}")
        self._task_factories[name] = factory

    def on_crash(self, hook: Callable[[], None]) -> None:
        """Register a volatile-state reset hook, run on crash."""
        self._crash_hooks.append(hook)

    def on_recover(self, hook: Callable[[], None]) -> None:
        """Register a reinitialization hook, run on recovery."""
        self._recover_hooks.append(hook)

    def start(self) -> None:
        """Spawn all registered tasks (idempotent per task)."""
        for name, factory in self._task_factories.items():
            existing = self._tasks.get(name)
            if existing is not None and existing.is_alive:
                continue
            self._tasks[name] = self.sim.process(
                factory(), name=f"p{self.pid}.{name}"
            )

    def spawn(self, name: str, generator) -> Process:
        """Run a one-shot auxiliary process tied to this processor's life."""
        process = self.sim.process(generator, name=f"p{self.pid}.{name}")
        self._tasks[f"{name}#{id(process)}"] = process
        return process

    # -- failure model ------------------------------------------------------------

    def crash(self) -> None:
        """Omission failure: all tasks die, volatile state is lost.

        The durable :attr:`store` survives.  The caller (failure
        injector) is responsible for also marking the node down in the
        communication graph.
        """
        if not self.alive:
            return
        self.alive = False
        for process in self._tasks.values():
            if process.is_alive:
                process.kill()
        self._tasks = {
            name: process for name, process in self._tasks.items()
            if name in self._task_factories
        }
        for mailbox in self._mailboxes.values():
            mailbox.clear()
        self._reply_waiters.clear()
        for hook in self._crash_hooks:
            hook()

    def recover(self) -> None:
        """Restart after a crash: hooks run, then tasks respawn."""
        if self.alive:
            return
        self.alive = True
        for hook in self._recover_hooks:
            hook()
        self.start()
