"""Processor runtime: task hosting, mailboxes, RPC, durable storage."""

from .processor import NoResponse, Processor
from .storage import Copy, CopyStore, DurableCell, LogEntry

__all__ = [
    "Copy",
    "CopyStore",
    "DurableCell",
    "LogEntry",
    "NoResponse",
    "Processor",
]
