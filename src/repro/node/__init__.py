"""Processor runtime: task hosting, mailboxes, RPC, durable storage."""

from .processor import NoResponse, Processor
from .storage import (
    Copy,
    CopyStore,
    DurableCell,
    LogEntry,
    LogTruncated,
    StorageEngine,
    StoragePolicy,
    StorageStats,
    WalRecord,
    WriteAheadLog,
)

__all__ = [
    "Copy",
    "CopyStore",
    "DurableCell",
    "LogEntry",
    "LogTruncated",
    "NoResponse",
    "Processor",
    "StorageEngine",
    "StoragePolicy",
    "StorageStats",
    "WalRecord",
    "WriteAheadLog",
]
