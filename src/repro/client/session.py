"""The client session: cache + leases in front of one processor's TM.

A session belongs to one simulated client and fronts that client's
home processor.  Each workload program runs through
:meth:`ClientSession.run_program`, which serves what it can locally —
dirty cache entries (read-your-writes), valid leases (bounded
staleness), clean cache entries (when leases are off) and write-back
writes — and batches everything else into *one* protocol transaction.
A program fully served locally never touches the network at all: zero
messages, zero simulated latency.

Freshness contract, in decreasing strength:

* leases on — every locally-served read is either this client's own
  pending write or a lease whose staleness the C6 window bounds (see
  :mod:`repro.client.lease`); the auditor can check the bound live.
* cache only — locally-served reads are session-consistent (you see
  your own writes; repeat reads may be stale until evicted).
* neither — every program is one protocol transaction, exactly the
  pre-session behaviour.

The protocol-level history only contains the protocol transactions, so
the 1SR checkers judge exactly what the protocol executed; the session
tier's relaxations are the bounded-staleness semantics stated here,
not a weakening of the protocol's own guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .cache import POLICIES, WRITE_BACK, WRITE_THROUGH, SessionCache
from .lease import LeaseTable


@dataclass(frozen=True)
class SessionSpec:
    """Client-tier knobs; the all-defaults spec disables the tier."""

    #: LRU entries per client; 0 = no cache
    cache_capacity: int = 0
    #: "write-through" or "write-back" (write-back needs a cache)
    cache_policy: str = WRITE_THROUGH
    #: lease duration L; 0 = no leases.  Must satisfy L <= pi.
    lease_duration: float = 0.0

    def __post_init__(self):
        if self.cache_capacity < 0:
            raise ValueError(
                f"cache_capacity must be >= 0: {self.cache_capacity}")
        if self.cache_policy not in POLICIES:
            raise ValueError(f"unknown cache policy {self.cache_policy!r}; "
                             f"expected one of {POLICIES}")
        if self.lease_duration < 0:
            raise ValueError(
                f"lease_duration must be >= 0: {self.lease_duration}")
        if self.cache_policy == WRITE_BACK and self.cache_capacity == 0:
            raise ValueError("write-back needs a cache (cache_capacity > 0)")

    @property
    def enabled(self) -> bool:
        return self.cache_capacity > 0 or self.lease_duration > 0


@dataclass
class SessionStats:
    """What one client's session tier did, for the run-level rollup."""

    programs: int = 0
    committed: int = 0
    aborted: int = 0
    #: programs that needed no protocol transaction at all
    local_programs: int = 0
    reads: int = 0
    writes: int = 0
    #: reads served from a valid lease
    lease_reads: int = 0
    #: reads served from the cache (dirty always; clean iff leases off)
    cache_reads: int = 0
    remote_reads: int = 0
    #: write-back writes absorbed into the cache (no message yet)
    local_writes: int = 0
    remote_writes: int = 0
    #: dirty entries shipped in a protocol transaction
    flush_writes: int = 0
    #: per-read client-observed latency (0.0 for local serves)
    read_latencies: List[float] = field(default_factory=list)
    #: per-committed-program service time (run_program entry -> commit)
    program_latencies: List[float] = field(default_factory=list)
    #: age of lease-served values (now - fetch_time) at serve time
    staleness: List[float] = field(default_factory=list)

    @property
    def local_reads(self) -> int:
        return self.lease_reads + self.cache_reads

    @property
    def local_read_fraction(self) -> float:
        return self.local_reads / self.reads if self.reads else 0.0


class ClientSession:
    """One client's cache + lease front-end over a TransactionManager."""

    def __init__(self, tm, protocol, spec: SessionSpec,
                 auditor=None):
        self.tm = tm
        self.protocol = protocol
        self.pid = protocol.pid
        self.sim = protocol.processor.sim
        self.config = protocol.config
        self.spec = spec
        self.auditor = auditor
        self.stats = SessionStats()
        self.cache: Optional[SessionCache] = None
        if spec.cache_capacity > 0:
            self.cache = SessionCache(spec.cache_capacity, spec.cache_policy)
        self.lease_table: Optional[LeaseTable] = None
        if spec.lease_duration > 0:
            state = getattr(protocol, "state", None)
            if state is None:
                raise ValueError(
                    f"protocol {protocol.name!r} has no view state; leases "
                    "need the virtual-partitions family (the staleness "
                    "bound is anchored to the C6 window)"
                )
            table = getattr(protocol, "lease_table", None)
            if table is None:
                table = LeaseTable(state, spec.lease_duration,
                                   self.config.pi)
                protocol.lease_table = table
            elif table.duration != spec.lease_duration:
                raise ValueError(
                    f"processor {self.pid} already grants {table.duration}-"
                    f"leases; sessions on one processor must agree"
                )
            self.lease_table = table
        #: dirty evictions awaiting a transaction to ride in
        self._flush_backlog: List[Tuple[str, Any]] = []

    @property
    def staleness_bound(self) -> float:
        """Max age of a lease-served value: L + the C6 window Δ."""
        return self.spec.lease_duration + self.config.liveness_bound

    # ------------------------------------------------------------------
    # program execution
    # ------------------------------------------------------------------

    def run_program(self, program, tag: str = "", retries: int = 0,
                    backoff: Optional[float] = None):
        """Generator: run one ``[("r"|"w", obj), ...]`` program.

        Returns ``(committed, result_or_reason)`` like
        :meth:`TransactionManager.run`; the result is the last read's
        value, matching :func:`~repro.workload.generator.body_for`.
        """
        sim = self.sim
        start = sim.now
        self.stats.programs += 1
        #: protocol steps: (kind, obj, write_value, program_slot);
        #: slot None marks a flush of an evicted dirty entry
        remote: List[Tuple[str, str, Any, Optional[int]]] = []
        local: Dict[int, Any] = {}
        for obj, value in self._flush_backlog:
            remote.append(("w", obj, value, None))
            self.stats.flush_writes += 1
        self._flush_backlog = []
        for slot, (kind, obj) in enumerate(program):
            if kind == "r":
                self.stats.reads += 1
                served, value = self._serve_read_locally(obj)
                if served:
                    local[slot] = value
                else:
                    remote.append(("r", obj, None, slot))
            else:
                self.stats.writes += 1
                value = f"{tag}/w{slot}"
                if self.cache is not None and self.spec.cache_policy == \
                        WRITE_BACK:
                    self.stats.local_writes += 1
                    for victim, pending in self.cache.put(obj, value,
                                                          dirty=True):
                        remote.append(("w", victim, pending, None))
                        self.stats.flush_writes += 1
                    if self.lease_table is not None:
                        # our own write supersedes any lease we hold
                        self.lease_table.invalidate(obj)
                else:
                    remote.append(("w", obj, value, slot))
        if not remote:
            self.stats.local_programs += 1
            self.stats.committed += 1
            self.stats.program_latencies.append(sim.now - start)
            return True, self._program_result(program, local)

        captured: Dict[str, Any] = {}

        def body(txn):
            values: Dict[int, Any] = {}
            for kind, obj, value, slot in remote:
                if kind == "r":
                    values[slot] = yield from txn.read(obj)
                else:
                    yield from txn.write(obj, value)
            captured["ctx"] = txn.ctx
            captured["values"] = values
            return values

        committed, outcome = yield from self.tm.run(body, retries=retries,
                                                    backoff=backoff)
        if not committed:
            # evicted dirty values must not be lost: queue them again
            for kind, obj, value, slot in remote:
                if kind == "w" and slot is None:
                    self._flush_backlog.append((obj, value))
            self.stats.aborted += 1
            return False, outcome
        self._absorb_commit(remote, captured, local, start)
        self.stats.committed += 1
        self.stats.program_latencies.append(sim.now - start)
        return True, self._program_result(program, local)

    def drain(self, retries: int = 0, backoff: Optional[float] = None):
        """Generator: flush every pending dirty write in one transaction.

        Called when the client stops (write-back's flush-on-close).
        Returns True when there was nothing to flush or the flush
        committed.
        """
        pending = list(self._flush_backlog)
        self._flush_backlog = []
        if self.cache is not None:
            flushed = {obj for obj, _ in pending}
            pending.extend(item for item in self.cache.dirty_items()
                           if item[0] not in flushed)
        if not pending:
            return True

        def body(txn):
            for obj, value in pending:
                yield from txn.write(obj, value)
            return None

        committed, _ = yield from self.tm.run(body, retries=retries,
                                              backoff=backoff)
        if committed:
            self.stats.flush_writes += len(pending)
            if self.cache is not None:
                for obj, value in pending:
                    self.cache.mark_flushed(obj, value)
        else:
            self._flush_backlog = pending
        return committed

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _serve_read_locally(self, obj: str) -> Tuple[bool, Any]:
        now = self.sim.now
        if self.cache is not None:
            entry = self.cache.peek(obj)
            if entry is not None and entry.dirty:
                # read-your-writes beats everything, including leases:
                # the lease still holds the pre-write value
                self.cache.lookup(obj)
                self.stats.cache_reads += 1
                self.stats.read_latencies.append(0.0)
                return True, entry.value
        if self.lease_table is not None:
            lease = self.lease_table.serve(obj, now)
            if lease is not None:
                self.stats.lease_reads += 1
                self.stats.read_latencies.append(0.0)
                self.stats.staleness.append(now - lease.fetch_time)
                if self.auditor is not None:
                    self.auditor.on_lease_read(
                        time=now, pid=self.pid, obj=obj,
                        version=lease.version,
                        expires_at=lease.expires_at,
                        bound=self.staleness_bound,
                    )
                return True, lease.value
            # with leases on, a clean cache entry is not a freshness
            # authority — drop it along with the dead lease
            if self.cache is not None:
                self.cache.invalidate(obj)
            return False, None
        if self.cache is not None:
            entry = self.cache.lookup(obj)
            if entry is not None:
                self.stats.cache_reads += 1
                self.stats.read_latencies.append(0.0)
                return True, entry.value
        return False, None

    def _absorb_commit(self, remote, captured, local, start) -> None:
        """Fill cache and grant leases from a committed transaction."""
        ctx = captured["ctx"]
        values = captured["values"]
        now = self.sim.now
        for kind, obj, value, slot in remote:
            if kind == "r":
                read_value = values[slot]
                local[slot] = read_value
                self.stats.remote_reads += 1
                self.stats.read_latencies.append(now - start)
                version, fetch_time = ctx.read_versions.get(obj,
                                                            (None, now))
                if self.lease_table is not None:
                    lease = self.lease_table.grant(
                        obj, read_value, version, now,
                        fetch_time=fetch_time,
                    )
                    if lease is not None and self.auditor is not None:
                        self.auditor.on_lease_grant(
                            time=now, pid=self.pid, obj=obj,
                            version=version,
                            duration=self.lease_table.duration,
                            pi=self.config.pi,
                        )
                if self.cache is not None:
                    self._fill(obj, read_value)
            elif slot is None:
                self.stats.remote_writes += 1
                if self.cache is not None:
                    self.cache.mark_flushed(obj, value)
            else:
                self.stats.remote_writes += 1
                if self.cache is not None:
                    self._fill(obj, value)

    def _fill(self, obj: str, value: Any) -> None:
        """Clean cache fill; dirty evictions wait for the next txn."""
        for victim, pending in self.cache.put(obj, value):
            self._flush_backlog.append((victim, pending))

    @staticmethod
    def _program_result(program, local) -> Any:
        result = None
        for slot, (kind, _obj) in enumerate(program):
            if kind == "r" and slot in local:
                result = local[slot]
        return result

    def __repr__(self) -> str:
        return (f"ClientSession(p{self.pid}, cache={self.cache}, "
                f"leases={self.lease_table})")
