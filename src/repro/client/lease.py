"""Lease-based local reads with a provable staleness bound.

A processor grants its local clients a *lease* of duration ``L`` on an
object version it just read through the protocol.  While the lease is
valid, repeat reads of the object are served from the lease — zero
messages — and the value's staleness is provably bounded:

* the fetch itself is a protocol read, whose staleness the C6 result
  bounds by the liveness window ``Δ = π + 8δ`` (a committed write can
  be invisible to a reader only while partitions are converging, and
  convergence completes within Δ of stability);
* the lease serves that fetch for at most ``L`` more simulated time.

So a lease-served read at time ``t`` returns a version no older than
the newest version committed by ``t − (L + Δ)``.  The rule ``L ≤ π``
keeps the lease window inside one probe period: a partition change is
*noticed* within π, and the table revokes conservatively on any
membership event by capturing :attr:`ReplicaState.epoch` at grant time
and requiring equality at serve time (epoch bumps on every join,
depart, and crash — strictly more often than view changes).

Invalidation is the fast path: when this processor applies a commit
that wrote the object (it holds a copy, or coordinated the write), the
lease is dropped immediately, so in the common case staleness is far
below the bound.  The bound itself never depends on invalidation —
a processor outside the write's participant set simply lets the lease
expire.

The table is deliberately *local*: grants and serves touch no other
processor and schedule no simulation events, so a leases-off run is
event-for-event identical to one where the module doesn't exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional


@dataclass
class Lease:
    """One granted lease: a version pinned for a bounded window."""

    obj: str
    value: Any
    version: Any
    #: when the protocol read that produced the value was served
    fetch_time: float
    expires_at: float
    #: ReplicaState.epoch at grant; any membership event invalidates
    epoch: int


@dataclass
class LeaseStats:
    granted: int = 0
    served: int = 0
    #: serves refused because the lease aged out (now > expires_at)
    expired: int = 0
    #: serves refused because the partition changed under the lease
    revoked: int = 0
    #: leases dropped by a local write-commit apply
    invalidated: int = 0


class LeaseTable:
    """Per-processor lease state, shared by every session on that node."""

    def __init__(self, state, duration: float, pi: float):
        if duration <= 0:
            raise ValueError(f"lease duration must be positive: {duration}")
        if duration > pi:
            raise ValueError(
                f"lease duration {duration} exceeds the probe period "
                f"{pi}: the staleness derivation needs L <= pi"
            )
        self.state = state
        self.duration = duration
        self.pi = pi
        self.stats = LeaseStats()
        self._leases: Dict[str, Lease] = {}

    def __len__(self) -> int:
        return len(self._leases)

    def grant(self, obj: str, value: Any, version: Any, now: float,
              fetch_time: Optional[float] = None) -> Optional[Lease]:
        """Pin a freshly-read version for the next ``duration`` of time.

        Refused while unassigned: without a committed view there is no
        C6 window to anchor the bound to.
        """
        if not self.state.assigned:
            return None
        lease = Lease(
            obj=obj, value=value, version=version,
            fetch_time=now if fetch_time is None else fetch_time,
            expires_at=now + self.duration,
            epoch=self.state.epoch,
        )
        self._leases[obj] = lease
        self.stats.granted += 1
        return lease

    def serve(self, obj: str, now: float) -> Optional[Lease]:
        """The valid lease for ``obj``, or None (dropping a dead one)."""
        lease = self._leases.get(obj)
        if lease is None:
            return None
        if lease.epoch != self.state.epoch or not self.state.assigned:
            # conservative revocation: some membership event happened
            # since the grant, so the view (and the bound's anchor) may
            # have changed — refuse, even if the view came back equal
            del self._leases[obj]
            self.stats.revoked += 1
            return None
        if now > lease.expires_at:
            del self._leases[obj]
            self.stats.expired += 1
            return None
        self.stats.served += 1
        return lease

    def invalidate(self, obj: str) -> bool:
        """A write to ``obj`` committed here; drop the lease at once."""
        if self._leases.pop(obj, None) is not None:
            self.stats.invalidated += 1
            return True
        return False

    def __repr__(self) -> str:
        return (f"LeaseTable(L={self.duration}, pi={self.pi}, "
                f"leases={len(self._leases)})")
