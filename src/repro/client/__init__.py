"""The client/session tier: caching and lease-based local reads.

Everything in this package runs *above* the replica control protocol,
on the client's home processor, and costs zero network messages on the
local paths:

* :mod:`repro.client.cache` — per-client LRU cache, write-through or
  write-back (dirty bit, flush-on-evict);
* :mod:`repro.client.lease` — per-processor lease table with the
  C6-derived staleness bound (a lease of duration ``L ≤ π`` serves
  values no staler than ``L + Δ``, ``Δ = π + 8δ``);
* :mod:`repro.client.session` — the :class:`ClientSession` façade the
  workload driver runs programs through.

The tier is strictly opt-in: with the default
:class:`~repro.client.session.SessionSpec` (cache off, leases off)
every program is one protocol transaction and runs are event-for-event
identical to a build without this package.
"""

from .cache import (
    POLICIES,
    WRITE_BACK,
    WRITE_THROUGH,
    CacheEntry,
    CacheStats,
    SessionCache,
)
from .lease import Lease, LeaseStats, LeaseTable
from .session import ClientSession, SessionSpec, SessionStats

__all__ = [
    "CacheEntry",
    "CacheStats",
    "ClientSession",
    "Lease",
    "LeaseStats",
    "LeaseTable",
    "POLICIES",
    "SessionCache",
    "SessionSpec",
    "SessionStats",
    "WRITE_BACK",
    "WRITE_THROUGH",
]
