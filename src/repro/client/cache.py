"""A per-client LRU read cache with write-through/write-back policies.

The session tier sits *in front of* the replica control protocol: a hit
is served from client memory and costs zero network messages, which is
the whole point — the paper's C1 result makes protocol reads cheap
(read-one), and the cache makes repeat reads of a hot key free.

Two write policies, after the classic pair:

* ``write-through`` — every logical write rides the program's protocol
  transaction; the cache is refreshed with the committed value
  (flush-on-commit).
* ``write-back`` — a write only marks the cached entry dirty; the
  store is updated when the entry is evicted (flush-on-evict) or when
  the session drains.  Dirty entries are *pending local writes*, so
  invalidation never drops them and a dirty hit is a read-your-writes
  guarantee.

The cache itself is policy-free about freshness: a clean hit may be
stale.  Freshness is the lease table's business (see
:mod:`repro.client.lease`); when leases are on, the session only
serves clean entries under a valid lease.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

#: the two supported write policies
WRITE_THROUGH = "write-through"
WRITE_BACK = "write-back"
POLICIES = (WRITE_THROUGH, WRITE_BACK)


@dataclass
class CacheStats:
    """Counters the benchmark tables report per cell."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations: int = 0
    #: dirty entries shipped to the store (evict- or drain-triggered)
    flushes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class CacheEntry:
    value: Any
    dirty: bool = False


class SessionCache:
    """Bounded LRU map of object -> last value this client saw."""

    def __init__(self, capacity: int, policy: str = WRITE_THROUGH):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1: {capacity}")
        if policy not in POLICIES:
            raise ValueError(f"unknown cache policy {policy!r}; "
                             f"expected one of {POLICIES}")
        self.capacity = capacity
        self.policy = policy
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, obj: str) -> bool:
        return obj in self._entries

    def lookup(self, obj: str) -> Optional[CacheEntry]:
        """LRU-touching lookup; counts a hit or a miss."""
        entry = self._entries.get(obj)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(obj)
        self.stats.hits += 1
        return entry

    def peek(self, obj: str) -> Optional[CacheEntry]:
        """Lookup without touching LRU order or the counters."""
        return self._entries.get(obj)

    def put(self, obj: str, value: Any,
            dirty: bool = False) -> List[Tuple[str, Any]]:
        """Insert/overwrite an entry; returns evicted dirty writes.

        The caller owns flushing whatever comes back — the cache cannot
        run a transaction.  A dirty overwrite of a dirty entry simply
        supersedes the pending value (last write wins, one flush).
        """
        entry = self._entries.get(obj)
        if entry is not None:
            entry.value = value
            # a clean fill must not launder a pending write
            entry.dirty = entry.dirty or dirty
            self._entries.move_to_end(obj)
            return []
        self._entries[obj] = CacheEntry(value, dirty)
        flushes: List[Tuple[str, Any]] = []
        while len(self._entries) > self.capacity:
            victim, victim_entry = self._entries.popitem(last=False)
            self.stats.evictions += 1
            if victim_entry.dirty:
                self.stats.dirty_evictions += 1
                flushes.append((victim, victim_entry.value))
        return flushes

    def invalidate(self, obj: str) -> bool:
        """Drop a *clean* entry (a remote write committed elsewhere).

        Dirty entries survive: they are this client's own pending
        writes, and dropping one would lose data.  Returns True when an
        entry was dropped.
        """
        entry = self._entries.get(obj)
        if entry is None or entry.dirty:
            return False
        del self._entries[obj]
        self.stats.invalidations += 1
        return True

    def mark_flushed(self, obj: str, value: Any) -> None:
        """A dirty value reached the store; clean the entry if it still
        holds that exact value (a newer overwrite stays dirty)."""
        entry = self._entries.get(obj)
        if entry is not None and entry.dirty and entry.value == value:
            entry.dirty = False

    def dirty_items(self) -> List[Tuple[str, Any]]:
        """Pending writes, in LRU order (oldest first)."""
        return [(obj, entry.value) for obj, entry in self._entries.items()
                if entry.dirty]

    def __repr__(self) -> str:
        dirty = sum(1 for e in self._entries.values() if e.dirty)
        return (f"SessionCache({self.policy}, {len(self._entries)}"
                f"/{self.capacity}, dirty={dirty})")
