"""One-copy serializability (1SR) of the logical history.

The correctness criterion of the paper: the committed transactions must
behave as if executed serially against a *single-copy* database
[TGGL, BGb].  With exact version tokens on every read and write, this
reduces to: does some total order of the committed transactions replay
such that every logical read returns the version installed by the
latest preceding write (reads-own-writes included)?

Deciding this is NP-hard in general, so the checker is two-tier:

* **exact** — memoized depth-first search over transaction orders
  (replaying prefix states); complete for the tens of transactions the
  scenario tests and anomaly benchmarks produce;
* **witness** — for large histories, try the natural candidate orders
  first (commit-time order, and partition-creation order per Theorem
  1'); if one replays cleanly the history is 1SR.  If none does and
  the history is too large for the exact search, the result is
  *inconclusive* — reported as such rather than guessed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .history import INITIAL_VERSION, History, TxnRecord


class InconclusiveCheck(Exception):
    """The history was too large for the exact check and no candidate
    witness order replayed cleanly."""


@dataclass
class OneCopyResult:
    """Outcome of a 1SR check."""

    ok: Optional[bool]  # True / False / None (inconclusive)
    witness: Optional[List[Any]] = None  # a valid serial order, if ok
    violation: Optional[str] = None

    def __bool__(self) -> bool:
        return self.ok is True


def _replay(order: Sequence[TxnRecord]) -> Optional[str]:
    """Replay transactions serially; None if every read is consistent,
    else a description of the first violation."""
    state: Dict[str, Any] = {}
    for record in order:
        overlay: Dict[str, Any] = {}
        for op in record.logical_ops:
            if op.kind == "w":
                overlay[op.obj] = op.version
                continue
            expected = overlay.get(op.obj, state.get(op.obj, INITIAL_VERSION))
            if op.version != expected:
                return (f"txn {record.txn} read {op.obj}@{op.version} but a "
                        f"one-copy database would hold {expected}")
        state.update(overlay)
    return None


def _exact_search(records: List[TxnRecord]) -> Optional[List[Any]]:
    """Memoized DFS over orders; a valid order or None if none exists."""
    n = len(records)
    writes_of: List[Dict[str, Any]] = []
    for record in records:
        overlay: Dict[str, Any] = {}
        for op in record.logical_ops:
            if op.kind == "w":
                overlay[op.obj] = op.version
        writes_of.append(overlay)

    def readable(index: int, state: Dict[str, Any]) -> bool:
        overlay: Dict[str, Any] = {}
        for op in records[index].logical_ops:
            if op.kind == "w":
                overlay[op.obj] = op.version
            else:
                expected = overlay.get(
                    op.obj, state.get(op.obj, INITIAL_VERSION)
                )
                if op.version != expected:
                    return False
        return True

    failed: set[Tuple[frozenset, Tuple]] = set()

    def search(used: frozenset, state: Dict[str, Any],
               order: List[int]) -> Optional[List[int]]:
        if len(order) == n:
            return order
        key = (used, tuple(sorted(state.items())))
        if key in failed:
            return None
        for index in range(n):
            if index in used:
                continue
            if not readable(index, state):
                continue
            new_state = dict(state)
            new_state.update(writes_of[index])
            result = search(used | {index}, new_state, order + [index])
            if result is not None:
                return result
        failed.add(key)
        return None

    indices = search(frozenset(), {}, [])
    if indices is None:
        return None
    return [records[i].txn for i in indices]


def _candidate_orders(history: History,
                      records: List[TxnRecord]) -> List[List[TxnRecord]]:
    by_commit = sorted(records, key=lambda r: (r.end_time, r.begin_time))
    orders = [by_commit]
    # Theorem 1': an order consistent with partition creation order is a
    # natural witness for the virtual partitions protocol.
    def partition_key(record: TxnRecord):
        vpids = [v for v in record.vpids if v is not None]
        top = max(vpids) if vpids else None
        return ((0, top) if top is not None else (1, None),
                record.end_time)
    try:
        by_partition = sorted(records, key=partition_key)
        orders.append(by_partition)
    except TypeError:
        pass  # mixed incomparable vpid types: skip this candidate
    return orders


def check_one_copy(history: History, exact_limit: int = 14) -> OneCopyResult:
    """Full 1SR check with explicit three-valued outcome."""
    records = history.committed()
    if not records:
        return OneCopyResult(ok=True, witness=[])

    # Recoverability screen: reading a version written by a non-committed
    # transaction can never be 1SR.
    committed_ids = {r.txn for r in records}
    for record in records:
        for op in record.logical_ops:
            if op.kind != "r" or op.version == INITIAL_VERSION:
                continue
            writer = op.version[0] if isinstance(op.version, tuple) else None
            if writer is not None and writer != record.txn \
                    and writer not in committed_ids and writer != "T0":
                return OneCopyResult(
                    ok=False,
                    violation=(f"txn {record.txn} read {op.obj} from "
                               f"non-committed transaction {writer}"),
                )

    last_violation = None
    for order in _candidate_orders(history, records):
        violation = _replay(order)
        if violation is None:
            return OneCopyResult(ok=True, witness=[r.txn for r in order])
        last_violation = violation

    if len(records) <= exact_limit:
        witness = _exact_search(records)
        if witness is None:
            return OneCopyResult(ok=False, violation=last_violation)
        return OneCopyResult(ok=True, witness=witness)
    return OneCopyResult(ok=None, violation=last_violation)


def is_one_copy_serializable(history: History,
                             exact_limit: int = 14) -> bool:
    """Boolean form; raises :class:`InconclusiveCheck` when undecidable
    within the exact-search budget."""
    result = check_one_copy(history, exact_limit=exact_limit)
    if result.ok is None:
        raise InconclusiveCheck(result.violation or "history too large")
    return result.ok
