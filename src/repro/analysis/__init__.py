"""Execution analysis: histories, serializability and 1SR checkers."""

from .history import INITIAL_VERSION, History, LogicalOp, PhysicalOp, TxnRecord
from .metrics import (
    StaleRead,
    abort_stats,
    convergence_time,
    membership_timeline,
    operation_latencies,
    partition_lifetimes,
    stale_reads,
)
from .one_copy import (
    InconclusiveCheck,
    OneCopyResult,
    check_one_copy,
    is_one_copy_serializable,
)
from .serialization import (
    conflict_graph,
    find_cycle,
    is_cp_serializable,
    serial_order,
)

__all__ = [
    "History",
    "StaleRead",
    "abort_stats",
    "convergence_time",
    "membership_timeline",
    "operation_latencies",
    "partition_lifetimes",
    "stale_reads",
    "INITIAL_VERSION",
    "InconclusiveCheck",
    "LogicalOp",
    "OneCopyResult",
    "PhysicalOp",
    "TxnRecord",
    "check_one_copy",
    "conflict_graph",
    "find_cycle",
    "is_cp_serializable",
    "is_one_copy_serializable",
    "serial_order",
]
