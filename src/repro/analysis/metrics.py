"""Measurements over recorded histories.

Utilities the experiment reports are built from: convergence times
(E5), real-time staleness of reads (E8), abort statistics, and
partition-membership timelines.  All are pure functions of a
:class:`~repro.analysis.history.History`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .history import History


def convergence_time(history: History, after: float) -> Optional[float]:
    """Time from ``after`` until every processor that joined anything
    post-``after`` had joined the final (highest) partition.

    Returns None if no joins happened after ``after``.
    """
    joins = [(t, pid, vpid) for t, pid, vpid, _view in history.joins
             if t >= after]
    if not joins:
        return None
    final_id = max(vpid for _t, _pid, vpid in joins)
    last = max(t for t, _pid, vpid in joins if vpid == final_id)
    return last - after


def membership_timeline(history: History) -> List[Tuple[float, int, str, Any]]:
    """Chronological ``(time, pid, "join"|"depart", vpid)`` events."""
    events = [(t, pid, "join", vpid) for t, pid, vpid, _v in history.joins]
    events += [(t, pid, "depart", vpid) for t, pid, vpid in history.departs]
    events.sort(key=lambda e: (e[0], e[1], e[2]))
    return events


def partition_lifetimes(history: History) -> Dict[Any, Tuple[float, float]]:
    """Per partition: (first join time, last depart-or-end time)."""
    first_join: Dict[Any, float] = {}
    last_seen: Dict[Any, float] = {}
    for t, _pid, vpid, _v in history.joins:
        first_join.setdefault(vpid, t)
        last_seen[vpid] = max(last_seen.get(vpid, t), t)
    for t, _pid, vpid in history.departs:
        if vpid in first_join:
            last_seen[vpid] = max(last_seen.get(vpid, t), t)
    return {vpid: (first_join[vpid], last_seen[vpid]) for vpid in first_join}


@dataclass(frozen=True)
class StaleRead:
    """A committed read that returned a value already overwritten
    (in real time) by a committed write."""

    txn: Any
    obj: str
    read_time: float
    overwritten_at: float

    @property
    def staleness(self) -> float:
        return self.read_time - self.overwritten_at


def stale_reads(history: History) -> List[StaleRead]:
    """All committed reads of values that a committed write had already
    replaced (by commit time) when the read executed.

    These are not 1SR violations — the reader serializes before the
    writer — but they quantify §4's "reading out of date values".
    """
    committed = history.committed()
    committed_ids = {r.txn for r in committed}
    # per object: committed writes ordered by commit time
    writes_by_obj: Dict[str, List[Tuple[float, Any]]] = defaultdict(list)
    for record in committed:
        for op in record.logical_ops:
            if op.kind == "w":
                writes_by_obj[op.obj].append((record.end_time, op.version))
    for entries in writes_by_obj.values():
        entries.sort()

    results: List[StaleRead] = []
    for record in committed:
        for op in record.logical_ops:
            if op.kind != "r":
                continue
            versions = writes_by_obj.get(op.obj, [])
            # the earliest committed write of a DIFFERENT version that
            # committed before this read executed
            overwrite_time = None
            seen_own = False
            for commit_time, version in versions:
                if version == op.version:
                    seen_own = True
                    continue
                if seen_own and commit_time <= op.time:
                    overwrite_time = commit_time
                    break
                if not seen_own and version != op.version \
                        and commit_time <= op.time and op.version is not None:
                    # read returned an older (pre-history) version while
                    # a write had already landed
                    if _written_before(versions, op.version, version):
                        overwrite_time = commit_time
                        break
            if overwrite_time is not None:
                results.append(StaleRead(record.txn, op.obj, op.time,
                                         overwrite_time))
    return results


def _written_before(versions, older, newer) -> bool:
    order = [v for _t, v in versions]
    if older not in order:
        return True  # initial version predates all writes
    if newer not in order:
        return False
    return order.index(older) < order.index(newer)


def abort_stats(history: History) -> Dict[str, Any]:
    """Counts and top reasons of aborted transactions."""
    aborted = history.aborted()
    reasons: Dict[str, int] = defaultdict(int)
    for record in aborted:
        key = (record.abort_reason or "unknown").split(":")[0][:60]
        reasons[key] += 1
    total = len(aborted) + len(history.committed())
    return {
        "aborted": len(aborted),
        "committed": len(history.committed()),
        "abort_rate": len(aborted) / total if total else 0.0,
        "reasons": dict(sorted(reasons.items(), key=lambda kv: -kv[1])),
    }


def operation_latencies(history: History) -> Dict[str, List[float]]:
    """Committed transaction durations, grouped by read-only vs update."""
    out: Dict[str, List[float]] = {"read-only": [], "update": []}
    for record in history.committed():
        duration = (record.end_time or record.begin_time) - record.begin_time
        kind = "update" if record.write_set else "read-only"
        out[kind].append(duration)
    return out
