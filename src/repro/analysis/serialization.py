"""Conflict-preserving (CP) serializability of the physical history.

Two physical operations conflict when they touch the same copy and at
least one writes (§4).  Operations on one copy are totally ordered
(§3), so the conflict order is the per-copy record order.  The history
is CP-serializable iff the conflict graph over *committed* transactions
is acyclic [H] — this checks assumption A1 actually held in a run.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Set, Tuple

from .history import History


def conflict_graph(history: History) -> Dict[Any, Set[Any]]:
    """Edges ``t1 -> t2``: a committed t1 op conflicts with and precedes
    a committed t2 op on some copy."""
    committed = {r.txn for r in history.committed()}
    edges: Dict[Any, Set[Any]] = defaultdict(set)
    for txn in committed:
        edges[txn]  # ensure every committed txn appears as a node
    by_copy: Dict[Tuple[str, int], List] = defaultdict(list)
    for op in history.physical_ops:
        if op.txn in committed:
            by_copy[(op.obj, op.copy_pid)].append(op)
    for ops in by_copy.values():
        # Execution order on a copy = time order; the stable sort keeps
        # record order for simultaneous operations.
        ops.sort(key=lambda op: op.time)
        for i, earlier in enumerate(ops):
            for later in ops[i + 1:]:
                if earlier.txn != later.txn and (
                        earlier.kind == "w" or later.kind == "w"):
                    edges[earlier.txn].add(later.txn)
    return dict(edges)


def find_cycle(edges: Dict[Any, Set[Any]]) -> List[Any] | None:
    """A cycle in the graph as a node list, or None if acyclic."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in edges}
    parent: Dict[Any, Any] = {}

    for root in edges:
        if color[root] != WHITE:
            continue
        stack = [(root, iter(sorted(edges[root], key=repr)))]
        color[root] = GREY
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if child not in color:
                    continue
                if color[child] == WHITE:
                    color[child] = GREY
                    parent[child] = node
                    stack.append((child, iter(sorted(edges[child], key=repr))))
                    advanced = True
                    break
                if color[child] == GREY:
                    cycle = [child, node]
                    walker = node
                    while walker != child:
                        walker = parent[walker]
                        cycle.append(walker)
                    cycle.reverse()
                    return cycle
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None


def is_cp_serializable(history: History) -> bool:
    """True iff the committed conflict graph is acyclic."""
    return find_cycle(conflict_graph(history)) is None


def serial_order(history: History) -> List[Any]:
    """A topological order of the conflict graph (an equivalent serial
    execution); raises ``ValueError`` if the history is not serializable."""
    edges = conflict_graph(history)
    indegree: Dict[Any, int] = {node: 0 for node in edges}
    for sources in edges.values():
        for target in sources:
            indegree[target] += 1
    ready = sorted((node for node, deg in indegree.items() if deg == 0),
                   key=repr)
    order: List[Any] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for target in sorted(edges[node], key=repr):
            indegree[target] -= 1
            if indegree[target] == 0:
                ready.append(target)
        ready.sort(key=repr)
    if len(order) != len(edges):
        raise ValueError("history is not CP-serializable (conflict cycle)")
    return order
