"""Execution histories: everything the correctness checkers need.

A :class:`History` records, with timestamps from the simulated clock:

* transaction lifecycle (begin / commit / abort),
* logical operations (what the transaction asked for),
* physical operations (which copy was touched, in which virtual
  partition — the conflict order on a copy is its record order, since
  operations on one physical object are totally ordered, §3),
* join/depart events of the virtual partition protocol (needed to audit
  properties S1–S3).

Reads and writes carry *version tokens*: each logical write is tagged
with a unique token, physical copies remember the token of the write
they hold, and reads report the token they returned.  This makes the
reads-from relation exact even when applications write equal values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: token representing the initial database state (a virtual writer T0)
INITIAL_VERSION = ("T0", 0)


@dataclass(frozen=True)
class PhysicalOp:
    """One read or write on one physical copy."""

    time: float
    txn: Any
    kind: str  # "r" or "w"
    obj: str
    copy_pid: int
    value: Any
    version: Any
    vpid: Any

    def conflicts_with(self, other: "PhysicalOp") -> bool:
        """Same copy, at least one write, different transactions."""
        return (self.obj == other.obj
                and self.copy_pid == other.copy_pid
                and self.txn != other.txn
                and ("w" in (self.kind, other.kind)))


@dataclass(frozen=True)
class LogicalOp:
    """One logical read or write as issued by a transaction."""

    time: float
    txn: Any
    kind: str  # "r" or "w"
    obj: str
    value: Any
    version: Any


@dataclass
class TxnRecord:
    """Everything known about one transaction."""

    txn: Any
    origin: int
    begin_time: float
    status: str = "active"  # active | committed | aborted
    end_time: Optional[float] = None
    abort_reason: Optional[str] = None
    logical_ops: List[LogicalOp] = field(default_factory=list)
    physical_ops: List[PhysicalOp] = field(default_factory=list)
    vpids: set = field(default_factory=set)

    @property
    def read_set(self) -> set[str]:
        return {op.obj for op in self.logical_ops if op.kind == "r"}

    @property
    def write_set(self) -> set[str]:
        return {op.obj for op in self.logical_ops if op.kind == "w"}


class History:
    """Global, append-only record of one simulation run."""

    def __init__(self):
        self.physical_ops: List[PhysicalOp] = []
        self.logical_ops: List[LogicalOp] = []
        self.txns: Dict[Any, TxnRecord] = {}
        self.joins: List[tuple] = []    # (time, pid, vpid, frozenset(view))
        self.departs: List[tuple] = []  # (time, pid, vpid)
        self.recoveries: List[tuple] = []  # (time, pid, obj, vpid)
        #: optional runtime :class:`~repro.audit.InvariantAuditor`; the
        #: join/depart stream is its view-protocol event source
        self.auditor = None

    # -- transactions ------------------------------------------------------------

    def begin_txn(self, txn: Any, origin: int, time: float) -> TxnRecord:
        if txn in self.txns:
            raise KeyError(f"transaction {txn} already begun")
        record = TxnRecord(txn=txn, origin=origin, begin_time=time)
        self.txns[txn] = record
        return record

    def commit_txn(self, txn: Any, time: float) -> None:
        record = self._txn(txn)
        if record.status != "active":
            raise ValueError(f"transaction {txn} is {record.status}")
        record.status = "committed"
        record.end_time = time

    def abort_txn(self, txn: Any, time: float, reason: str = "") -> None:
        record = self._txn(txn)
        if record.status != "active":
            raise ValueError(f"transaction {txn} is {record.status}")
        record.status = "aborted"
        record.end_time = time
        record.abort_reason = reason

    def finish_txn_once(self, txn: Any, status: str, time: float,
                        reason: str = "") -> bool:
        """Finalize ``txn`` if (and only if) it is still active.

        First finalization wins; later calls are no-ops.  This is the
        race-tolerant form non-blocking commit needs: with Paxos Commit
        a recovery leader may decide (and close) a transaction whose
        coordinator is dead or slow — when the coordinator's own client
        path catches up, its finalization must quietly stand down
        (consensus guarantees both sides carry the same outcome).
        Returns True when this call closed the record.
        """
        if status not in ("committed", "aborted"):
            raise ValueError(f"unknown final status {status!r}")
        record = self._txn(txn)
        if record.status != "active":
            return False
        record.status = status
        record.end_time = time
        if status == "aborted":
            record.abort_reason = reason
        return True

    # -- operations ------------------------------------------------------------

    def record_physical(self, *, time: float, txn: Any, kind: str, obj: str,
                        copy_pid: int, value: Any, version: Any,
                        vpid: Any) -> None:
        if kind not in ("r", "w"):
            raise ValueError(f"kind must be 'r' or 'w', got {kind!r}")
        op = PhysicalOp(time, txn, kind, obj, copy_pid, value, version, vpid)
        self.physical_ops.append(op)
        if txn in self.txns:
            self.txns[txn].physical_ops.append(op)
            self.txns[txn].vpids.add(vpid)

    def record_logical(self, *, time: float, txn: Any, kind: str, obj: str,
                       value: Any, version: Any) -> None:
        if kind not in ("r", "w"):
            raise ValueError(f"kind must be 'r' or 'w', got {kind!r}")
        op = LogicalOp(time, txn, kind, obj, value, version)
        self.logical_ops.append(op)
        if txn in self.txns:
            self.txns[txn].logical_ops.append(op)

    def record_join(self, *, time: float, pid: int, vpid: Any,
                    view: Iterable[int]) -> None:
        frozen = frozenset(view)
        self.joins.append((time, pid, vpid, frozen))
        if self.auditor is not None:
            self.auditor.on_join(time=time, pid=pid, vpid=vpid, view=frozen)

    def record_depart(self, *, time: float, pid: int, vpid: Any) -> None:
        self.departs.append((time, pid, vpid))
        if self.auditor is not None:
            self.auditor.on_depart(time=time, pid=pid, vpid=vpid)

    def record_recovery(self, *, time: float, pid: int, obj: str,
                        vpid: Any) -> None:
        """A copy was brought up to date by Update-Copies (R5)."""
        self.recoveries.append((time, pid, obj, vpid))

    # -- queries ------------------------------------------------------------

    def committed(self) -> List[TxnRecord]:
        """Committed transactions in begin order."""
        records = [r for r in self.txns.values() if r.status == "committed"]
        return sorted(records, key=lambda r: r.begin_time)

    def aborted(self) -> List[TxnRecord]:
        records = [r for r in self.txns.values() if r.status == "aborted"]
        return sorted(records, key=lambda r: r.begin_time)

    def active(self) -> List[TxnRecord]:
        records = [r for r in self.txns.values() if r.status == "active"]
        return sorted(records, key=lambda r: r.begin_time)

    def ops_on_copy(self, obj: str, copy_pid: int) -> List[PhysicalOp]:
        """Operations on one physical copy, in execution (= record) order."""
        return [op for op in self.physical_ops
                if op.obj == obj and op.copy_pid == copy_pid]

    def partitions_seen(self) -> List[Any]:
        """All vpids occurring in joins, in creation (≺) order."""
        return sorted({vpid for _, _, vpid, _ in self.joins})

    def view_of(self, vpid: Any):
        """The committed view of partition ``vpid`` (S1 makes it unique)."""
        views = {view for _, _, v, view in self.joins if v == vpid}
        if not views:
            raise KeyError(f"no join recorded for {vpid}")
        if len(views) > 1:
            raise AssertionError(
                f"S1 violated in recorded history: {vpid} has views {views}"
            )
        return next(iter(views))

    def members_of(self, vpid: Any) -> set[int]:
        """``members(v)``: processors ever assigned to ``vpid``."""
        return {pid for _, pid, v, _ in self.joins if v == vpid}

    def _txn(self, txn: Any) -> TxnRecord:
        try:
            return self.txns[txn]
        except KeyError:
            raise KeyError(f"unknown transaction {txn}") from None

    def __repr__(self) -> str:
        return (f"History(txns={len(self.txns)}, "
                f"physical={len(self.physical_ops)}, joins={len(self.joins)})")
