"""The common replica control interface.

Every protocol (the paper's virtual partitions protocol and all
baselines) plugs into the same transaction layer through this
interface, so the benchmark harness can swap protocols while keeping
workload, failures, and concurrency control identical — the paired
comparison the paper's cost claims call for.

Logical operations are *generators* (simulation processes use
``yield from``).  ``ctx`` is the transaction context supplied by the
transaction manager; protocols record participants and partition ids
into it so commit-time validation (rule R4 and its weakened variant)
can run.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List


@dataclass
class ProtocolMetrics:
    """Per-processor counters every protocol maintains."""

    logical_reads: int = 0
    logical_writes: int = 0
    physical_read_rpcs: int = 0
    physical_write_rpcs: int = 0
    #: reads issued only to learn version numbers (quorum writes)
    version_collect_rpcs: int = 0
    local_reads: int = 0
    read_aborts: int = 0
    write_aborts: int = 0
    vp_created: int = 0
    vp_joined: int = 0
    recoveries: int = 0
    transfer_units: int = 0
    #: §6 log catch-ups that fell back to a full-object transfer
    #: because the source had compacted past the requester's date
    catchup_fallbacks: int = 0
    #: coordinator decision-log entries retired from memory once their
    #: decide fan-out left (the WAL record stays for crash replay)
    decisions_retired: int = 0
    #: copies installed on this processor by the reshard engine
    reshard_installs: int = 0
    #: copies retired from this processor after a reshard flip
    reshard_retires: int = 0
    by_reason: Dict[str, int] = field(default_factory=dict)
    #: per-resolution in-doubt dwell times (prepared -> resolved, in
    #: sim time): the commit protocol's blocking window, measured
    in_doubt_dwell: List[float] = field(default_factory=list)

    def abort(self, kind: str, reason: str) -> None:
        if kind == "r":
            self.read_aborts += 1
        else:
            self.write_aborts += 1
        self.by_reason[reason] = self.by_reason.get(reason, 0) + 1

    def merge(self, other: "ProtocolMetrics") -> "ProtocolMetrics":
        """Aggregate counters across processors (for run-level reports).

        Field-generic on purpose: a counter added to the dataclass is
        aggregated automatically instead of silently dropped (pinned by
        ``tests/protocols/test_base_metrics.py``).  Numeric fields add;
        dict-valued fields merge key-wise.
        """
        merged = ProtocolMetrics()
        for spec in fields(self):
            mine = getattr(self, spec.name)
            theirs = getattr(other, spec.name)
            if isinstance(mine, dict):
                combined = dict(mine)
                for key, amount in theirs.items():
                    combined[key] = combined.get(key, 0) + amount
                setattr(merged, spec.name, combined)
            else:
                setattr(merged, spec.name, mine + theirs)
        return merged


class ReplicaControlProtocol(ABC):
    """One instance runs on each processor."""

    #: short identifier used in benchmark tables
    name: str = "abstract"

    #: per-processor :class:`~repro.client.lease.LeaseTable`; installed
    #: by the first leased :class:`~repro.client.session.ClientSession`
    #: on this processor, None otherwise (the default — no lease code
    #: runs on any protocol path)
    lease_table = None

    @abstractmethod
    def attach(self) -> None:
        """Register server tasks and crash/recover hooks on the processor.

        Called exactly once, before the simulation starts.
        """

    @abstractmethod
    def logical_read(self, obj: str, ctx: Any):
        """Generator implementing a logical read; returns the value.

        Raises :class:`~repro.core.errors.AccessAborted` when the read
        cannot be performed.
        """

    @abstractmethod
    def logical_write(self, obj: str, value: Any, ctx: Any):
        """Generator implementing a logical write.

        Raises :class:`~repro.core.errors.AccessAborted` on failure.
        """

    @abstractmethod
    def prepare_commit(self, ctx: Any):
        """Generator: validate that ``ctx``'s transaction may commit.

        Raises :class:`~repro.core.errors.TransactionAborted` if not
        (e.g. rule R4: a participant joined another partition).
        """

    @abstractmethod
    def end_transaction(self, ctx: Any, outcome: str):
        """Generator: release locks / apply decision at all participants.

        ``outcome`` is ``"commit"`` or ``"abort"``.
        """

    @abstractmethod
    def available(self, obj: str, write: bool) -> bool:
        """Can this processor *currently* perform the given logical access?

        A pure predicate used by the availability benchmarks; must not
        send messages.
        """
