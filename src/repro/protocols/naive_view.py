"""The §4 "clean-environment" rules *without* virtual partitions.

This is the strawman the paper derives its protocol from: every
processor keeps a private view of whom it can reach, gates accesses by
a weighted majority over that view (rule A-style R1), reads the nearest
in-view copy, and writes all in-view copies.  Under assumptions A2
(transitive connectivity) and A3 (instant, consistent view updates) it
is correct — and both assumptions are unrealistic:

* with a **non-transitive** graph (Fig. 1), two processors with
  overlapping majorities update through a common copy and lose updates
  (Example 1);
* with **asynchronous view updates** (Fig. 2, Tables 1–2), stale views
  let four transactions run on purely local copies (Example 2).

The scenario tests and ``benchmarks/bench_example1.py`` /
``bench_example2.py`` run this protocol under exactly those failure
timings and show the checker rejecting the executions as non-1SR,
while the virtual partitions protocol under identical timing stays
correct.

Views refresh from the live communication graph every ``pi`` time
units (modelling per-processor failure detectors with independent
timing); tests may also set views directly to pin down the paper's
exact interleavings.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..core.errors import AccessAborted
from .base import ReplicaControlProtocol
from .common import BaselineServerMixin


class NaiveViewProtocol(BaselineServerMixin, ReplicaControlProtocol):
    """Majority/read-one/write-all over unsynchronized local views."""

    name = "naive-view"

    def __init__(self, processor, placement, config, history, latency,
                 all_pids: Iterable[int]):
        self.processor = processor
        self.pid = processor.pid
        self.sim = processor.sim
        self.placement = placement
        self.config = config
        self.history = history
        self.all_pids = frozenset(all_pids)
        self._latency = latency
        self.view: set[int] = set(all_pids)
        #: pause automatic refreshing (scenario tests drive views by hand)
        self.auto_refresh = True
        self._init_server()

    def attach(self) -> None:
        self._attach_server()
        self.processor.add_task("refresh-view", self._refresh_loop)

    # ------------------------------------------------------------------
    # view maintenance: A3 approximated by periodic perfect detection
    # ------------------------------------------------------------------

    def _refresh_loop(self):
        graph = self.processor.network.graph
        while True:
            yield self.sim.timeout(self.config.pi)
            if self.auto_refresh:
                self.refresh_view()

    def refresh_view(self) -> None:
        """Adopt the closed neighbourhood in the *current* graph.

        This is assumption A3 taken literally — each processor's view
        is exactly itself plus its graph neighbours — which is where
        Example 1's anomaly comes from when the graph is not transitive.
        """
        graph = self.processor.network.graph
        self.view = {self.pid} | graph.neighbors(self.pid)

    def set_view(self, view: Iterable[int]) -> None:
        """Scenario hook: impose a (possibly stale) view directly."""
        self.view = set(view)

    # ------------------------------------------------------------------
    # logical operations
    # ------------------------------------------------------------------

    def logical_read(self, obj: str, ctx):
        self.metrics.logical_reads += 1
        if not self.placement.accessible(obj, self.view):
            self.metrics.abort("r", "inaccessible")
            raise AccessAborted(obj, "inaccessible")
        candidates = self.placement.holders_by_distance(
            obj, self.view, lambda q: self._latency.distance(self.pid, q)
        )
        last_reason = "no-copy-in-view"
        for server in candidates:
            self.metrics.physical_read_rpcs += 1
            if server == self.pid:
                self.metrics.local_reads += 1
            results = yield from self._fanout(
                "read", [server],
                lambda _s: {"obj": obj, "txn": ctx.txn_id,
                            "ts": ctx.timestamp})
            payload = results[server]
            if payload is None:
                last_reason = "no-response"
                continue
            if payload["ok"]:
                self.history.record_logical(
                    time=self.sim.now, txn=ctx.txn_id, kind="r", obj=obj,
                    value=payload["value"], version=payload["version"],
                )
                ctx.note_access("r", obj, server, None)
                return payload["value"]
            last_reason = payload["reason"]
            break
        self.metrics.abort("r", last_reason)
        raise AccessAborted(obj, last_reason)

    def logical_write(self, obj: str, value: Any, ctx):
        self.metrics.logical_writes += 1
        if not self.placement.accessible(obj, self.view):
            self.metrics.abort("w", "inaccessible")
            raise AccessAborted(obj, "inaccessible")
        targets = sorted(self.placement.copies(obj) & self.view)
        version = ctx.next_version()
        self.metrics.physical_write_rpcs += len(targets)
        results = yield from self._fanout(
            "write", targets,
            lambda _s: {"obj": obj, "value": value, "txn": ctx.txn_id,
                        "ts": ctx.timestamp, "version": version,
                        "date": None})
        failures = {s: p for s, p in results.items()
                    if p is None or not p["ok"]}
        for server, payload in results.items():
            if payload is not None and payload.get("ok"):
                ctx.note_access("w", obj, server, None)
        if failures:
            reason = next(
                (p["reason"] for p in failures.values() if p is not None),
                "no-response",
            )
            ctx.poison(f"write {obj!r} failed at {sorted(failures)}: {reason}")
            self.metrics.abort("w", reason)
            raise AccessAborted(obj, reason)
        self.history.record_logical(
            time=self.sim.now, txn=ctx.txn_id, kind="w", obj=obj,
            value=value, version=version,
        )
        return None

    def available(self, obj: str, write: bool) -> bool:
        return self.placement.accessible(obj, self.view)
