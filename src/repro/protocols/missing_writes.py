"""The "missing writes" scheme of Eager & Sevcik [ES] (approximation).

Behavioural model (what the paper's comparison needs):

* **normal mode** — read-one / write-all, like the virtual partitions
  protocol without views;
* a write that cannot reach every copy still succeeds if it reaches a
  weighted majority, but the unreached copies become **missing-write**
  entries, and that fact is broadcast (the "extra logging of
  transaction information" the paper contrasts itself against —
  counted in ``metrics.transfer_units``);
* **failure mode** — while an object has missing writes, reads must
  assemble a majority and take the highest version, because a single
  copy can no longer be trusted;
* a background task pushes the missed values to the lagging copies and
  broadcasts the all-clear, returning the object to normal mode.

Faithfulness note (also in DESIGN.md): the original protocol threads
missing-write lists through transactions; broadcasting them gives the
same *access-cost profile* — one-copy reads when healthy, majority
reads plus logging after failures — which is all the paper's cost
claims (E3/E9) compare against.  There is a window of one message
delay during which a normal-mode read can miss a concurrent
failure-mode write; the scenario tests for this protocol avoid relying
on that window.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Set

from ..core.errors import AccessAborted
from .quorum import QuorumProtocol


class MissingWritesProtocol(QuorumProtocol):
    """ROWA when healthy; majority reads + logging once writes go missing."""

    name = "missing-writes"

    def __init__(self, processor, placement, config, history, latency,
                 all_pids: Iterable[int]):
        super().__init__(processor, placement, config, history, latency,
                         all_pids)
        #: object -> copies known to have missed writes
        self._missing: Dict[str, Set[int]] = {}
        #: last version number seen per object (normal-mode write base)
        self._last_seen: Dict[str, int] = {}

    def attach(self) -> None:
        super().attach()
        self.processor.add_task("mw-notes", self._serve_notes)
        self.processor.add_task("mw-repair", self._repair_loop)

    # ------------------------------------------------------------------
    # logical operations
    # ------------------------------------------------------------------

    def logical_read(self, obj: str, ctx):
        if self._missing.get(obj):
            # failure mode: fall back to a majority read
            value = yield from super().logical_read(obj, ctx)
            return value
        self.metrics.logical_reads += 1
        candidates = self.placement.holders_by_distance(
            obj, self.placement.copies(obj),
            lambda q: self._latency.distance(self.pid, q),
        )
        last_reason = "no-copy"
        for server in candidates:
            self.metrics.physical_read_rpcs += 1
            if server == self.pid:
                self.metrics.local_reads += 1
            results = yield from self._fanout(
                "read", [server],
                lambda _s: {"obj": obj, "txn": ctx.txn_id,
                            "ts": ctx.timestamp})
            payload = results[server]
            if payload is None:
                last_reason = "no-response"
                continue
            if payload["ok"]:
                ctx.note_access("r", obj, server, None)
                self._last_seen[obj] = max(
                    self._last_seen.get(obj, 0), payload["date"] or 0)
                self._version_cache.setdefault(ctx.txn_id, {})[obj] = (
                    payload["date"] or 0)
                self.history.record_logical(
                    time=self.sim.now, txn=ctx.txn_id, kind="r", obj=obj,
                    value=payload["value"], version=payload["version"],
                )
                return payload["value"]
            last_reason = payload["reason"]
            break
        self.metrics.abort("r", last_reason)
        raise AccessAborted(obj, last_reason)

    def logical_write(self, obj: str, value: Any, ctx):
        self.metrics.logical_writes += 1
        targets = sorted(self.placement.copies(obj))
        new_number = max(
            self._last_seen.get(obj, 0),
            self._version_cache.get(ctx.txn_id, {}).get(obj, 0),
        ) + 1
        version = ctx.next_version()
        self.metrics.physical_write_rpcs += len(targets)
        results = yield from self._fanout(
            "write", targets,
            lambda _s: {"obj": obj, "value": value, "txn": ctx.txn_id,
                        "ts": ctx.timestamp, "version": version,
                        "date": new_number})
        reached = {s for s, p in results.items()
                   if p is not None and p.get("ok")}
        missed = set(targets) - reached
        reached_weight = sum(self.placement.weight(obj, s) for s in reached)
        if 2 * reached_weight <= self.placement.total_weight(obj):
            ctx.poison(f"write {obj!r}: no majority reached")
            self.metrics.abort("w", "no-majority")
            raise AccessAborted(obj, "no-majority")
        for server in reached:
            ctx.note_access("w", obj, server, None)
        self._last_seen[obj] = new_number
        self._version_cache.setdefault(ctx.txn_id, {})[obj] = new_number
        if missed:
            self._note_missing(obj, missed, broadcast=True)
        self.history.record_logical(
            time=self.sim.now, txn=ctx.txn_id, kind="w", obj=obj,
            value=value, version=version,
        )
        return None

    def available(self, obj: str, write: bool) -> bool:
        graph = self.processor.network.graph
        reachable = sum(
            self.placement.weight(obj, q)
            for q in self.placement.copies(obj)
            if graph.has_edge(self.pid, q)
        )
        total = self.placement.total_weight(obj)
        if write:
            return 2 * reachable > total
        if self._missing.get(obj):
            return 2 * reachable > total
        return reachable > 0

    # ------------------------------------------------------------------
    # missing-write bookkeeping
    # ------------------------------------------------------------------

    def _note_missing(self, obj: str, copies: Set[int],
                      broadcast: bool) -> None:
        entry = self._missing.setdefault(obj, set())
        fresh = copies - entry
        entry |= copies
        # "extra logging of transaction information" [ES]: one log
        # record per missing copy, counted as transfer cost.
        self.metrics.transfer_units += len(fresh)
        if broadcast and fresh:
            for pid in sorted(self.all_pids - {self.pid}):
                self.processor.send(pid, "mw-note", {
                    "obj": obj, "missing": sorted(entry), "clear": False,
                })

    def _serve_notes(self):
        box = self.processor.mailbox("mw-note")
        while True:
            message = yield box.get()
            obj = message.payload["obj"]
            if message.payload["clear"]:
                self._missing.pop(obj, None)
            else:
                self._note_missing(obj, set(message.payload["missing"]),
                                   broadcast=False)

    def _repair_loop(self):
        """Push missed values to lagging copies; broadcast the all-clear."""
        while True:
            yield self.sim.timeout(self.config.pi)
            for obj in sorted(self._missing):
                yield from self._repair_object(obj)

    def _repair_object(self, obj: str):
        lagging = sorted(self._missing.get(obj, ()))
        if not lagging:
            return
        good = [
            p for p in self.placement.holders_by_distance(
                obj, self.placement.copies(obj),
                lambda q: self._latency.distance(self.pid, q))
            if p not in lagging
        ]
        if not good:
            return
        repair_txn = ("mw-repair", self.pid, int(self.sim.now * 1000))
        repair_ts = (self.sim.now, self.pid, 10**9)
        results = yield from self._fanout(
            "read", good[:1],
            lambda _s: {"obj": obj, "txn": repair_txn, "ts": repair_ts})
        payload = results[good[0]]
        if payload is None or not payload["ok"]:
            return
        self.processor.send(good[0], "release",
                            {"txn": repair_txn, "outcome": "commit"})
        pushes = yield from self._fanout(
            "write", lagging,
            lambda _s: {"obj": obj, "value": payload["value"],
                        "txn": repair_txn, "ts": repair_ts,
                        "version": payload["version"],
                        "date": payload["date"]})
        healed = {s for s, p in pushes.items()
                  if p is not None and p.get("ok")}
        self.metrics.transfer_units += len(healed)
        for server in healed:
            self.processor.send(server, "release",
                                {"txn": repair_txn, "outcome": "commit"})
        still = self._missing.get(obj, set()) - healed
        if still:
            self._missing[obj] = still
            return
        self._missing.pop(obj, None)
        for pid in sorted(self.all_pids - {self.pid}):
            self.processor.send(pid, "mw-note",
                                {"obj": obj, "missing": [], "clear": True})
