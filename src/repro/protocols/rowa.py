"""Read-one / write-ALL: the zero-fault-tolerance baseline.

Reads touch one copy (the nearest responsive one), so read cost matches
the paper's protocol — but a logical write must reach *every* copy, so
a single crashed or partitioned-away copy holder blocks all writes.
ROWA anchors the availability comparison (benchmark E4): it shows what
the majority rule buys.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..core.errors import AccessAborted
from .base import ReplicaControlProtocol
from .common import BaselineServerMixin


class RowaProtocol(BaselineServerMixin, ReplicaControlProtocol):
    """Read any copy; write all copies or abort."""

    name = "rowa"

    def __init__(self, processor, placement, config, history, latency,
                 all_pids: Iterable[int]):
        self.processor = processor
        self.pid = processor.pid
        self.sim = processor.sim
        self.placement = placement
        self.config = config
        self.history = history
        self.all_pids = frozenset(all_pids)
        self._latency = latency
        self._init_server()

    def attach(self) -> None:
        self._attach_server()

    def logical_read(self, obj: str, ctx):
        """Try copies nearest-first until one answers."""
        self.metrics.logical_reads += 1
        candidates = self.placement.holders_by_distance(
            obj, self.placement.copies(obj),
            lambda q: self._latency.distance(self.pid, q),
        )
        last_reason = "no-copy"
        for server in candidates:
            self.metrics.physical_read_rpcs += 1
            if server == self.pid:
                self.metrics.local_reads += 1
            results = yield from self._fanout(
                "read", [server],
                lambda _s: {"obj": obj, "txn": ctx.txn_id,
                            "ts": ctx.timestamp})
            payload = results[server]
            if payload is None:
                last_reason = "no-response"
                continue
            if payload["ok"]:
                self.history.record_logical(
                    time=self.sim.now, txn=ctx.txn_id, kind="r", obj=obj,
                    value=payload["value"], version=payload["version"],
                )
                ctx.note_access("r", obj, server, None)
                return payload["value"]
            last_reason = payload["reason"]
            break
        self.metrics.abort("r", last_reason)
        raise AccessAborted(obj, last_reason)

    def logical_write(self, obj: str, value: Any, ctx):
        """Every copy must acknowledge, or the write (and txn) aborts."""
        self.metrics.logical_writes += 1
        targets = sorted(self.placement.copies(obj))
        version = ctx.next_version()
        self.metrics.physical_write_rpcs += len(targets)
        results = yield from self._fanout(
            "write", targets,
            lambda _s: {"obj": obj, "value": value, "txn": ctx.txn_id,
                        "ts": ctx.timestamp, "version": version,
                        "date": None})
        failures = {s: p for s, p in results.items()
                    if p is None or not p["ok"]}
        for server, payload in results.items():
            if payload is not None and payload.get("ok"):
                ctx.note_access("w", obj, server, None)
        if failures:
            reason = next(
                (p["reason"] for p in failures.values() if p is not None),
                "no-response",
            )
            ctx.poison(f"write {obj!r} failed at {sorted(failures)}: {reason}")
            self.metrics.abort("w", reason)
            raise AccessAborted(obj, reason)
        self.history.record_logical(
            time=self.sim.now, txn=ctx.txn_id, kind="w", obj=obj,
            value=value, version=version,
        )
        return None

    def available(self, obj: str, write: bool) -> bool:
        """Omniscient availability (graph reachability), for benchmarks."""
        graph = self.processor.network.graph
        holders = self.placement.copies(obj)
        reachable = {q for q in holders if graph.has_edge(self.pid, q)}
        if write:
            return reachable == holders
        return bool(reachable)
