"""Gifford's weighted voting (quorum consensus) [G].

Every copy carries votes (its weight) and a version number.  A logical
read must assemble a *read quorum* of at least ``r`` votes and returns
the value of the highest-versioned copy in it; a logical write
assembles a *write quorum* of at least ``w`` votes and installs the
value with version ``highest + 1``.  With ``r + w > total`` every read
quorum intersects every write quorum, and with ``2w > total`` two
writes conflict somewhere — together with 2PL that yields 1SR.

Cost profile (what benchmark E3 measures): a read touches an entire
quorum — typically a weighted majority — where the paper's protocol
touches exactly one copy.  This is the protocol the paper names when
claiming fewer accesses "assuming that read requests outnumber write
requests and that fault occurrences are rare".
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from ..core.errors import AccessAborted
from .base import ReplicaControlProtocol
from .common import BaselineServerMixin


class QuorumProtocol(BaselineServerMixin, ReplicaControlProtocol):
    """Weighted read/write quorums with per-copy version numbers."""

    name = "quorum"

    def __init__(self, processor, placement, config, history, latency,
                 all_pids: Iterable[int],
                 read_quorum: Optional[int] = None,
                 write_quorum: Optional[int] = None):
        self.processor = processor
        self.pid = processor.pid
        self.sim = processor.sim
        self.placement = placement
        self.config = config
        self.history = history
        self.all_pids = frozenset(all_pids)
        self._latency = latency
        self._read_quorum = read_quorum
        self._write_quorum = write_quorum
        #: per-transaction version numbers learned by reads, so writes
        #: after reads need no extra version-collect round
        self._version_cache: Dict[Any, Dict[str, int]] = {}
        self._init_server()

    def attach(self) -> None:
        self._attach_server()

    # ------------------------------------------------------------------
    # quorum arithmetic
    # ------------------------------------------------------------------

    def vote_weight(self, obj: str, pid: int) -> int:
        """Votes held by ``pid``'s copy (placement weight by default)."""
        return self.placement.weight(obj, pid)

    def total_votes(self, obj: str) -> int:
        return sum(self.vote_weight(obj, p)
                   for p in self.placement.copies(obj))

    def thresholds(self, obj: str) -> Tuple[int, int]:
        """``(r, w)`` for the object; defaults are the classic majority
        pair ``w = floor(total/2) + 1``, ``r = total - w + 1``."""
        total = self.total_votes(obj)
        w = self._write_quorum if self._write_quorum is not None \
            else total // 2 + 1
        r = self._read_quorum if self._read_quorum is not None \
            else total - w + 1
        if r + w <= total:
            raise ValueError(
                f"quorums r={r}, w={w} do not intersect (total {total})"
            )
        if 2 * w <= total:
            raise ValueError(f"write quorum w={w} is not a majority")
        return r, w

    # ------------------------------------------------------------------
    # logical operations
    # ------------------------------------------------------------------

    def logical_read(self, obj: str, ctx):
        self.metrics.logical_reads += 1
        need, _ = self.thresholds(obj)
        responses = yield from self._collect(
            "read", obj, need,
            lambda _s: {"obj": obj, "txn": ctx.txn_id,
                        "ts": ctx.timestamp},
            count_as="r",
        )
        if responses is None:
            self.metrics.abort("r", "no-quorum")
            raise AccessAborted(obj, "no-quorum")
        best_server, best = max(
            responses.items(), key=lambda kv: (kv[1]["date"] or 0, kv[0])
        )
        for server in responses:
            ctx.note_access("r", obj, server, None)
        self._version_cache.setdefault(ctx.txn_id, {})[obj] = best["date"] or 0
        self.history.record_logical(
            time=self.sim.now, txn=ctx.txn_id, kind="r", obj=obj,
            value=best["value"], version=best["version"],
        )
        return best["value"]

    def logical_write(self, obj: str, value: Any, ctx):
        self.metrics.logical_writes += 1
        _, need = self.thresholds(obj)
        cached = self._version_cache.get(ctx.txn_id, {}).get(obj)
        if cached is None:
            # No prior read in this transaction: a version-collect round
            # against a read quorum establishes the current number.
            r_need, _ = self.thresholds(obj)
            responses = yield from self._collect(
                "read", obj, r_need,
                lambda _s: {"obj": obj, "txn": ctx.txn_id,
                            "ts": ctx.timestamp},
                count_as="aux",
            )
            if responses is None:
                self.metrics.abort("w", "no-version-quorum")
                raise AccessAborted(obj, "no-version-quorum")
            for server in responses:
                ctx.note_access("r", obj, server, None)
            cached = max((p["date"] or 0) for p in responses.values())
        new_number = cached + 1
        version = ctx.next_version()
        responses = yield from self._collect(
            "write", obj, need,
            lambda _s: {"obj": obj, "value": value, "txn": ctx.txn_id,
                        "ts": ctx.timestamp, "version": version,
                        "date": new_number},
            count_as="w",
        )
        if responses is None:
            ctx.poison(f"write {obj!r}: no write quorum")
            self.metrics.abort("w", "no-quorum")
            raise AccessAborted(obj, "no-quorum")
        for server in responses:
            ctx.note_access("w", obj, server, None)
        self._version_cache.setdefault(ctx.txn_id, {})[obj] = new_number
        self.history.record_logical(
            time=self.sim.now, txn=ctx.txn_id, kind="w", obj=obj,
            value=value, version=version,
        )
        return None

    def end_transaction(self, ctx, outcome: str):
        self._version_cache.pop(ctx.txn_id, None)
        result = yield from super().end_transaction(ctx, outcome)
        return result

    def available(self, obj: str, write: bool) -> bool:
        """Omniscient: does a reachable quorum exist right now?"""
        graph = self.processor.network.graph
        reachable = sum(
            self.vote_weight(obj, q)
            for q in self.placement.copies(obj)
            if graph.has_edge(self.pid, q)
        )
        r, w = self.thresholds(obj)
        return reachable >= (w if write else r)

    # ------------------------------------------------------------------

    def _collect(self, kind: str, obj: str, need: int, payload_for,
                 count_as: str):
        """Assemble ``need`` votes, nearest copies first; widen the set
        on silence.  Returns ``{server: payload}`` or None."""
        candidates = self.placement.holders_by_distance(
            obj, self.placement.copies(obj),
            lambda q: self._latency.distance(self.pid, q),
        )
        responses: Dict[int, dict] = {}
        votes = 0
        remaining = list(candidates)
        while votes < need and remaining:
            wave, wave_votes = [], 0
            while remaining and votes + wave_votes < need:
                server = remaining.pop(0)
                wave.append(server)
                wave_votes += self.vote_weight(obj, server)
            if count_as in ("r", "aux"):
                self.metrics.physical_read_rpcs += len(wave)
                if count_as == "aux":
                    self.metrics.version_collect_rpcs += len(wave)
                else:
                    self.metrics.local_reads += sum(
                        1 for s in wave if s == self.pid)
            else:
                self.metrics.physical_write_rpcs += len(wave)
            # One wave per scatter call: the wave logic (nearest-first,
            # widen on silence) is the protocol's cost profile and must
            # stay; only the fan-out mechanics are shared.
            results = yield from self.processor.scatter_gather(
                wave, kind, payload_for,
                timeout=self.config.access_timeout,
                label=f"{kind}({obj})",
            )
            for server, payload in results.items():
                if payload is not None and payload["ok"]:
                    responses[server] = payload
                    votes += self.vote_weight(obj, server)
        if votes < need:
            return None
        return responses
