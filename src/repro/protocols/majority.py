"""Thomas's majority consensus [T]: the unweighted quorum special case.

Every copy gets exactly one vote regardless of placement weights, and
both reads and writes require a simple majority of copies.  This is the
second protocol the paper's cost comparison names; its read cost —
⌊n/2⌋+1 physical accesses — is what the virtual partitions read-one
rule undercuts.
"""

from __future__ import annotations

from typing import Tuple

from .quorum import QuorumProtocol


class MajorityProtocol(QuorumProtocol):
    """r = w = majority of the copy *count* (votes are uniform)."""

    name = "majority"

    def vote_weight(self, obj: str, pid: int) -> int:
        return 1 if pid in self.placement.copies(obj) else 0

    def thresholds(self, obj: str) -> Tuple[int, int]:
        total = len(self.placement.copies(obj))
        majority = total // 2 + 1
        return majority, majority
