"""Replica control protocols: the common interface and the baselines.

The paper's own protocol lives in :mod:`repro.core`; everything here is
either shared machinery or a comparison protocol from the literature:

* :class:`RowaProtocol` — read-one/write-ALL (no fault tolerance);
* :class:`QuorumProtocol` — Gifford's weighted voting [G];
* :class:`MajorityProtocol` — Thomas's majority consensus [T];
* :class:`MissingWritesProtocol` — Eager & Sevcik [ES] (approximation);
* :class:`NaiveViewProtocol` — the §4 strawman that Examples 1 and 2
  break (used by the anomaly reproductions).
"""

from .base import ProtocolMetrics, ReplicaControlProtocol
from .majority import MajorityProtocol
from .missing_writes import MissingWritesProtocol
from .naive_view import NaiveViewProtocol
from .quorum import QuorumProtocol
from .rowa import RowaProtocol

#: registry used by the experiment harness and benchmarks
PROTOCOLS = {
    "virtual-partitions": None,  # filled in lazily to avoid a cycle
    "rowa": RowaProtocol,
    "quorum": QuorumProtocol,
    "majority": MajorityProtocol,
    "missing-writes": MissingWritesProtocol,
    "naive-view": NaiveViewProtocol,
}


def protocol_factory(name: str):
    """Resolve a protocol name to its class."""
    if name == "virtual-partitions":
        from ..core.protocol import VirtualPartitionProtocol
        return VirtualPartitionProtocol
    try:
        factory = PROTOCOLS[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; choose from {sorted(PROTOCOLS)}"
        ) from None
    return factory


__all__ = [
    "MajorityProtocol",
    "MissingWritesProtocol",
    "NaiveViewProtocol",
    "PROTOCOLS",
    "ProtocolMetrics",
    "QuorumProtocol",
    "ReplicaControlProtocol",
    "RowaProtocol",
    "protocol_factory",
]
