"""Shared machinery for the baseline protocols.

The baselines differ in *which copies* a logical operation touches and
*when it is allowed* — not in how a physical access is served.  This
module provides that common server: strict-2PL copy locking with
before-images, a prepare/release decision protocol, and parallel
fan-out helpers, so every protocol pays identical concurrency control
costs and the benchmark comparisons isolate replica control itself.
"""

from __future__ import annotations

from typing import Iterable

from ..cc.factory import make_cc
from ..core.errors import TransactionAborted
from ..protocols.base import ProtocolMetrics

REJECT_LOCK_TIMEOUT = "lock-timeout"
REJECT_POISONED = "txn-poisoned"
REJECT_NO_COPY = "no-copy"


class BaselineServerMixin:
    """Physical access serving + commit protocol for baselines.

    Expects the concrete protocol to provide ``processor``, ``pid``,
    ``sim``, ``placement``, ``config``, ``history``, and to call
    :meth:`_init_server` from its constructor.
    """

    def _init_server(self) -> None:
        self.cc = make_cc(self.config, self.sim, label=f"p{self.pid}.cc")
        self.metrics = ProtocolMetrics()
        self._before_images: dict = {}
        self._poisoned_txns: set = set()

    def _attach_server(self) -> None:
        self.processor.add_task("physical-access", self._serve_requests)
        self.processor.on_crash(self._server_on_crash)

    def _server_on_crash(self) -> None:
        for txn in sorted(self._before_images, key=repr):
            for obj, (value, date, version) in self._before_images[txn].items():
                self.processor.store.install(obj, value, date, version)
        self._before_images.clear()
        self._poisoned_txns.clear()
        self.cc = make_cc(self.config, self.sim, label=f"p{self.pid}.cc")

    # ------------------------------------------------------------------
    # server loop
    # ------------------------------------------------------------------

    def _serve_requests(self):
        boxes = {
            kind: self.processor.mailbox(kind)
            for kind in ("read", "write", "prepare", "release")
        }
        while True:
            gets = {kind: box.get() for kind, box in boxes.items()}
            fired = yield self.sim.any_of(list(gets.values()))
            for kind, get in gets.items():
                if get not in fired:
                    continue
                message = fired[get]
                if kind == "read":
                    self.processor.spawn("serve-read",
                                         self._serve_read(message))
                elif kind == "write":
                    self.processor.spawn("serve-write",
                                         self._serve_write(message))
                elif kind == "prepare":
                    self._serve_prepare(message)
                else:
                    self._apply_decision(message.payload["txn"],
                                         message.payload["outcome"])

    def _serve_read(self, message):
        payload = message.payload
        obj, txn = payload["obj"], payload["txn"]
        store = self.processor.store
        if not store.holds(obj):
            self.processor.reply(message, "read-reply",
                                 {"ok": False, "reason": REJECT_NO_COPY})
            return
        granted, cc_reason = yield from self.cc.begin_read(
            txn, payload.get("ts"), obj)
        if not granted:
            self.processor.reply(message, "read-reply",
                                 {"ok": False,
                                  "reason": cc_reason or REJECT_LOCK_TIMEOUT})
            return
        value, date = store.read(obj)
        version = store.version(obj)
        self.history.record_physical(
            time=self.sim.now, txn=txn, kind="r", obj=obj,
            copy_pid=self.pid, value=value, version=version, vpid=None,
        )
        self.processor.reply(message, "read-reply", {
            "ok": True, "value": value, "date": date, "version": version,
        })

    def _serve_write(self, message):
        payload = message.payload
        obj, txn = payload["obj"], payload["txn"]
        store = self.processor.store
        if not store.holds(obj):
            self.processor.reply(message, "write-reply",
                                 {"ok": False, "reason": REJECT_NO_COPY})
            return
        granted, cc_reason = yield from self.cc.begin_write(
            txn, payload.get("ts"), obj)
        if not granted:
            self.processor.reply(message, "write-reply",
                                 {"ok": False,
                                  "reason": cc_reason or REJECT_LOCK_TIMEOUT})
            return
        if txn in self._poisoned_txns:
            self.processor.reply(message, "write-reply",
                                 {"ok": False, "reason": REJECT_POISONED})
            return
        images = self._before_images.setdefault(txn, {})
        if obj not in images:
            old_value, old_date = store.peek(obj)
            images[obj] = (old_value, old_date, store.version(obj))
        date = payload.get("date")
        if date is None:
            date = store.date(obj)
        store.write(obj, payload["value"], date, payload["version"])
        self.history.record_physical(
            time=self.sim.now, txn=txn, kind="w", obj=obj,
            copy_pid=self.pid, value=payload["value"],
            version=payload["version"], vpid=None,
        )
        self.processor.reply(message, "write-reply", {"ok": True})

    def _serve_prepare(self, message) -> None:
        txn = message.payload["txn"]
        if txn in self._poisoned_txns:
            self.processor.reply(message, "prepare-reply",
                                 {"ok": False, "reason": REJECT_POISONED})
        else:
            self.processor.reply(message, "prepare-reply", {"ok": True})

    def _apply_decision(self, txn, outcome: str) -> None:
        if outcome == "abort":
            for obj, (value, date, version) in \
                    self._before_images.pop(txn, {}).items():
                self.processor.store.install(obj, value, date, version)
        else:
            written = self._before_images.pop(txn, {})
            # mirror of AccessMixin._apply_decision: a committed write
            # invalidates any lease this processor granted on the object
            lease_table = getattr(self, "lease_table", None)
            if written and lease_table is not None:
                for obj in written:
                    lease_table.invalidate(obj)
        self._poisoned_txns.discard(txn)
        self.cc.finish(txn, outcome)

    # ------------------------------------------------------------------
    # client-side helpers
    # ------------------------------------------------------------------

    def _fanout(self, kind: str, servers: Iterable[int], payload_for):
        """Generator: parallel RPCs; returns ``{server: payload_or_None}``
        (None = no response).  A thin veneer over the processor's shared
        scatter-gather primitive (node/transport.py), kept so the
        baselines read like the paper's pseudocode."""
        results = yield from self.processor.scatter_gather(
            servers, kind, payload_for,
            timeout=self.config.access_timeout,
        )
        return results

    def prepare_commit(self, ctx):
        """Plain unanimous-vote prepare (no view validation)."""
        if ctx.poisoned:
            raise TransactionAborted(ctx.txn_id, ctx.poisoned)
        remote = sorted(ctx.participants - {self.pid})
        if self.pid in ctx.participants and \
                ctx.txn_id in self._poisoned_txns:
            raise TransactionAborted(ctx.txn_id, "local participant poisoned")
        results = yield from self._fanout(
            "prepare", remote, lambda _s: {"txn": ctx.txn_id})
        for server, payload in results.items():
            if payload is None:
                raise TransactionAborted(
                    ctx.txn_id, f"participant {server} unreachable at commit")
            if not payload["ok"]:
                raise TransactionAborted(
                    ctx.txn_id,
                    f"participant {server} voted {payload['reason']}")
        return None

    def end_transaction(self, ctx, outcome: str):
        if outcome not in ("commit", "abort"):
            raise ValueError(f"unknown outcome {outcome!r}")
        for server in sorted(ctx.participants):
            if server == self.pid:
                self._apply_decision(ctx.txn_id, outcome)
            else:
                self.processor.send(server, "release",
                                    {"txn": ctx.txn_id, "outcome": outcome})
        return
        yield  # pragma: no cover
