"""The paper's contribution: the virtual partitions replica control protocol."""

from .config import (
    CATCHUP_FULL,
    CATCHUP_LOG,
    INIT_PREVIOUS,
    INIT_READ_ALL,
    ProtocolConfig,
)
from .errors import AccessAborted, ReplicaControlError, TransactionAborted
from .ids import VpId, initial_vp_id
from .protocol import VirtualPartitionProtocol, bootstrap_partition
from .state import ReplicaState
from .views import CopyPlacement

__all__ = [
    "AccessAborted",
    "CATCHUP_FULL",
    "CATCHUP_LOG",
    "CopyPlacement",
    "INIT_PREVIOUS",
    "INIT_READ_ALL",
    "ProtocolConfig",
    "ReplicaControlError",
    "ReplicaState",
    "TransactionAborted",
    "VirtualPartitionProtocol",
    "VpId",
    "bootstrap_partition",
    "initial_vp_id",
]
