"""Figures 7–8: periodic probing.

``Send-Probes`` enforces the liveness constraint L1: every π time
units, an assigned processor probes everyone, collects acknowledgements
for 2δ, and triggers a new partition if the answering set differs from
its view.  ``Monitor-Probes`` answers probes carrying the *same*
partition id, ignores lower ones (stale messages), and reacts to higher
ones — a higher-id probe is unambiguous evidence that two different
virtual partitions can communicate and should merge.

Together these tasks give the paper's convergence bound Δ = π + 8δ
(measured by ``benchmarks/bench_liveness.py``).
"""

from __future__ import annotations


class ProbesMixin:
    """Failure/recovery detection through periodic probes."""

    def send_probes(self):
        """Fig. 7: probe every period π while assigned."""
        state = self.state
        config = self.config
        others = [pid for pid in sorted(self.all_pids) if pid != self.pid]
        sequence = 0
        if config.probe_phase is not None:
            phase = config.probe_phase(self.pid)
            if phase < 0:
                raise ValueError(f"negative probe phase {phase}")
            if phase:
                yield self.sim.timeout(phase)
        while True:
            if not state.assigned:
                yield self.sim.timeout(config.pi)
                continue
            current = state.cur_id
            responders = {self.pid}

            def accept(message, expect=sequence, seen=responders) -> bool:
                if message.payload["m"] != expect:
                    return False  # an ack for an earlier round
                seen.add(message.payload["from"])
                return True

            yield from self.processor.broadcast_collect(
                others, "probe",
                {"from": self.pid, "v": current, "m": sequence},
                reply_kind="probe-ack", window=config.probe_ack_wait,
                accept=accept,
            )
            # Fig. 7 line 21: any discrepancy triggers a new partition —
            # but only when this round's evidence is still *about* the
            # current partition.  If a view change landed while the acks
            # were in flight (we probed with the old id, so members of
            # the new partition ignored it), the responder set is stale;
            # reacting to it mints a fresh partition every round and the
            # views never settle.  A genuine discrepancy reappears in
            # the next round's probe, which carries the new id.
            if (state.assigned and state.cur_id == current
                    and responders != state.lview):
                self.create_new_vp()
            sequence += 1
            yield self.sim.timeout(config.pi - config.probe_ack_wait)

    def monitor_probes(self):
        """Fig. 8: answer, ignore, or react to incoming probes."""
        state = self.state
        probe_box = self.processor.mailbox("probe")
        while True:
            message = yield probe_box.get()
            if not state.assigned:
                continue
            probed_id = message.payload["v"]
            if probed_id == state.cur_id:
                self.processor.send(message.payload["from"], "probe-ack", {
                    "from": self.pid, "m": message.payload["m"],
                })
            elif probed_id < state.cur_id:
                pass  # an old, delayed message — skip (Fig. 8 line 6)
            else:
                # Proof of cross-partition communication: merge.  The
                # probe's id has been "seen", so fold it into max-id
                # before minting the successor — otherwise the new
                # partition could carry a *lower* id than the probed one
                # and its invitations would be refused, costing extra
                # rounds beyond the Delta = pi + 8*delta bound.
                if state.max_id < probed_id:
                    state.max_id = probed_id
                self.create_new_vp()
