"""Figure 6: the ``Monitor-VP-Creations`` task.

Accepts invitations to higher-numbered partitions, waits (3δ) for the
initiator's commit, and — if the commit never arrives (the acceptance
was lost, the initiator died, or the commit was lost) — starts a fresh
partition creation itself.  This timer is what makes partition creation
self-healing under omission failures.
"""

from __future__ import annotations

from ..sim import Timer


class MonitorMixin:
    """Acceptor side of virtual partition creation."""

    def monitor_vp_creations(self):
        state = self.state
        timer = Timer(self.sim, name=f"p{self.pid}.monitor-vp")
        newvp_box = self.processor.mailbox("newvp")
        commit_box = self.processor.mailbox("commit")
        while True:
            newvp_get = newvp_box.get()
            commit_get = commit_box.get()
            tick = timer.wait()
            fired = yield self.sim.any_of([newvp_get, commit_get, tick])

            if newvp_get in fired:
                message = fired[newvp_get]
                invited_id = message.payload["id"]
                # Fig. 6 lines 6-10: accept only strictly higher ids.
                if state.max_id < invited_id:
                    info = self._previous_info()
                    state.max_id = invited_id
                    state.depart()
                    # The durable max-id bump is forced before the
                    # acceptance leaves: a crash after accepting must
                    # not let this processor mint or accept ids below
                    # ``invited_id`` again.  The sync delays only this
                    # acceptance (a spawned delayed send), never the
                    # monitor loop itself: with concurrent initiators a
                    # blocking sync here would stack one forced write
                    # per invitation onto later accepts and push them
                    # past the initiators' invite_wait window (which
                    # budgets exactly one).
                    sync_cost = self.config.storage_sync_cost
                    if sync_cost > 0:
                        self.processor.spawn(
                            f"accept-sync{invited_id}",
                            self._delayed_accept(sync_cost, invited_id, info))
                    else:
                        self._send_accept(invited_id, info)
                    timer.set(self.config.commit_wait)

            elif commit_get in fired:
                message = fired[commit_get]
                committed_id = message.payload["id"]
                view = set(message.payload["view"])
                # Fig. 6 lines 12-20: commit only to the id we accepted
                # last; anything else is stale.  The membership check
                # matters when our acceptance reached the initiator too
                # late (or not at all): the committed view then excludes
                # us, and joining it would violate S2 — every member of
                # a view must be in that view.  Stay departed instead;
                # the commit_wait timer set at accept time still fires
                # and forms a fresh partition around us.
                if committed_id == state.max_id and self.pid not in view:
                    if self.tracer is not None:
                        self.tracer.emit("vp.commit-excluded", pid=self.pid,
                                         vpid=committed_id,
                                         view=sorted(view))
                elif committed_id == state.max_id:
                    self._commit_partition(
                        committed_id,
                        view,
                        dict(message.payload["previous_map"]),
                    )
                    timer.reset()

            else:
                # Fig. 6 lines 22-24: no commit arrived in time; claim
                # the next identifier and try to form a partition.
                if self.tracer is not None:
                    self.tracer.emit("vp.commit-timeout", pid=self.pid,
                                     vpid=state.max_id)
                state.max_id = state.max_id.successor(self.pid)
                self.schedule_create_vp(state.max_id)

    def _send_accept(self, invited_id, info):
        if self.tracer is not None:
            self.tracer.emit("vp.accept", pid=self.pid,
                             vpid=invited_id,
                             initiator=invited_id.pid)
        self.processor.send(invited_id.pid, "vp-accept", {
            "id": invited_id,
            "from": self.pid,
            "previous": info[0],
            "prev_accessible": sorted(info[1]),
        })

    def _delayed_accept(self, delay, invited_id, info):
        """Send the acceptance once its forced write completes."""
        yield self.sim.timeout(delay)
        self._send_accept(invited_id, info)
