"""Protocol-level exceptions."""

from __future__ import annotations


class ReplicaControlError(Exception):
    """Base class for replica control failures."""


class AccessAborted(ReplicaControlError):
    """A logical operation could not be performed (Figs. 10–11 ``abort``).

    Raised when the object is inaccessible from the local view (R1
    fails), when a required physical access gets no response, or when a
    server rejects the access because the requester's partition id is
    stale (R4).
    """

    def __init__(self, obj: str, reason: str):
        super().__init__(f"access to {obj!r} aborted: {reason}")
        self.obj = obj
        self.reason = reason


class TransactionAborted(ReplicaControlError):
    """The whole transaction must abort (and may be retried)."""

    def __init__(self, txn_id, reason: str):
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason
