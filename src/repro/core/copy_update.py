"""Figure 9 + §6: ``Update-Copies-in-View`` (rule R5).

After a processor joins a partition, every accessible local copy is
locked until it provably holds the most recent value of its logical
object.  Because ≺ is a legal creation order (Theorem 1'), "most
recent" is simply "largest date among the copies in the view".

Strategies (ablated by ``benchmarks/bench_init_cost.py``):

* ``read-all`` — Fig. 9 as written: read every copy in the view, keep
  the one with the largest date.
* ``previous`` — §6: each acceptor's previous partition id and the
  objects accessible there travel with the creation protocol; the
  member holding the maximal such id already has the freshest copy, so
  one read (or none, if that member is us) suffices.
* split-off fast path — when every member of the new partition comes
  from one common previous partition, copies of objects accessible
  there are already up to date: unlock with no reads at all.
* ``log`` catch-up — ship only the write-log entries the stale copy
  missed instead of the whole value (cost = entries, not object size).

Recovery reads use a dedicated ``vpread`` message served *without* the
Fig. 12 locked-set wait: with it, two holders updating the same object
would block on each other forever (each waits for the other's unlock
before answering).  They do take a short shared lock, which is exactly
condition (3) of the weakened R4: recovery never reads a copy locked
for writing.
"""

from __future__ import annotations

from ..node.storage import LogTruncated


#: sentinel returned by ``_read_sources`` when a source copy is
#: temporarily unusable (in-doubt 2PC write) but the view itself is
#: fine — the caller should re-read later, not force a new partition.
RETRY_LATER = object()


class UpdateMixin:
    """Partition initialization (rule R5) with the §6 optimizations."""

    def _schedule_update_copies(self) -> None:
        """The ``schedule(Update-Copies-in-View)`` of Figs. 5 and 6."""
        self._update_process = self.processor.spawn(
            "update-copies", self._update_copies_task()
        )

    def _update_copies_task(self):
        """Fig. 9 outer loop: one parallel worker per locked object."""
        state = self.state
        old_id = state.cur_id
        objects = sorted(state.locked)
        if not objects:
            return
        if self.tracer is not None:
            self.tracer.emit("recover.start", pid=self.pid, vpid=old_id,
                             objects=len(objects))
        split_off_objects = (
            self._split_off_fresh_objects() if self.config.split_off_fastpath
            else frozenset()
        )
        workers = []
        for obj in objects:
            if obj in split_off_objects and not self._has_in_doubt_write(obj):
                # §6: pure split-off — the copy is known fresh already.
                state.unlock_object(obj)
                self.metrics.recoveries += 1
                self.history.record_recovery(time=self.sim.now, pid=self.pid,
                                             obj=obj, vpid=old_id)
                if self.tracer is not None:
                    self.tracer.emit("recover.fresh", pid=self.pid, obj=obj,
                                     vpid=old_id)
                continue
            workers.append(self.processor.spawn(
                f"update({obj})", self._update_one_object(obj, old_id)
            ))
        if workers:
            yield self.sim.all_of(workers)

    def _split_off_fresh_objects(self) -> frozenset:
        """Objects provably fresh because the partition is a split-off.

        Requires every member to come from one common previous partition
        *and*, per object, every copy-holding member to have had the
        object accessible there (otherwise that copy may predate the
        previous partition and still be stale).
        """
        state = self.state
        previous_map = state.previous_map
        if not previous_map or set(previous_map) < set(state.lview):
            return frozenset()
        previous_ids = {prev for prev, _ in previous_map.values()}
        if len(previous_ids) != 1:
            return frozenset()
        fresh = set()
        for obj in state.locked:
            holders = self.placement.copies(obj) & state.lview
            if holders and all(
                obj in previous_map[holder][1] for holder in holders
            ):
                fresh.add(obj)
        return frozenset(fresh)

    def _update_one_object(self, obj: str, old_id):
        """Fig. 9 inner loop for one object, honouring the strategy."""
        state = self.state
        store = self.processor.store
        while self._has_in_doubt_write(obj):
            # A prepared-but-undecided write sits on the local copy: its
            # date must not be taken as authoritative (the §6 fast path
            # would serve it with no reads at all) until the resolver
            # task learns the 2PC outcome.  Park; the object stays
            # locked, which is exactly what R5 requires of a copy whose
            # freshness is unknown.
            yield self.sim.timeout(self.config.delta)
            if not (state.assigned and state.cur_id == old_id):
                return
        if not store.holds(obj):
            # A concurrent reshard retired this copy while the update
            # was queued or parked: the object moved off this processor,
            # so there is nothing left to catch up locally.
            state.unlock_object(obj)
            return
        local_value, local_date = store.peek(obj)
        best = (local_date, local_value, store.version(obj))
        units = 0
        entries_to_apply = None

        sources = self._recovery_sources(obj)
        if sources:
            while True:
                results = yield from self._read_sources(obj, sources)
                if results is not RETRY_LATER:
                    break
                # A source answered "in-doubt": its copy carries a
                # prepared write whose 2PC outcome is pending.  The
                # view is fine — re-read once the source has resolved
                # it, instead of spawning a new partition generation.
                yield self.sim.timeout(self.config.commit_wait)
                if not (state.assigned and state.cur_id == old_id):
                    return
                if not store.holds(obj):
                    state.unlock_object(obj)
                    return
            if results is None:
                # Fig. 9 line 12's [no-response]: the view is wrong;
                # leave the object locked — the next partition's update
                # (with a fresh locked set) takes over.  Actionable only
                # while we still stand in the partition the evidence was
                # gathered in: once a newer generation superseded this
                # one, the silence (or a "wrong-partition" refusal from
                # a source that already moved on) says nothing about the
                # *current* view — reacting to it mints a partition per
                # generation and the views never settle.
                if state.assigned and state.cur_id == old_id:
                    self.create_new_vp()
                return
            for payload in results:
                units += payload.get("units", 0)
                if payload.get("truncated"):
                    # the source compacted past our date; it shipped the
                    # whole value instead of log entries
                    self.metrics.catchup_fallbacks += 1
                date = payload["date"]
                if self._date_newer(date, best[0]):
                    best = (date, payload["value"], payload["version"])
                    entries_to_apply = payload.get("entries")

        # Fig. 9 lines 15-17: install only if still in the same partition.
        if not (state.assigned and state.cur_id == old_id):
            return
        if not store.holds(obj):
            state.unlock_object(obj)
            return
        if self._date_newer(best[0], local_date):
            if entries_to_apply is not None:
                store.apply_log(obj, entries_to_apply)
            else:
                store.install(obj, best[1], best[0], best[2])
        self.metrics.transfer_units += units
        self.metrics.recoveries += 1
        self.history.record_recovery(time=self.sim.now, pid=self.pid,
                                     obj=obj, vpid=old_id)
        if self.tracer is not None:
            self.tracer.emit("recover.object", pid=self.pid, obj=obj,
                             units=units, vpid=old_id)
        state.unlock_object(obj)

    def _recovery_sources(self, obj: str) -> list[int]:
        """Which remote copies to read, per the configured strategy."""
        state = self.state
        holders = sorted(
            (self.placement.copies(obj) & state.lview) - {self.pid}
        )
        if self.config.init_strategy == "read-all" or not state.previous_map:
            return holders
        # §6 optimized search: among view members holding a copy for
        # which the object was accessible in their previous partition,
        # the one with the maximal previous id has the freshest copy.
        candidates = [
            (state.previous_map[holder][0], holder)
            for holder in set(holders) | {self.pid}
            if holder in state.previous_map
            and obj in state.previous_map[holder][1]
        ]
        if not candidates:
            return holders  # no usable info: fall back to Fig. 9
        _best_prev, best_holder = max(candidates)
        if best_holder == self.pid:
            return []  # our copy is already the freshest: no reads
        return [best_holder]

    def _read_sources(self, obj: str, sources: list[int]):
        """Issue vpread RPCs in parallel; None signals a no-response."""
        state = self.state
        want_log = self.config.catchup == "log"
        _, local_date = self.processor.store.peek(obj)
        request = {
            "obj": obj,
            "v": state.cur_id,
            "after": local_date if want_log else None,
            "mode": "log" if want_log else "full",
        }
        results = yield from self.processor.scatter_gather(
            sources, "vpread", lambda _server: request,
            timeout=self.config.access_timeout,
            label=f"vpread({obj})",
        )
        payloads = []
        retry = False
        for server in sources:
            payload = results[server]
            if payload is None:
                return None
            if not payload["ok"]:
                if payload["reason"] == "in-doubt":
                    retry = True
                    continue
                # The source is in another partition or its copy is
                # write-locked; treat like silence — R5 must not read it.
                return None
            payloads.append(payload)
        if retry:
            return RETRY_LATER
        return payloads

    # ------------------------------------------------------------------
    # server side: answering recovery reads
    # ------------------------------------------------------------------

    def serve_vpread(self):
        """Dispatcher for ``vpread`` requests (see module docstring)."""
        box = self.processor.mailbox("vpread")
        while True:
            message = yield box.get()
            self.processor.spawn("vpread-handler",
                                 self._handle_vpread(message))

    def _handle_vpread(self, message):
        payload = message.payload
        obj = payload["obj"]
        state = self.state
        if not (state.assigned and payload["v"] == state.cur_id):
            # The requester may simply be ahead of us: its commit for
            # the same partition can still be in flight (message delays
            # are independent).  Wait up to the commit timeout for our
            # own join before giving up — Fig. 12's plain "if" (silence)
            # would make the requester declare us dead over a race the
            # network is allowed to produce.
            deadline = self.sim.now + self.config.commit_wait
            while (payload["v"] > state.cur_id or not state.assigned) \
                    and self.sim.now < deadline:
                change = state.partition_changed.wait()
                tick = self.sim.timeout(max(deadline - self.sim.now, 0.0))
                yield self.sim.any_of([change, tick])
        if not (state.assigned and payload["v"] == state.cur_id):
            self.processor.reply(message, "vpread-reply",
                                 {"ok": False, "reason": "wrong-partition"})
            return
        # Condition (3) of the weakened R4: never ship a value a live
        # transaction is overwriting.  The CC strategy provides the gate
        # (a brief shared lock under 2PL; an uncommitted-writer wait
        # under TSO).
        granted = yield from self.cc.stable_read_gate(obj)
        if not granted:
            self.processor.reply(message, "vpread-reply",
                                 {"ok": False, "reason": "write-locked"})
            return
        # The gate covers the 2PC uncertainty window in normal
        # operation: an in-doubt writer still holds its copy lock, and
        # the decide is applied before the lock is released.  But CC
        # locks are volatile — after a crash the lock table is empty
        # while the (force-written) in-doubt write is still on the
        # copy.  That residue must never be shipped; tell the requester
        # to retry us once the resolver has learned the outcome, rather
        # than let it declare the view wrong.
        if self._has_in_doubt_write(obj):
            self.processor.reply(message, "vpread-reply",
                                 {"ok": False, "reason": "in-doubt"})
            return
        store = self.processor.store
        if not store.holds(obj):
            # A reshard retired our copy while this request was in
            # flight; the requester must pick a holder of the new
            # placement instead.
            self.processor.reply(message, "vpread-reply",
                                 {"ok": False, "reason": "no-copy"})
            return
        value, date = store.peek(obj)
        version = store.version(obj)
        truncated = False
        if payload["mode"] == "log":
            try:
                entries = store.log_since(obj, payload["after"])
                units = len(entries)
            except LogTruncated:
                # Compaction discarded entries the requester would need
                # (its copy predates the retained floor).  §6's log
                # catch-up degrades gracefully to Fig. 9's full-object
                # transfer — correctness never depends on log history,
                # only the transfer cost does.
                entries = None
                units = store.size(obj)
                truncated = True
        else:
            entries = None
            units = store.size(obj)
        self.processor.reply(message, "vpread-reply", {
            "ok": True, "value": value, "date": date,
            "version": version, "entries": entries, "units": units,
            "truncated": truncated,
        })

    # ------------------------------------------------------------------
    # server side: migration control (reshard engine only)
    # ------------------------------------------------------------------
    # These handlers are dispatched by a task the reshard engine
    # registers explicitly (``serve_reshard``); a cluster that never
    # reshards neither creates the mailboxes nor runs the task, keeping
    # default runs byte-identical to the golden trace.

    def serve_reshard(self):
        """Dispatcher for the migration engine's control messages."""
        kinds = ("reshard-gate", "reshard-install", "reshard-release")
        boxes = {kind: self.processor.mailbox(kind) for kind in kinds}
        handlers = {
            "reshard-gate": self._handle_reshard_gate,
            "reshard-install": self._handle_reshard_install,
            "reshard-release": self._handle_reshard_release,
        }
        while True:
            gets = {kind: boxes[kind].get() for kind in kinds}
            fired = yield self.sim.any_of(list(gets.values()))
            for kind, get in gets.items():
                if get in fired:
                    self.processor.spawn(f"{kind}-handler",
                                         handlers[kind](fired[get]))

    def _handle_reshard_gate(self, message):
        """Write-gate the local copy and report its freshness.

        Yield-free up to the reply: the gate and the reported date are
        one atomic snapshot.  A write that already passed the gate check
        but is still waiting on its copy lock is caught by the post-lock
        re-check in ``_handle_write`` — no write lands after the gate's
        date without the coordinator's verify round seeing it.
        """
        payload = message.payload
        obj = payload["obj"]
        store = self.processor.store
        self.state.gate_migration(obj)
        self.processor.reply(message, "reshard-gate-reply", {
            "ok": True,
            "date": store.date(obj) if store.holds(obj) else None,
            "in_doubt": self._has_in_doubt_write(obj),
        })
        return
        yield  # pragma: no cover - marks this handler as a generator

    def _handle_reshard_install(self, message):
        """Install a copy of ``obj`` here via the §6 catch-up path.

        The new holder reads the nearest in-view source copy with a
        ``vpread`` (same stable-read gate and in-doubt refusal as
        partition initialization) and materializes it locally.  Every
        refusal maps to a not-ok reply; the coordinator retries until
        the views merge and the sources quiesce.
        """
        payload = message.payload
        obj = payload["obj"]
        state = self.state
        store = self.processor.store
        if not state.assigned:
            self.processor.reply(message, "reshard-install-reply",
                                 {"ok": False, "reason": "unassigned"})
            return
        in_view = [p for p in payload["sources"]
                   if p in state.lview and p != self.pid]
        if store.holds(obj) and not in_view:
            # Staying holder (weight-only move) or re-delivered install:
            # our own copy is a valid source.
            self.processor.reply(message, "reshard-install-reply",
                                 {"ok": True, "date": store.date(obj)})
            return
        if not in_view:
            self.processor.reply(message, "reshard-install-reply",
                                 {"ok": False, "reason": "no-source-in-view"})
            return
        source = min(in_view, key=lambda p: (self.distance(p), p))
        results = yield from self.processor.scatter_gather(
            [source], "vpread",
            lambda _server: {"obj": obj, "v": state.cur_id,
                             "after": None, "mode": "full"},
            timeout=self.config.access_timeout,
            label=f"reshard-install({obj})",
        )
        answer = results[source]
        if answer is None or not answer["ok"]:
            reason = "no-response" if answer is None else answer["reason"]
            self.processor.reply(message, "reshard-install-reply",
                                 {"ok": False, "reason": reason})
            return
        value, date, version = (answer["value"], answer["date"],
                                answer["version"])
        if not store.holds(obj):
            store.place(obj, initial=value, date=date,
                        size=payload["size"], version=version)
        elif self._date_newer(date, store.date(obj)):
            store.install(obj, value, date, version)
        self.metrics.reshard_installs += 1
        self.metrics.transfer_units += answer.get("units", 0)
        if self.auditor is not None:
            self.auditor.on_copy_installed(
                time=self.sim.now, pid=self.pid, obj=obj)
        if self.tracer is not None:
            self.tracer.emit("reshard.install", pid=self.pid, obj=obj,
                             source=source)
        self.processor.reply(message, "reshard-install-reply",
                             {"ok": True, "date": store.date(obj)})

    def _handle_reshard_release(self, message):
        """Drop the write gate; dropped holders also retire the copy.

        Retiring is refused (reply not-ok, gate kept) while the copy
        still carries unresolved transaction state — an in-doubt write
        or an unapplied before-image — because the late decide must
        still find the copy to settle it.  The coordinator retries.
        """
        payload = message.payload
        obj = payload["obj"]
        store = self.processor.store
        if payload["retire"] and store.holds(obj):
            busy = self._has_in_doubt_write(obj) or any(
                obj in images for images in self._before_images.values()
            )
            if busy:
                self.processor.reply(message, "reshard-release-reply",
                                     {"ok": False, "reason": "busy"})
                return
            store.retire(obj)
            self.metrics.reshard_retires += 1
            if self.auditor is not None:
                self.auditor.on_copy_retired(
                    time=self.sim.now, pid=self.pid, obj=obj)
            if self.tracer is not None:
                self.tracer.emit("reshard.retire", pid=self.pid, obj=obj)
        self.state.ungate_migration(obj)
        self.processor.reply(message, "reshard-release-reply", {"ok": True})
        return
        yield  # pragma: no cover - marks this handler as a generator

    # ------------------------------------------------------------------

    @staticmethod
    def _date_newer(candidate, reference) -> bool:
        """Is ``candidate`` a strictly newer logical date than ``reference``?

        ``None`` (never written) is older than everything.
        """
        if candidate is None:
            return False
        if reference is None:
            return True
        return candidate > reference
