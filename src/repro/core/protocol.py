"""The virtual partitions replica control protocol (the paper's §5).

:class:`VirtualPartitionProtocol` assembles the per-figure mixins into
one per-processor object and wires them to the processor runtime:

* Fig. 3  — shared state (:class:`~repro.core.state.ReplicaState`),
  task scheduling (here, in :meth:`attach`);
* Figs. 4–5 — :class:`~repro.core.vp_creation.CreationMixin`;
* Fig. 6  — :class:`~repro.core.vp_monitor.MonitorMixin`;
* Figs. 7–8 — :class:`~repro.core.probes.ProbesMixin`;
* Fig. 9  — :class:`~repro.core.copy_update.UpdateMixin`;
* Figs. 10–12 — :class:`~repro.core.access.AccessMixin`.
"""

from __future__ import annotations

from itertools import count
from typing import Iterable, Optional

from ..analysis.history import History
from ..cc.factory import make_cc
from ..commit import make_commit
from ..net.latency import LatencyModel
from ..node.processor import Processor
from ..protocols.base import ProtocolMetrics, ReplicaControlProtocol
from ..shard.directory import LocalDirectory
from .access import AccessMixin
from .config import ProtocolConfig
from .copy_update import UpdateMixin
from .ids import VpId
from .probes import ProbesMixin
from .state import ReplicaState
from .views import CopyPlacement
from .vp_creation import CreationMixin
from .vp_monitor import MonitorMixin


class VirtualPartitionProtocol(CreationMixin, MonitorMixin, ProbesMixin,
                               UpdateMixin, AccessMixin,
                               ReplicaControlProtocol):
    """One protocol instance per processor."""

    name = "virtual-partitions"

    def __init__(self, processor: Processor, placement: CopyPlacement,
                 config: ProtocolConfig, history: History,
                 latency: LatencyModel, all_pids: Iterable[int]):
        self.processor = processor
        self.pid = processor.pid
        self.sim = processor.sim
        self.placement = placement
        self.config = config
        self.history = history
        self.all_pids = frozenset(all_pids)
        self._latency = latency
        self.state = ReplicaState(self.pid, self.sim, history,
                                  store=processor.store)
        self.cc = make_cc(config, self.sim, label=f"p{self.pid}.cc")
        #: client-side routing directory (Figs. 10-11 lookups); the
        #: cluster swaps in a CachedDirectory for partial-map runs.
        #: Server-side votes stay on the authoritative ``placement``.
        self.directory = LocalDirectory(placement)
        self.metrics = ProtocolMetrics()
        #: optional :class:`~repro.obs.trace.Tracer`; None = no tracing
        self.tracer = None
        #: optional :class:`~repro.audit.InvariantAuditor`; None = off
        self.auditor = None
        self._create_vp_process = None
        self._update_process = None
        self._before_images: dict = {}
        self._poisoned_txns: set = set()
        #: the pluggable atomic-commit backend (prepare round, decision
        #: log, decide fan-out, in-doubt resolution) — see repro.commit
        self.commit = make_commit(config.commit_backend, self)
        self._recovery_seq = count(1)

    def distance(self, pid: int) -> float:
        """Expected delay to ``pid``; rule R2 reads the minimum."""
        return self._latency.distance(self.pid, pid)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def set_tracer(self, tracer) -> None:
        """Install (or remove, with ``None``) a trace-event sink.

        Wires every layer this protocol owns: its own emissions, the
        shared state's join/depart events, and the CC strategy's lock
        table.  The CC strategy is recreated on crash, so the wiring is
        reapplied there too.
        """
        self.tracer = tracer
        self.state.tracer = tracer
        self._wire_cc_tracer()

    def _wire_cc_tracer(self) -> None:
        locks = getattr(self.cc, "locks", None)
        if locks is not None:
            locks.tracer = self.tracer
            locks.trace_pid = self.pid

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Register the Fig. 3 task set and the crash/recover hooks."""
        self.processor.add_task("monitor-vp-creations",
                                self.monitor_vp_creations)
        self.processor.add_task("send-probes", self.send_probes)
        self.processor.add_task("monitor-probes", self.monitor_probes)
        self.processor.add_task("physical-access", self.serve_physical_access)
        self.processor.add_task("serve-vpread", self.serve_vpread)
        self.processor.on_crash(self._on_crash)
        self.processor.on_recover(self._on_recover)

    def _on_crash(self) -> None:
        """Volatile state vanishes; dirty uncommitted writes are undone.

        Undoing at crash time models the recovery-time undo pass a WAL
        would perform before the node serves anything again.  In-doubt
        transactions (we voted yes in their prepare round) are exempt:
        their prepare record and before-images are force-written, so
        the undo/redo choice is deferred until the coordinator's
        decision is learned — rolling them back here could erase a
        committed write.
        """
        in_doubt = self.commit.in_doubt
        for txn in sorted(self._before_images, key=repr):
            if txn in in_doubt:
                continue
            images = self._before_images[txn]
            for obj, (value, date, version) in images.items():
                self.processor.store.install(obj, value, date, version)
        self._before_images = {
            txn: images for txn, images in self._before_images.items()
            if txn in in_doubt
        }
        self._poisoned_txns.clear()
        # Backend-owned commit state: the 2PC decision log finalizes
        # undecided entries as the presumed abort; Paxos leaves them to
        # the acceptors.  Resolver bookkeeping is volatile either way.
        self.commit.on_crash()
        self.cc = make_cc(self.config, self.sim, label=f"p{self.pid}.cc")
        self._wire_cc_tracer()
        self.state.reset_volatile()
        if self.tracer is not None:
            self.tracer.emit("proc.crash", pid=self.pid)

    def _on_recover(self) -> None:
        """Come back alone; probing will merge us with the reachable."""
        self.state.reboot()
        self.commit.on_recover()
        if self.tracer is not None:
            self.tracer.emit("proc.recover", pid=self.pid)

    # ------------------------------------------------------------------
    # introspection helpers used by tests and the harness
    # ------------------------------------------------------------------

    @property
    def assigned(self) -> bool:
        return self.state.assigned

    @property
    def current_partition(self) -> Optional[VpId]:
        return self.state.cur_id if self.state.assigned else None

    @property
    def view(self) -> frozenset:
        return frozenset(self.state.lview)

    def __repr__(self) -> str:
        return f"VirtualPartitionProtocol(p{self.pid}, {self.state!r})"


def bootstrap_partition(protocols: Iterable[VirtualPartitionProtocol],
                        vpid: Optional[VpId] = None) -> VpId:
    """Start all processors jointly committed to one initial partition.

    Models a system brought up by an operator in one piece, skipping the
    initial probe-driven convergence.  Copies need no initialization
    (everyone holds the initial database), so nothing is locked.
    """
    members = sorted(protocols, key=lambda p: p.pid)
    if not members:
        raise ValueError("no protocols to bootstrap")
    if vpid is None:
        vpid = VpId(1, members[0].pid)
    view = {p.pid for p in members}
    previous_map = {}
    for protocol in members:
        info = protocol._previous_info()
        previous_map[protocol.pid] = info
    for protocol in members:
        protocol.state.join(vpid, view, previous_map)
        if protocol.state.max_id < vpid:
            protocol.state.max_id = vpid
    return vpid
