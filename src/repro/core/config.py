"""Tunable protocol parameters.

Collects the paper's constants (δ, π) and the §6 optimization switches
in one validated place, so experiments can sweep them and ablations can
flip them independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


#: Update-Copies reads every copy in the view (Fig. 9 as written).
INIT_READ_ALL = "read-all"
#: Update-Copies reads one copy chosen via previous-partition info (§6).
INIT_PREVIOUS = "previous"

#: Recovery ships the whole object value.
CATCHUP_FULL = "full-copy"
#: Recovery ships only the write-log entries the copy missed (§6).
CATCHUP_LOG = "log"


@dataclass(frozen=True)
class ProtocolConfig:
    """All knobs of the virtual partition protocol.

    ``delta`` is δ — the bound on one-way message delay; the protocol's
    2δ/3δ waits and the liveness bound Δ = π + 8δ derive from it.
    ``pi`` is π — the probe period; it must exceed 2δ because Fig. 7
    spends 2δ of each period collecting acknowledgements.
    """

    delta: float = 1.0
    pi: float = 10.0
    #: retry a failed physical read at the next-nearest copy before
    #: aborting (the parenthetical in rule R2)
    read_retry: bool = False
    #: partition initialization strategy (Fig. 9 vs §6 optimization)
    init_strategy: str = INIT_READ_ALL
    #: what recovery transfers: whole values or missed log entries (§6)
    catchup: str = CATCHUP_FULL
    #: skip initialization entirely when a partition is a pure split-off
    #: of its members' common previous partition (§6)
    split_off_fastpath: bool = False
    #: use the weakened rule R4 for 2PL (§6 conditions (1)–(3)) instead
    #: of aborting every transaction on any view change
    weakened_r4: bool = False
    #: how long a physical access may wait for a copy lock before the
    #: transaction gives up (deadlock breaking), in multiples of delta
    lock_timeout_deltas: float = 20.0
    #: timeout for any single remote physical access, in multiples of
    #: delta (one message each way = 2δ, plus server-side lock waiting)
    access_timeout_deltas: float = 24.0
    #: concurrency control protocol (assumption A1): strict two-phase
    #: locking ("2pl") or strict timestamp ordering ("tso")
    cc: str = "2pl"
    #: atomic-commit backend: presumed-abort two-phase commit ("2pc",
    #: the classic blocking protocol) or Gray & Lamport's Paxos Commit
    #: ("paxos", non-blocking past any single crash) — see repro.commit
    commit_backend: str = "2pc"
    #: transport batching window (0 = off): messages bound for the same
    #: destination within one window share a batch envelope — one
    #: latency/loss draw for the lot.  Bounded by delta so a batched
    #: message still arrives within the declared delay bound and every
    #: 2δ/3δ timer stays sound.
    batch_window: float = 0.0
    #: optional per-processor probe phase offset (pid -> delay before the
    #: first probe round).  Real failure detectors are not synchronized;
    #: a processor with a large phase is "slow to detect" failures (§4's
    #: stale-read discussion).  None = everyone probes immediately.
    probe_phase: Optional[Callable[[int], float]] = None
    #: model time one WAL append costs (a physical write journalling its
    #: record before acknowledging); 0 = free, as the paper assumes
    storage_append_cost: float = 0.0
    #: model time one *forced* sync costs — charged at the 2PC
    #: force-write points: the participant's prepare record, the
    #: coordinator's decision-log entry before any decide leaves, and
    #: the durable ``max-id`` bump at partition creation
    storage_sync_cost: float = 0.0
    #: auto-checkpoint the storage engine every N WAL appends (0 = off);
    #: checkpoints truncate the journal and, with ``log_retain`` set,
    #: compact the per-copy §6 write logs
    checkpoint_every: int = 0
    #: per-copy write-log entries retained at compaction (None = keep
    #: everything — the seed behaviour; unbounded log memory)
    log_retain: Optional[int] = None

    def __post_init__(self):
        if self.delta <= 0:
            raise ValueError(f"delta must be positive: {self.delta}")
        if self.pi <= 2 * self.delta:
            raise ValueError(
                f"probe period pi={self.pi} must exceed 2*delta={2 * self.delta} "
                "(Fig. 7 spends 2 delta collecting acks each period)"
            )
        if self.init_strategy not in (INIT_READ_ALL, INIT_PREVIOUS):
            raise ValueError(f"unknown init_strategy {self.init_strategy!r}")
        if self.catchup not in (CATCHUP_FULL, CATCHUP_LOG):
            raise ValueError(f"unknown catchup {self.catchup!r}")
        if self.lock_timeout_deltas <= 0 or self.access_timeout_deltas <= 0:
            raise ValueError("timeouts must be positive")
        if self.cc not in ("2pl", "tso"):
            raise ValueError(f"unknown concurrency control {self.cc!r}")
        if self.commit_backend not in ("2pc", "paxos"):
            raise ValueError(
                f"unknown commit backend {self.commit_backend!r}")
        if not 0.0 <= self.batch_window <= self.delta:
            raise ValueError(
                f"batch_window={self.batch_window} must lie in [0, "
                f"delta={self.delta}]: a longer hold could push arrivals "
                "past the bound the protocol's timers are derived from"
            )
        if self.storage_append_cost < 0 or self.storage_sync_cost < 0:
            raise ValueError("storage costs must be non-negative")
        if self.storage_sync_cost > self.delta:
            raise ValueError(
                f"storage_sync_cost={self.storage_sync_cost} must not "
                f"exceed delta={self.delta}: the 2delta/3delta protocol "
                "timers budget one forced write per message round"
            )
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0: {self.checkpoint_every}")
        if self.log_retain is not None and self.log_retain < 1:
            raise ValueError(
                f"log_retain must be None or >= 1: {self.log_retain}")

    # -- derived constants -------------------------------------------------

    @property
    def timer_slack(self) -> float:
        """Tie-breaking slack added to protocol timers.

        "Delivered within the time limit" (§3) means delay ≤ δ, so a
        reply to a message sent now can arrive at *exactly* now + 2δ —
        and a timer set to a bare 2δ would fire first and declare the
        sender dead.  A small ε > 0 makes the deadline inclusive.
        """
        return 1e-3 * self.delta

    @property
    def invite_wait(self) -> float:
        """Fig. 5 line 5: the initiator collects accepts for 2δ.

        Plus one forced-write budget: an acceptor durably bumps its
        ``max-id`` before its acceptance leaves (see vp_monitor), so
        with a nonzero sync cost a bare 2δ window would systematically
        exclude correct acceptors.
        """
        return 2 * self.delta + self.storage_sync_cost + self.timer_slack

    @property
    def commit_wait(self) -> float:
        """Fig. 6 line 9: an acceptor waits 3δ for the commit.

        Plus one forced-write budget: the timer starts when the
        invitation is processed, but the acceptance only *leaves* after
        the acceptor's durable max-id bump (see vp_monitor), so the
        initiator's commit is up to one sync later than a bare 3δ
        allows.  Without the budget, an acceptor whose invitation
        arrived quickly times out just before the commit lands and
        starts a fresh creation — re-forming the same view every round.
        """
        return 3 * self.delta + self.storage_sync_cost + 2 * self.timer_slack

    @property
    def probe_ack_wait(self) -> float:
        """Fig. 7 line 11: 2δ for probe acknowledgements."""
        return 2 * self.delta + self.timer_slack

    @property
    def liveness_bound(self) -> float:
        """Δ = π + 8δ (§5): view convergence bound after a clique forms."""
        return self.pi + 8 * self.delta

    @property
    def lock_timeout(self) -> float:
        return self.lock_timeout_deltas * self.delta

    @property
    def access_timeout(self) -> float:
        return self.access_timeout_deltas * self.delta
