"""Figures 4–5: ``Create-new-VP`` and the ``Create-VP`` task.

Partition creation is a three-phase protocol (§5):

1. the initiator mints an identifier greater than everything it has
   seen and invites every processor (``newvp``);
2. it collects acceptances for 2δ, then — if no higher-numbered
   invitation arrived meanwhile — commits itself and distributes the
   new view (``commit``);
3. copies accessible in the new partition are brought up to date
   (``Update-Copies-in-View``; see :mod:`repro.core.copy_update`).

Phase 1 additionally piggybacks each acceptor's *previous* partition id
and the objects that were accessible there — the information §6's
optimized initialization needs, collected "at no extra cost in messages
or time".
"""

from __future__ import annotations


class CreationMixin:
    """Initiator side of virtual partition creation."""

    def create_new_vp(self) -> None:
        """Fig. 4: depart, mint the next identifier, launch Create-VP.

        A no-op while unassigned — some partition creation is already in
        progress and its failure paths (the 3δ commit timer in Fig. 6)
        guarantee a retry, so piling up attempts is never needed.
        """
        state = self.state
        if not state.assigned:
            return
        state.depart()
        state.max_id = state.max_id.successor(self.pid)
        self.schedule_create_vp(state.max_id)

    def schedule_create_vp(self, new_id) -> None:
        """The paper's ``schedule``: start the task unless already active."""
        running = self._create_vp_process
        if running is not None and running.is_alive:
            return
        self._create_vp_process = self.processor.spawn(
            f"create-vp({new_id})", self._create_vp_task(new_id)
        )

    def _create_vp_task(self, new_id):
        """Fig. 5: invite, collect accepts for 2δ, commit the view."""
        state = self.state
        self.metrics.vp_created += 1
        # The max-id bump that minted ``new_id`` is a forced write (the
        # durable cell journals it — identifiers must survive crashes);
        # its sync cost delays the invitations.
        sync_cost = self.config.storage_sync_cost
        if sync_cost > 0:
            yield self.sim.timeout(sync_cost)
        others = sorted(p for p in self.all_pids if p != self.pid)
        if self.tracer is not None:
            self.tracer.emit("vp.invite", pid=self.pid, vpid=new_id,
                             invited=others)
        accepted = {self.pid}
        previous_map = {self.pid: self._previous_info()}

        def accept(message) -> bool:
            # Runs at receipt time so the accept trace events and the
            # previous-map (§6 piggyback) carry per-arrival timestamps.
            if message.payload["id"] != new_id:
                return False
            acceptor = message.payload["from"]
            accepted.add(acceptor)
            previous_map[acceptor] = (
                message.payload["previous"],
                frozenset(message.payload["prev_accessible"]),
            )
            if self.tracer is not None:
                self.tracer.emit("vp.accept-recv", pid=self.pid,
                                 vpid=new_id, acceptor=acceptor)
            return True

        yield from self.processor.broadcast_collect(
            others, "newvp", {"id": new_id},
            reply_kind="vp-accept", window=self.config.invite_wait,
            accept=accept,
        )
        # Fig. 5 line 14: commit only if no higher id arrived meanwhile.
        if new_id != state.max_id:
            if self.tracer is not None:
                self.tracer.emit("vp.abandon", pid=self.pid, vpid=new_id,
                                 superseded_by=state.max_id)
            return
        if self.tracer is not None:
            self.tracer.emit("vp.commit", pid=self.pid, vpid=new_id,
                             view=sorted(accepted))
        self._commit_partition(new_id, accepted, previous_map)
        for pid in others:
            self.processor.send(pid, "commit", {
                "id": new_id,
                "view": sorted(accepted),
                "previous_map": dict(previous_map),
            })

    def _previous_info(self):
        """This processor's (previous partition, objects accessible there)."""
        state = self.state
        accessible = self.placement.accessible_objects(
            state.lview, self.processor.store.local_objects
        )
        return (state.cur_id, frozenset(accessible))

    def _commit_partition(self, vpid, view, previous_map) -> None:
        """Shared join path (initiator and acceptors): R5 lock + update.

        Fig. 5 lines 15–19 / Fig. 6 lines 13–19: assign, replace the
        locked set with the objects accessible in the new view that have
        local copies, and schedule Update-Copies-in-View.
        """
        state = self.state
        state.join(vpid, set(view), previous_map)
        self.metrics.vp_joined += 1
        self.on_partition_change()
        locked = self.placement.accessible_objects(
            state.lview, self.processor.store.local_objects
        )
        state.clear_locked()
        state.lock_objects(locked)
        self._schedule_update_copies()
