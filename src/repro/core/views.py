"""Copy placement, weights, and the accessibility test (rule R1).

``copies: L → P(P)`` from the paper, extended with the integer weights
that Example 2 and Gifford-style weighted voting need.  A logical object
is *accessible* from a view iff the copies on processors in the view
carry a strict majority of the object's total weight::

    accessible(l, A)  ⟺  2 * weight(copies of l on A)  >  total weight of l
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional


class CopyPlacement:
    """Where each logical object's copies live, and their weights."""

    def __init__(self):
        self._placement: Dict[str, Dict[int, int]] = {}
        self._sizes: Dict[str, int] = {}
        #: per-object placement epoch; absent entries are epoch 0, so a
        #: never-resharded placement carries no per-object state at all
        self._epochs: Dict[str, int] = {}
        #: migrations begun but not yet committed: {obj: new weights}
        self._pending: Dict[str, Dict[int, int]] = {}
        #: total number of committed placement flips (any object)
        self._flips: int = 0

    # -- declaration ------------------------------------------------------------

    def place(self, obj: str, holders: Mapping[int, int] | Iterable[int],
              size: int = 1,
              members: Optional[Iterable[int]] = None) -> None:
        """Declare the copies of ``obj``.

        ``holders`` is either a ``{pid: weight}`` mapping or an iterable
        of pids (all weight 1); holder order is preserved (policies put
        the primary copy first).  ``size`` is the transfer-cost unit
        used by the partition-initialization benchmarks.  With
        ``members`` given, every holder must be a known cluster member
        — a mistyped pid fails here with a clear message instead of as
        a bare ``KeyError`` deep in cluster setup.
        """
        weights = self._normalize(obj, holders)
        self._validate(obj, weights, size, members)
        self._placement[obj] = weights
        self._sizes[obj] = size

    def place_many(self, assignments: Mapping[str, Mapping[int, int]
                                              | Iterable[int]],
                   size: int = 1,
                   members: Optional[Iterable[int]] = None) -> None:
        """Declare many objects at once, all-or-nothing.

        Every assignment is validated *before* any is installed, so a
        bad entry cannot leave the placement half-built; all problems
        are reported together instead of one ``place`` failure at a
        time.  Each problem names its offending object, and holders are
        normalized exactly once so iterator-valued holder sets are not
        consumed by validation before install.
        """
        problems = []
        normalized: Dict[str, Dict[int, int]] = {}
        for obj, holders in assignments.items():
            try:
                weights = self._normalize(obj, holders)
                self._validate(obj, weights, size, members)
            except (KeyError, ValueError) as exc:
                problems.append(f"{obj!r}: {exc.args[0]}")
                continue
            normalized[obj] = weights
        if problems:
            if len(problems) == 1:
                raise ValueError(f"invalid placement for {problems[0]}")
            shown = "; ".join(problems[:5])
            more = len(problems) - 5
            suffix = f" (and {more} more)" if more > 0 else ""
            raise ValueError(
                f"invalid placement for {len(problems)} of "
                f"{len(assignments)} objects: {shown}{suffix}"
            )
        for obj, weights in normalized.items():
            self._placement[obj] = weights
            self._sizes[obj] = size

    def _validate(self, obj: str, weights: Dict[int, int],
                  size: int, members: Optional[Iterable[int]]) -> None:
        if obj in self._placement:
            raise KeyError(f"{obj!r} already placed")
        if size < 1:
            raise ValueError(f"size must be at least 1, got {size}")
        self._check_weights(obj, weights, members)

    def _check_weights(self, obj: str, weights: Dict[int, int],
                       members: Optional[Iterable[int]]) -> None:
        if not weights:
            raise ValueError(f"{obj!r} needs at least one copy")
        bad = sorted(p for p, w in weights.items() if w < 1)
        if bad:
            raise ValueError(
                f"copy weights must be positive integers; {obj!r} has "
                f"non-positive weights on processors {bad}"
            )
        if members is not None:
            known = set(members)
            strangers = sorted(set(weights) - known)
            if strangers:
                raise ValueError(
                    f"cannot place {obj!r} on {strangers}: not cluster "
                    f"members (cluster is {sorted(known)})"
                )

    @staticmethod
    def _normalize(obj: str,
                   holders: Mapping[int, int] | Iterable[int]
                   ) -> Dict[int, int]:
        try:
            if isinstance(holders, Mapping):
                return {int(p): int(w) for p, w in holders.items()}
            return {int(p): 1 for p in holders}
        except (TypeError, ValueError):
            raise ValueError(
                f"holders of {obj!r} must be processor ids (or a "
                f"pid->weight mapping), got {holders!r}"
            ) from None

    # -- online resharding (placement epochs) -------------------------------

    def epoch_of(self, obj: str) -> int:
        """The placement epoch of ``obj``: 0 at initial placement, +1 per
        committed migration flip.  Access-path stamps and cached routes
        compare against this to detect a concurrent reshard."""
        return self._epochs.get(obj, 0)

    @property
    def flips(self) -> int:
        """Total committed placement flips across all objects."""
        return self._flips

    def pending_copies(self, obj: str) -> set[int]:
        """Holders of a migration-in-progress target placement (empty set
        when no migration is pending for ``obj``)."""
        return set(self._pending.get(obj, ()))

    def begin_migration(self, obj: str,
                        holders: Mapping[int, int] | Iterable[int],
                        members: Optional[Iterable[int]] = None) -> None:
        """Stage a new placement for ``obj`` without routing on it yet.

        Reads and writes keep using the old entry; the staged holders
        only become visible through :meth:`pending_copies` (so installs
        on them are not flagged as orphan copies) until
        :meth:`commit_migration` flips the entry atomically.
        """
        self._weights(obj)  # must already be placed
        if obj in self._pending:
            raise KeyError(f"migration already pending for {obj!r}")
        weights = self._normalize(obj, holders)
        self._check_weights(obj, weights, members)
        self._pending[obj] = weights

    def abort_migration(self, obj: str) -> None:
        """Drop a staged migration (the old entry was never supplanted)."""
        self._pending.pop(obj, None)

    def commit_migration(self, obj: str) -> Mapping[int, int]:
        """Atomically flip ``obj`` to its staged placement.

        Bumps the object's placement epoch, which invalidates cached
        directory routes and fails rule-R4 stamp checks of transactions
        that accessed the old placement.  Returns the old weights (the
        caller retires the dropped copies).
        """
        try:
            new = self._pending.pop(obj)
        except KeyError:
            raise KeyError(f"no migration pending for {obj!r}") from None
        old = self._placement[obj]
        self._placement[obj] = new
        self._epochs[obj] = self._epochs.get(obj, 0) + 1
        self._flips += 1
        return old

    def replace(self, obj: str, holders: Mapping[int, int] | Iterable[int],
                members: Optional[Iterable[int]] = None, *,
                bump_epoch: bool = True) -> Mapping[int, int]:
        """Overwrite ``obj``'s entry in one step, no staging.

        ``bump_epoch=False`` is the deliberately *unguarded* flip used by
        the hunter's conviction canary: stale routes and stale R4 stamps
        go undetected, which the auditor must catch.  Returns the old
        weights.
        """
        old = self._weights(obj)
        weights = self._normalize(obj, holders)
        self._check_weights(obj, weights, members)
        self._pending.pop(obj, None)
        self._placement[obj] = weights
        if bump_epoch:
            self._epochs[obj] = self._epochs.get(obj, 0) + 1
        self._flips += 1
        return old

    # -- queries ------------------------------------------------------------

    @property
    def objects(self) -> set[str]:
        """All declared logical objects."""
        return set(self._placement)

    def copies(self, obj: str) -> set[int]:
        """The processors holding a copy of ``obj``."""
        return set(self._weights(obj))

    def weight(self, obj: str, pid: int) -> int:
        """The weight of ``pid``'s copy of ``obj`` (0 if it has none)."""
        return self._weights(obj).get(pid, 0)

    def weights(self, obj: str) -> Mapping[int, int]:
        """The full ``{pid: weight}`` entry for ``obj``.

        Returned as a read-only snapshot of the internal table (no copy
        on this hot path); callers that cache it must ``dict()`` it.
        """
        return self._weights(obj)

    def total_weight(self, obj: str) -> int:
        """Sum of all copy weights of ``obj``."""
        return sum(self._weights(obj).values())

    def size(self, obj: str) -> int:
        """Declared object size (cost unit for full-copy transfers)."""
        self._weights(obj)
        return self._sizes[obj]

    def accessible(self, obj: str, view: Iterable[int]) -> bool:
        """Rule R1's majority test: does ``view`` hold a weighted majority
        of the copies of ``obj``?"""
        members = set(view)
        weights = self._weights(obj)
        in_view = sum(w for p, w in weights.items() if p in members)
        return 2 * in_view > self.total_weight(obj)

    def accessible_objects(self, view: Iterable[int],
                           local: Iterable[str] | None = None) -> set[str]:
        """Objects accessible from ``view``; optionally intersected with a
        ``local`` object set (Fig. 5 line 18's locked-set computation)."""
        members = set(view)
        candidates = self.objects if local is None else set(local)
        return {
            obj for obj in candidates
            if obj in self._placement and self.accessible(obj, members)
        }

    def local_objects(self, pid: int) -> set[str]:
        """Objects with a copy on ``pid`` (Fig. 3's ``local``)."""
        return {obj for obj, weights in self._placement.items()
                if pid in weights}

    def holders_by_distance(self, obj: str, view: Iterable[int],
                            distance) -> list[int]:
        """Copy holders inside ``view``, nearest first (rule R2).

        ``distance(pid) -> float`` is supplied by the caller (usually the
        latency model's distance from the reading processor).  Ties break
        on pid for determinism.
        """
        members = set(view)
        candidates = [p for p in self._weights(obj) if p in members]
        return sorted(candidates, key=lambda p: (distance(p), p))

    # -- helpers -----------------------------------------------------------

    def _weights(self, obj: str) -> Dict[int, int]:
        try:
            return self._placement[obj]
        except KeyError:
            raise KeyError(f"unknown logical object {obj!r}") from None

    def __repr__(self) -> str:
        return f"CopyPlacement({len(self._placement)} objects)"
