"""Virtual partition identifiers and their total order (§5, Fig. 3).

A vp-id is a pair ``(n, p)`` of a sequence number and the creating
processor's id, ordered by::

    (n, p) ≺ (n', p')  ⟺  n < n'  ∨  (n = n' ∧ p < p')

The paper proves this order is a *legal creation order* (satisfies S3),
which is what lets Update-Copies-in-View identify the most recent value
of an object as the one with the largest date.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering


@total_ordering
@dataclass(frozen=True)
class VpId:
    """A globally unique, totally ordered virtual partition identifier."""

    n: int
    pid: int

    def __post_init__(self):
        if self.n < 0:
            raise ValueError(f"sequence number must be non-negative: {self.n}")

    def successor(self, pid: int) -> "VpId":
        """The id a processor ``pid`` generates after seeing this one
        (Fig. 4 line 4: ``(max-id.n + 1, myid)``)."""
        return VpId(self.n + 1, pid)

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, VpId):
            return NotImplemented
        return (self.n, self.pid) < (other.n, other.pid)

    def __repr__(self) -> str:
        return f"vp({self.n},{self.pid})"


def initial_vp_id(pid: int) -> VpId:
    """The id a freshly booted processor assigns itself (Fig. 3 line 3)."""
    return VpId(0, pid)
