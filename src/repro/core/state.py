"""The per-processor shared protocol state (Fig. 3).

Concrete variables and their relation to the paper's abstract
functions::

    defview(p)  =  assigned
    assigned    ⇒  vp(p) = cur_id  ∧  view(p) = lview

``max_id`` is kept durable (a crash-surviving cell): identifiers must
keep growing across crashes or a recovering processor could mint an
id it already used, breaking the total order's role as a creation
order.  When the processor's storage engine is supplied, the cell is
allocated from it — every bump is then a journalled, *forced* WAL
write (the paper's durable ``max-id`` made explicit, and one of the
protocol's forced-write cost points).  Everything else is volatile and
reset by a crash.

Critical sections (the ``< ... >`` brackets of the pseudocode) need no
explicit locks here: protocol tasks only interleave at ``yield`` points,
so any yield-free block is atomic — the implementation keeps every
bracketed region yield-free.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..node.storage import DurableCell
from ..sim import Notifier, Simulator
from .ids import VpId, initial_vp_id


class ReplicaState:
    """Fig. 3's shared variables, plus bookkeeping for §6 optimizations."""

    def __init__(self, pid: int, sim: Simulator, history=None, store=None):
        self.pid = pid
        self.sim = sim
        self.history = history
        #: optional :class:`~repro.obs.trace.Tracer`; None = no tracing
        self.tracer = None
        boot_id = initial_vp_id(pid)
        self.cur_id: VpId = boot_id
        # durable across crashes; journalled through the storage engine
        # when one is supplied (plain cell otherwise, e.g. in unit tests)
        if store is not None and hasattr(store, "durable_cell"):
            self._max_id = store.durable_cell("max-id", boot_id)
        else:
            self._max_id = DurableCell(boot_id)
        self.assigned: bool = True
        self.lview: Set[int] = {pid}
        self.locked: Set[str] = set()
        #: objects whose local copy is write-gated by an in-progress
        #: placement migration (reshard engine); reads stay allowed —
        #: the old copy is fresh until the flip — but writes must drain
        #: or abort so the installed copy cannot go stale unnoticed
        self.migrating: Set[str] = set()
        self.locked_changed = Notifier(sim, name=f"p{pid}.locked")
        self.partition_changed = Notifier(sim, name=f"p{pid}.partition")
        #: info distributed with the commit of the current partition:
        #: member pid -> (previous vp-id, objects accessible there)
        self.previous_map: Dict[int, tuple] = {}
        #: views of partitions this processor committed to (vpid -> view);
        #: used by the weakened-R4 validation
        self.view_history: Dict[VpId, frozenset] = {boot_id: frozenset({pid})}
        #: bumped on every join/depart so in-flight operations can detect
        #: that the partition changed under them
        self.epoch: int = 0
        if history is not None:
            history.record_join(time=sim.now, pid=pid, vpid=boot_id,
                                view={pid})

    # -- max-id (durable) ------------------------------------------------------

    @property
    def max_id(self) -> VpId:
        return self._max_id.value

    @max_id.setter
    def max_id(self, value: VpId) -> None:
        if value < self._max_id.value:
            raise ValueError(
                f"max_id must not decrease: {self._max_id.value} -> {value}"
            )
        self._max_id.value = value

    # -- partition membership ----------------------------------------------------

    def depart(self) -> None:
        """Leave the current partition (sets ``defview`` false).

        Departing is unilateral and requires no communication — the
        paper stresses a processor must be able to depart autonomously
        since it may no longer reach anyone.
        """
        if not self.assigned:
            return
        self.assigned = False
        self.epoch += 1
        self.partition_changed.notify_all()
        if self.history is not None:
            self.history.record_depart(time=self.sim.now, pid=self.pid,
                                       vpid=self.cur_id)
        if self.tracer is not None:
            self.tracer.emit("vp.depart", pid=self.pid, vpid=self.cur_id)

    def join(self, vpid: VpId, view: Set[int],
             previous_map: Optional[Dict[int, tuple]] = None) -> None:
        """Commit to partition ``vpid`` with the agreed ``view``."""
        if self.assigned:
            # S3: a processor departs before joining a new partition.
            self.depart()
        self.cur_id = vpid
        self.lview = set(view)
        self.assigned = True
        self.epoch += 1
        self.previous_map = dict(previous_map or {})
        self.partition_changed.notify_all()
        self.view_history[vpid] = frozenset(view)
        if self.history is not None:
            self.history.record_join(time=self.sim.now, pid=self.pid,
                                     vpid=vpid, view=view)
        if self.tracer is not None:
            self.tracer.emit("vp.join", pid=self.pid, vpid=vpid,
                             view=sorted(view))

    # -- the locked set (R5 gating) ---------------------------------------------

    def lock_objects(self, objects: Set[str]) -> None:
        """Mark objects awaiting Update-Copies; transactions must wait."""
        self.locked |= objects
        # waiters re-check their predicate; no spurious progress
        self.locked_changed.notify_all()

    def unlock_object(self, obj: str) -> None:
        """Release one object after its copy is up to date."""
        self.locked.discard(obj)
        self.locked_changed.notify_all()

    def clear_locked(self) -> None:
        self.locked.clear()
        self.locked_changed.notify_all()

    # -- the migrating set (reshard write gate) ---------------------------------

    def gate_migration(self, obj: str) -> None:
        """Write-gate ``obj`` while the reshard engine copies it."""
        self.migrating.add(obj)
        self.locked_changed.notify_all()

    def ungate_migration(self, obj: str) -> None:
        """Release the write gate after the flip (or an aborted move)."""
        self.migrating.discard(obj)
        self.locked_changed.notify_all()

    # -- crash/recover hooks ---------------------------------------------------

    def reset_volatile(self) -> None:
        """Crash: views and assignment are volatile and vanish."""
        if self.assigned and self.history is not None:
            self.history.record_depart(time=self.sim.now, pid=self.pid,
                                       vpid=self.cur_id)
        self.assigned = False
        self.lview = {self.pid}
        self.previous_map = {}
        self.epoch += 1
        self.migrating.clear()
        self.clear_locked()

    def reboot(self) -> None:
        """Recover: come up alone in a fresh trivial partition.

        The durable ``max_id`` guarantees the new identifier exceeds
        anything this processor used before the crash; probing then
        merges it with whoever is reachable.
        """
        fresh = self.max_id.successor(self.pid)
        self.max_id = fresh
        self.join(fresh, {self.pid})

    def __repr__(self) -> str:
        flag = "assigned" if self.assigned else "unassigned"
        return (f"ReplicaState(p{self.pid} {flag} cur={self.cur_id} "
                f"max={self.max_id} view={sorted(self.lview)})")
