"""Rules R1–R4: logical reads/writes and the physical access server.

Implements Figures 10 (``Logical-Read``), 11 (``Logical-Write``) and 12
(``Physical-Access``), integrated with strict two-phase locking on
copies (the concurrency control protocol assumed by §6's optimization
discussion) and a prepare round at commit so that rule R4 holds even
when a server joins a new partition after acknowledging an access —
without the prepare round, a coordinator whose own view never changed
could commit a transaction whose write was force-aborted elsewhere.

The mixin expects the protocol façade to provide: ``processor``,
``pid``, ``sim``, ``state``, ``placement``, ``directory``, ``config``,
``history``, ``locks``, ``metrics``, ``distance(pid)``, and
``create_new_vp()``.

Client-side routing (which copy do I read? which copies take the
write? is the object accessible from here?) goes through the
``directory``; server-side checks — the R4 vote and the weakened-R4
screen — stay on the authoritative ``placement``, because a vote must
not depend on the voter's cache temperature.
"""

from __future__ import annotations

from typing import Any

from ..node.processor import NoResponse
from .errors import AccessAborted

#: payload reasons a server may reject a physical access with
REJECT_WRONG_PARTITION = "wrong-partition"
REJECT_LOCK_TIMEOUT = "lock-timeout"
REJECT_POISONED = "txn-poisoned"
#: the request was routed on a placement epoch that a concurrent
#: reshard has since flipped (or reached a processor that retired its
#: copy): the client must abort and retry on the new placement
REJECT_STALE_PLACEMENT = "stale-placement"


class AccessMixin:
    """Client-side logical operations + server-side physical access."""

    # ------------------------------------------------------------------
    # client side: Fig. 10 — Logical-Read
    # ------------------------------------------------------------------

    def logical_read(self, obj: str, ctx):
        """Read the nearest available copy of ``obj`` (rules R1 + R2)."""
        self.metrics.logical_reads += 1
        state = self.state
        if not (state.assigned and self.directory.accessible(obj, state.lview)):
            self.metrics.abort("r", "inaccessible")
            raise AccessAborted(obj, "inaccessible")
        candidates = self.directory.read_candidates(
            obj, state.lview, self.distance
        )
        if not candidates:
            self.metrics.abort("r", "no-copy-in-view")
            raise AccessAborted(obj, "no copy in view")
        vpid = state.cur_id
        # R4 stamp: remember which placement epoch this access routed
        # on; servers reject mismatches and the commit vote re-checks.
        ctx.placement_epochs[obj] = self.directory.route_epoch(obj)
        attempts = candidates if self.config.read_retry else candidates[:1]
        last_reason = "no-response"
        for server in attempts:
            try:
                response = yield from self._read_rpc(obj, server, vpid, ctx)
            except NoResponse:
                last_reason = "no-response"
                if state.cur_id != vpid or not state.assigned:
                    break
                continue  # R2: retry the next-nearest copy
            payload = response.payload
            if payload["ok"]:
                value = payload["value"]
                self.history.record_logical(
                    time=self.sim.now, txn=ctx.txn_id, kind="r", obj=obj,
                    value=value, version=payload["version"],
                )
                if self.auditor is not None:
                    self.auditor.on_logical_access(
                        time=self.sim.now, pid=self.pid, txn=ctx.txn_id,
                        kind="r", obj=obj, vpid=vpid, targets=(server,),
                        epoch=ctx.placement_epochs.get(obj, 0),
                    )
                ctx.note_access("r", obj, server, vpid)
                ctx.read_versions[obj] = (payload["version"], self.sim.now)
                return value
            last_reason = payload["reason"]
            if last_reason != REJECT_LOCK_TIMEOUT:
                break  # partition mismatch: retrying elsewhere won't help
            break  # lock timeout = probable deadlock; abort to break it
        if last_reason == "no-response":
            # Fig. 10 line 5: a silent copy means the view is stale —
            # unless the view already changed while the read was in
            # flight: then the silence is explained by the transition
            # (servers hold accesses while copies are locked), a
            # successor partition already exists, and minting another
            # would churn views under steady retry load.
            if state.assigned and state.cur_id == vpid:
                self.create_new_vp()
        self.metrics.abort("r", last_reason)
        raise AccessAborted(obj, last_reason)

    def _read_rpc(self, obj: str, server: int, vpid, ctx):
        if server == self.pid:
            self.metrics.local_reads += 1
        self.metrics.physical_read_rpcs += 1
        response = yield from self.processor.rpc(
            server, "read",
            {"obj": obj, "v": vpid, "txn": ctx.txn_id,
             "ts": ctx.timestamp,
             "pe": ctx.placement_epochs.get(obj, 0)},
            timeout=self.config.access_timeout,
        )
        return response

    # ------------------------------------------------------------------
    # client side: Fig. 11 — Logical-Write
    # ------------------------------------------------------------------

    def logical_write(self, obj: str, value: Any, ctx):
        """Write every copy of ``obj`` in the view (rules R1 + R3)."""
        self.metrics.logical_writes += 1
        state = self.state
        if not (state.assigned and self.directory.accessible(obj, state.lview)):
            self.metrics.abort("w", "inaccessible")
            raise AccessAborted(obj, "inaccessible")
        vpid = state.cur_id
        version = ctx.next_version()
        ctx.placement_epochs[obj] = self.directory.route_epoch(obj)
        route_epoch = ctx.placement_epochs[obj]
        targets, call = self.processor.scatter_to_copies(
            self.directory, obj, state.lview, "write",
            lambda _server: {"obj": obj, "value": value, "v": vpid,
                             "txn": ctx.txn_id, "ts": ctx.timestamp,
                             "version": version, "pe": route_epoch},
            timeout=self.config.access_timeout,
            label=f"write({obj})",
        )
        self.metrics.physical_write_rpcs += len(targets)
        results = yield from call.gather()
        outcomes = []
        for server in targets:
            reply = results[server]
            if reply is None:
                outcomes.append(("no-response", server))
            elif reply["ok"]:
                outcomes.append(("ok", server))
            else:
                outcomes.append((reply["reason"], server))
        failures = [o for o in outcomes if o[0] != "ok"]
        if failures:
            reason = failures[0][0]
            if reason == "no-response":
                # Fig. 11 line 8: an unresponsive copy triggers a new
                # VP — but only when the view is still the one the
                # write was issued in (see logical_read: silence during
                # a transition is stale evidence, not a new failure).
                if state.assigned and state.cur_id == vpid:
                    self.create_new_vp()
            for status, server in outcomes:
                if status == "ok":
                    ctx.note_access("w", obj, server, vpid)
            ctx.poison(f"write {obj!r} failed at "
                       f"{sorted(s for _, s in failures)}: {reason}")
            self.metrics.abort("w", reason)
            raise AccessAborted(obj, reason)
        for _status, server in outcomes:
            ctx.note_access("w", obj, server, vpid)
        self.history.record_logical(
            time=self.sim.now, txn=ctx.txn_id, kind="w", obj=obj,
            value=value, version=version,
        )
        if self.auditor is not None:
            self.auditor.on_logical_access(
                time=self.sim.now, pid=self.pid, txn=ctx.txn_id,
                kind="w", obj=obj, vpid=vpid, targets=tuple(targets),
                epoch=route_epoch,
            )
        return None

    # ------------------------------------------------------------------
    # commit protocol (R4 validation + decision distribution)
    # ------------------------------------------------------------------
    # The whole atomic-commit phase lives in the pluggable backend
    # (``self.commit``, a :class:`~repro.commit.base.AtomicCommit`
    # chosen by ``ProtocolConfig.commit_backend``): the prepare round,
    # the decision log, the decide fan-out, and in-doubt resolution.
    # The host keeps what is replica-control business — the R4 vote,
    # before-images, poisoning, and decision application.

    def prepare_commit(self, ctx):
        """Validate R4 across all participants (one voting round)."""
        return self.commit.prepare_commit(ctx)

    def end_transaction(self, ctx, outcome: str):
        """Distribute the decision; participants release locks (strict
        2PL)."""
        return self.commit.end_transaction(ctx, outcome)

    def available(self, obj: str, write: bool) -> bool:
        """R1 as a pure predicate (reads and writes gate identically)."""
        return (self.state.assigned
                and self.directory.accessible(obj, self.state.lview))

    # ------------------------------------------------------------------
    # server side: Fig. 12 — Physical-Access
    # ------------------------------------------------------------------

    def serve_physical_access(self):
        """Dispatcher task: one handler process per incoming request.

        Reads and writes are the host's; everything else comes from
        the commit backend's ``handlers()`` map, whose registration
        order fixes both mailbox creation and polling order (the 2PC
        backend reproduces the historical prepare/release/txn-status
        sequence exactly — the golden trace pin depends on it).
        """
        read_box = self.processor.mailbox("read")
        write_box = self.processor.mailbox("write")
        commit_handlers = dict(self.commit.handlers())
        commit_boxes = {kind: self.processor.mailbox(kind)
                        for kind in commit_handlers}
        while True:
            gets = {
                "read": read_box.get(),
                "write": write_box.get(),
            }
            for kind, box in commit_boxes.items():
                gets[kind] = box.get()
            fired = yield self.sim.any_of(list(gets.values()))
            for kind, get in gets.items():
                if get in fired:
                    message = fired[get]
                    if kind == "read":
                        self.processor.spawn("serve-read",
                                             self._handle_read(message))
                    elif kind == "write":
                        self.processor.spawn("serve-write",
                                             self._handle_write(message))
                    else:
                        commit_handlers[kind](message)

    def _handle_read(self, message):
        payload = message.payload
        obj, vpid, txn = payload["obj"], payload["v"], payload["txn"]
        state = self.state
        # Fig. 12: wait until (l not in locked) — the R5 gate.
        yield from state.locked_changed.wait_for(
            lambda: obj not in state.locked
        )
        if not (state.assigned and vpid == state.cur_id):
            self.processor.reply(message, "read-reply",
                                 {"ok": False,
                                  "reason": REJECT_WRONG_PARTITION})
            return
        if self._placement_stale(obj, payload):
            self.processor.reply(message, "read-reply",
                                 {"ok": False,
                                  "reason": REJECT_STALE_PLACEMENT})
            return
        granted, cc_reason = yield from self.cc.begin_read(
            txn, payload.get("ts"), obj)
        if not granted:
            self.processor.reply(message, "read-reply",
                                 {"ok": False,
                                  "reason": cc_reason or REJECT_LOCK_TIMEOUT})
            return
        if not (state.assigned and vpid == state.cur_id):
            # The partition changed while we waited for the lock.
            self.processor.reply(message, "read-reply",
                                 {"ok": False,
                                  "reason": REJECT_WRONG_PARTITION})
            return
        if self._placement_stale(obj, payload):
            # A reshard flipped the placement while we waited for the
            # lock; the abort releases it (strict 2PL).
            self.processor.reply(message, "read-reply",
                                 {"ok": False,
                                  "reason": REJECT_STALE_PLACEMENT})
            return
        value, date = self.processor.store.read(obj)
        version = self.processor.store.version(obj)
        self.history.record_physical(
            time=self.sim.now, txn=txn, kind="r", obj=obj,
            copy_pid=self.pid, value=value, version=version, vpid=vpid,
        )
        if self.auditor is not None:
            self.auditor.on_physical_access(
                time=self.sim.now, pid=self.pid, txn=txn, kind="r",
                obj=obj, vpid=vpid, state=state,
            )
        self.processor.reply(message, "read-reply",
                             {"ok": True, "value": value, "date": date,
                              "version": version})

    def _handle_write(self, message):
        payload = message.payload
        obj, vpid, txn = payload["obj"], payload["v"], payload["txn"]
        value, version = payload["value"], payload["version"]
        state = self.state
        # Writes additionally wait out the reshard write gate: the §6
        # catch-up installing the new copy must see a quiescent value.
        yield from state.locked_changed.wait_for(
            lambda: obj not in state.locked and obj not in state.migrating
        )
        if not (state.assigned and vpid == state.cur_id):
            self.processor.reply(message, "write-reply",
                                 {"ok": False,
                                  "reason": REJECT_WRONG_PARTITION})
            return
        if self._placement_stale(obj, payload):
            self.processor.reply(message, "write-reply",
                                 {"ok": False,
                                  "reason": REJECT_STALE_PLACEMENT})
            return
        granted, cc_reason = yield from self.cc.begin_write(
            txn, payload.get("ts"), obj)
        if not granted:
            self.processor.reply(message, "write-reply",
                                 {"ok": False,
                                  "reason": cc_reason or REJECT_LOCK_TIMEOUT})
            return
        if not (state.assigned and vpid == state.cur_id):
            self.processor.reply(message, "write-reply",
                                 {"ok": False,
                                  "reason": REJECT_WRONG_PARTITION})
            return
        if (obj in state.migrating or self.placement.pending_copies(obj)
                or self._placement_stale(obj, payload)):
            # The gate closed (or the flip landed) while we waited for
            # the lock: letting this write through would miss the copy
            # just installed elsewhere.  Reject; the abort releases the
            # lock and the client retries on the new placement.  The
            # pending-migration fence backs up the volatile gate: a
            # holder that crashed and recovered mid-migration forgets
            # ``migrating``, but the staged placement still names the
            # object until the flip, so no write slips in through the
            # amnesia window.
            self.processor.reply(message, "write-reply",
                                 {"ok": False,
                                  "reason": REJECT_STALE_PLACEMENT})
            return
        if txn in self._poisoned_txns:
            self.processor.reply(message, "write-reply",
                                 {"ok": False, "reason": REJECT_POISONED})
            return
        images = self._before_images.setdefault(txn, {})
        store = self.processor.store
        old_date = store.date(obj)
        if obj not in images:
            old_value, _ = store.peek(obj)
            images[obj] = (old_value, old_date, store.version(obj))
        # Fig. 12 lines 11-12: value(l) <- val; date(l) <- cur-id —
        # refined per §6 with a within-partition write counter, so the
        # log catch-up can tell apart (and correctly order) multiple
        # writes carrying the same partition identifier.  Strict 2PL
        # orders writes of one object identically at every copy, so the
        # counters agree across up-to-date copies.
        if (isinstance(old_date, tuple) and len(old_date) == 2
                and old_date[0] == state.cur_id):
            new_date = (state.cur_id, old_date[1] + 1)
        else:
            new_date = (state.cur_id, 1)
        store.write(obj, value, new_date, version)
        self.history.record_physical(
            time=self.sim.now, txn=txn, kind="w", obj=obj,
            copy_pid=self.pid, value=value, version=version, vpid=vpid,
        )
        if self.auditor is not None:
            self.auditor.on_physical_access(
                time=self.sim.now, pid=self.pid, txn=txn, kind="w",
                obj=obj, vpid=vpid, state=state,
            )
        # Durability cost model: the write's journal append must land
        # before the copy acknowledges.  The write is already visible
        # locally (strict 2PL holds the lock), so only the ack waits.
        append_cost = self.config.storage_append_cost
        if append_cost > 0:
            yield self.sim.timeout(append_cost)
        self.processor.reply(message, "write-reply", {"ok": True})

    def _placement_stale(self, obj: str, payload) -> bool:
        """Was this physical access routed on a flipped placement?

        Requests carry the placement epoch they routed on (``pe``, 0
        when the object was never resharded, matching requests from
        older payloads); a mismatch against the authoritative map — or
        a request reaching a processor whose copy was retired — means a
        reshard flip won the race and the access must not be served.
        """
        return (payload.get("pe", 0) != self.placement.epoch_of(obj)
                or not self.processor.store.holds(obj))

    def _vote(self, txn, payload) -> str | None:
        """R4 vote; None means yes, otherwise the refusal reason."""
        state = self.state
        if txn in self._poisoned_txns:
            return REJECT_POISONED
        # Placement-epoch stamp check (the reshard arm of rule R4): a
        # transaction that read or wrote on a placement a migration has
        # since flipped must abort — its writes missed the new copy,
        # its reads may have used a retired one.
        stamps = payload.get("epochs") or {}
        for obj in payload["objects"]:
            if self.placement.epoch_of(obj) != stamps.get(obj, 0):
                return REJECT_STALE_PLACEMENT
        if state.assigned and state.cur_id in payload["vpids"]:
            return None  # still in a partition the transaction used
        if not self.config.weakened_r4:
            return REJECT_WRONG_PARTITION
        if not state.assigned:
            return REJECT_WRONG_PARTITION
        # Weakened R4 (§6): conditions (1) and (2) on the current view.
        objects_ok = all(
            self.placement.accessible(obj, state.lview)
            for obj in payload["objects"]
        )
        participants_ok = set(payload["participants"]) <= state.lview
        if objects_ok and participants_ok:
            return None
        return REJECT_WRONG_PARTITION

    def _apply_decision(self, txn, outcome: str) -> None:
        if outcome == "abort":
            images = self._before_images.pop(txn, {})
            for obj, (value, date, version) in images.items():
                # the holds() guard: a reshard may have retired this
                # copy after the transaction resolved here but before
                # the (delayed) decide reached us — nothing to restore
                if self.processor.store.holds(obj):
                    self.processor.store.install(obj, value, date, version)
        else:
            written = self._before_images.pop(txn, {})
            # the commit fan-out doubles as lease invalidation: every
            # copy holder (and the coordinator) applies the decision,
            # so any lease it granted on the object is now stale
            if written and self.lease_table is not None:
                for obj in written:
                    self.lease_table.invalidate(obj)
            if written and self.auditor is not None:
                for obj in sorted(written):
                    if not self.processor.store.holds(obj):
                        continue  # copy retired by a reshard meanwhile
                    self.auditor.on_committed_write(
                        time=self.sim.now, pid=self.pid, obj=obj,
                        version=self.processor.store.version(obj),
                    )
        self.commit.note_resolved(txn)
        self._poisoned_txns.discard(txn)
        if self.auditor is not None:
            self.auditor.on_decision_applied(self.sim.now, self.pid, txn,
                                             outcome)
        self.cc.finish(txn, outcome)

    def _audit_decision(self, txn, outcome: str) -> None:
        if self.auditor is not None:
            self.auditor.on_decision(self.sim.now, self.pid, txn, outcome)

    # ------------------------------------------------------------------
    # partition-change effects on transactions (rule R4, strict mode)
    # ------------------------------------------------------------------

    def on_partition_change(self) -> None:
        """Called on every join: strict R4 force-aborts local participants.

        Their writes are rolled back and their locks dropped so the new
        partition's Update-Copies sees clean copies; the transactions'
        coordinators learn about it at prepare time.  In weakened mode
        locks survive — condition (3) is honoured by recovery reads
        taking shared locks.

        Exception: a transaction we voted yes for in the prepare round
        is *in-doubt* — the coordinator may have committed it and the
        decide message may simply be lost, so rolling it back here
        could erase a committed write that a later majority (without
        any up-to-date copy) would then never see.  In-doubt
        transactions keep their locks and writes; a resolver task
        queries the coordinator's decision log until it learns the
        outcome.  Recovery cannot ship their values meanwhile: the
        vpread gate refuses write-locked copies.
        """
        if self.config.weakened_r4:
            # Weakened mode lets transactions ride through view
            # changes; lost decides are still caught by the per-vote
            # watchdog, which fires only after the coordinator must
            # have decided — so no commit-bound transaction is ceded.
            return
        # Strict mode: resolve in-doubt transactions right away.  An
        # undecided 2PC coordinator cedes the abort (its txn-status
        # handler), which is the classic strict-R4 force-abort made
        # atomic; a Paxos resolver decides from the acceptors instead.
        for txn in sorted(self.commit.in_doubt, key=repr):
            self.commit.kick_resolver(txn)
        for txn in sorted(self.cc.active_txns(), key=repr):
            if txn in self.commit.in_doubt:
                continue
            self._poisoned_txns.add(txn)
            self._apply_decision(txn, "abort")
            self._poisoned_txns.add(txn)

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------

    def _has_in_doubt_write(self, obj: str) -> bool:
        """Does the local copy of ``obj`` carry a prepared, undecided write?

        While it does, the copy's date must not be treated as
        authoritative: the write may yet be undone (abort) or may be the
        only surviving committed value (commit).  Recovery consults this
        because CC locks are volatile — after a crash the lock table is
        empty but the in-doubt write (force-written with its prepare
        record) is still on the copy.
        """
        return any(
            obj in self._before_images.get(txn, {})
            for txn in self.commit.in_doubt
        )

    def _weakened_ok_locally(self, ctx) -> bool:
        """Coordinator-side weakened-R4 screen (participants re-check)."""
        if not self.config.weakened_r4:
            return False
        state = self.state
        if not state.assigned:
            return False
        objects_ok = all(
            self.placement.accessible(obj, state.lview)
            for obj in ctx.objects
        )
        return objects_ok and ctx.participants <= state.lview
