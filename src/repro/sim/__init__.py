"""Deterministic discrete-event simulation kernel.

The substrate on which the whole reproduction runs: a seeded,
wall-clock-free event loop with generator-based processes, cancellable
composite waits, paper-style restartable timers, and FIFO mailboxes.
"""

from .errors import (
    EmptySchedule,
    Interrupt,
    ProcessCrashed,
    SimulationError,
    StopSimulation,
)
from .events import NORMAL, URGENT, AllOf, AnyOf, Condition, ConditionValue, Event, Timeout
from .kernel import Simulator
from .process import Process
from .queues import GetEvent, MessageQueue
from .rng import RandomStreams
from .sync import Notifier
from .timers import Timer

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "EmptySchedule",
    "Event",
    "GetEvent",
    "Interrupt",
    "MessageQueue",
    "NORMAL",
    "Notifier",
    "Process",
    "ProcessCrashed",
    "RandomStreams",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Timeout",
    "Timer",
    "URGENT",
]
