"""Seeded, named random substreams.

Every stochastic component (latency model, failure injector, workload
generator, ...) draws from its own named substream derived from one
master seed.  Adding a component or reordering draws in one component
therefore never perturbs the randomness seen by another — the property
that makes cross-protocol comparisons paired and runs replayable.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def _derive(master_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of independent :class:`random.Random` substreams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The substream for ``name`` (created on first use)."""
        if name not in self._streams:
            self._streams[name] = random.Random(_derive(self.master_seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of this one's."""
        return RandomStreams(_derive(self.master_seed, f"fork:{name}"))

    def __repr__(self) -> str:
        return f"RandomStreams(master_seed={self.master_seed})"
