"""Condition-style synchronization: re-armable wait/notify.

Used to implement the paper's ``wait until (l not in locked)`` (Fig. 12)
without busy waiting: waiters park on a :class:`Notifier` and are all
released whenever the guarded state changes, then re-check their
predicate.
"""

from __future__ import annotations

from .events import Event


class Notifier:
    """A broadcast point: many waiters, released together on notify."""

    __slots__ = ("sim", "name", "_waiters", "_wait_name")

    def __init__(self, sim, name: str = "notifier"):
        self.sim = sim
        self.name = name
        self._waiters: list[Event] = []
        # precomputed once — waits recur on every lock-contention loop
        self._wait_name = f"{name}.wait"

    def wait(self) -> Event:
        """An event that fires at the next :meth:`notify_all`."""
        event = Event(self.sim, self._wait_name)
        self._waiters.append(event)
        return event

    def notify_all(self) -> None:
        """Release every current waiter (new waits queue afresh)."""
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()

    def wait_for(self, predicate):
        """Generator: resume only once ``predicate()`` is true.

        Use as ``yield from notifier.wait_for(lambda: l not in locked)``.
        The predicate is rechecked after every notification.
        """
        while not predicate():
            yield self.wait()

    @property
    def waiting(self) -> int:
        """Number of parked waiters (for tests and metrics)."""
        return len(self._waiters)
