"""FIFO message queues with cancellable blocking gets.

Mailboxes are the rendezvous between the network and the protocol
tasks.  ``get()`` returns an event; if an item is already queued the
event fires at the current instant, otherwise the caller is enqueued as
a waiter.  A waiter can be *cancelled* (e.g. when it loses an ``AnyOf``
race against a timer) in which case it never consumes an item — without
this, select-style loops would silently eat messages.

``put_inline`` is the macro-event variant of ``put``: it wakes the
oldest live waiter *inside the current dispatch* via
:meth:`Simulator.fire_inline` instead of scheduling a heap event, so a
batched envelope can drain all of its messages in one wakeup.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from .events import _PENDING, Event

_new = object.__new__


class GetEvent(Event):
    """A pending ``get`` on a :class:`MessageQueue`."""

    __slots__ = ("_queue",)

    def __init__(self, queue: "MessageQueue"):
        # the ".get" suffix is precomputed once per queue — gets are
        # issued on every receive, so no per-event string formatting
        self.sim = queue.sim
        self.name = queue._get_name
        self.callbacks = None
        self._value = _PENDING
        # _ok is pre-set: MessageQueue.put's inlined succeed relies on
        # it (a pending get only ever succeeds)
        self._ok = True
        self._processed = False
        self._cancelled = False
        self._slot = -1
        self._queue = queue

    def cancel(self) -> None:
        if self._value is not _PENDING:
            if not self._processed and not self._cancelled:
                # The get already consumed an item but lost a composite
                # race before delivery: un-consume.  The item returns to
                # the FRONT of the queue so FIFO order is preserved, and
                # the event is marked cancelled so the kernel skips it.
                self._queue._items.appendleft(self._value)
                self.callbacks = None
                self._cancelled = True
                sim = self.sim
                sim._slots[self._slot] = None
                count = sim._cancelled_count + 1
                sim._cancelled_count = count
                if count >= sim._compact_min and count * 2 > len(sim._queue):
                    sim._compact()
            return
        try:
            self._queue._waiters.remove(self)
        except ValueError:
            pass
        self.callbacks = None


class MessageQueue:
    """Unbounded FIFO of items with event-based consumption."""

    __slots__ = ("sim", "name", "_get_name", "_items", "_waiters")

    def __init__(self, sim, name: str = "queue"):
        self.sim = sim
        self.name = name
        self._get_name = f"{name}.get"
        self._items: deque[Any] = deque()
        self._waiters: list[GetEvent] = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest live waiter, if any."""
        waiters = self._waiters
        while waiters:
            waiter = waiters.pop(0)
            if waiter._value is _PENDING:
                # inlined waiter.succeed(item): puts run on every
                # message delivery (``_ok`` is already True on a
                # pending get)
                waiter._value = item
                sim = self.sim
                seq = sim._seq
                sim._seq = seq + 1
                free = sim._free
                if free:
                    slot = free.pop()
                    sim._slots[slot] = waiter
                else:
                    slot = len(sim._slots)
                    sim._slots.append(waiter)
                waiter._slot = slot
                sim._ready.append((sim._now, (1 << 53) | (seq << 1), slot))
                return
        self._items.append(item)

    def put_inline(self, item: Any) -> bool:
        """Deposit ``item``, waking the oldest live waiter *within the
        current dispatch* (see :meth:`Simulator.fire_inline`) instead of
        scheduling a wakeup event.  Falls back to queueing the item when
        no live waiter exists.  Returns True iff a waiter fired inline.
        """
        waiters = self._waiters
        fire = self.sim.fire_inline
        while waiters:
            waiter = waiters.pop(0)
            if waiter._value is _PENDING and fire(waiter, item):
                return True
        self._items.append(item)
        return False

    def get(self) -> GetEvent:
        """An event that fires with the next item."""
        # Inlined GetEvent.__init__ (kept in lock-step with the class):
        # a get is issued on every receive-loop iteration.
        event = _new(GetEvent)
        event.sim = self.sim
        event.name = self._get_name
        event.callbacks = None
        event._value = _PENDING
        event._ok = True
        event._processed = False
        event._cancelled = False
        event._slot = -1
        event._queue = self
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._waiters.append(event)
        return event

    def get_matching(self, predicate: Callable[[Any], bool]) -> Optional[Any]:
        """Synchronously remove and return the first queued item matching
        ``predicate``, or ``None`` if no queued item matches."""
        for index, item in enumerate(self._items):
            if predicate(item):
                del self._items[index]
                return item
        return None

    def clear(self) -> None:
        """Drop queued items and orphan all waiters (used on crash)."""
        self._items.clear()
        for waiter in self._waiters:
            if waiter._value is _PENDING:
                waiter.callbacks = None
        self._waiters.clear()

    def peek_all(self) -> list[Any]:
        """Snapshot of queued items (for assertions in tests)."""
        return list(self._items)
