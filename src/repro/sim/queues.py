"""FIFO message queues with cancellable blocking gets.

Mailboxes are the rendezvous between the network and the protocol
tasks.  ``get()`` returns an event; if an item is already queued the
event fires at the current instant, otherwise the caller is enqueued as
a waiter.  A waiter can be *cancelled* (e.g. when it loses an ``AnyOf``
race against a timer) in which case it never consumes an item — without
this, select-style loops would silently eat messages.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from .events import Event


class GetEvent(Event):
    """A pending ``get`` on a :class:`MessageQueue`."""

    __slots__ = ("_queue",)

    def __init__(self, queue: "MessageQueue"):
        # the ".get" suffix is precomputed once per queue — gets are
        # issued on every receive, so no per-event string formatting
        super().__init__(queue.sim, name=queue._get_name)
        self._queue = queue

    def cancel(self) -> None:
        if self.triggered:
            if not self.processed and not self._cancelled:
                # The get already consumed an item but lost a composite
                # race before delivery: un-consume.  The item returns to
                # the FRONT of the queue so FIFO order is preserved, and
                # the event is marked cancelled so the kernel skips it.
                self._queue._items.appendleft(self.value)
                self.callbacks = []
                self._cancelled = True
                self.sim._note_cancelled()
            return
        try:
            self._queue._waiters.remove(self)
        except ValueError:
            pass
        super().cancel()


class MessageQueue:
    """Unbounded FIFO of items with event-based consumption."""

    __slots__ = ("sim", "name", "_get_name", "_items", "_waiters")

    def __init__(self, sim, name: str = "queue"):
        self.sim = sim
        self.name = name
        self._get_name = f"{name}.get"
        self._items: deque[Any] = deque()
        self._waiters: list[GetEvent] = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest live waiter, if any."""
        while self._waiters:
            waiter = self._waiters.pop(0)
            if not waiter.triggered:
                waiter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> GetEvent:
        """An event that fires with the next item."""
        event = GetEvent(self)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._waiters.append(event)
        return event

    def get_matching(self, predicate: Callable[[Any], bool]) -> Optional[Any]:
        """Synchronously remove and return the first queued item matching
        ``predicate``, or ``None`` if no queued item matches."""
        for index, item in enumerate(self._items):
            if predicate(item):
                del self._items[index]
                return item
        return None

    def clear(self) -> None:
        """Drop queued items and orphan all waiters (used on crash)."""
        self._items.clear()
        for waiter in self._waiters:
            if not waiter.triggered:
                waiter.callbacks = []
        self._waiters.clear()

    def peek_all(self) -> list[Any]:
        """Snapshot of queued items (for assertions in tests)."""
        return list(self._items)
