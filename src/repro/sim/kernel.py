"""The deterministic discrete-event simulation core.

All model time is a float; ties are broken by ``(time, priority,
sequence-number)`` so that two runs with the same seed replay the exact
same interleaving.  There is no wall-clock anywhere in the kernel, which
is what makes adversarially timed failure injection reproducible.

The dispatch loop is the hottest code in the repository — every message
hop, timer, and lock grant passes through it — so the scheduled queue
uses a *flat encoding* instead of object-per-entry bookkeeping:

* the heap holds packed ``(time, key, slot)`` tuples, where ``key``
  folds the priority, the sequence number, and the entry kind into one
  integer (``priority << 53 | seq << 1 | kind`` — the kind bit never
  influences ordering because sequence numbers are unique, so the total
  order is still exactly ``(time, priority, seq)`` in one comparison);
* ``slot`` indexes a preallocated slot table (``_slots``) holding the
  event views; retired slots go on a free list and are reused, so the
  table stops growing once the run reaches steady state;
* the kind bit tags entries whose value is materialized at pop time
  (timeouts), so dispatch never attribute-probes the event class;
* cancellation clears the slot (``_slots[i] = None``) — the dispatch
  loop skips dead slots lazily, and once they pile up past the
  compaction threshold the heap is rebuilt without them (pop order is
  unaffected: it is fixed by the entry tuples, not the heap layout);
* *same-instant* NORMAL-priority triggers (message deliveries,
  condition wins, process completions — the majority of all entries in
  a message-passing workload) skip the heap entirely: they land on the
  ``_ready`` FIFO, which is sorted by construction — the clock never
  moves backwards and sequence numbers only grow, so appends arrive in
  ``(time, key)`` order — and the dispatch loop merges the FIFO with
  the heap by comparing their heads.  An O(1) append/popleft replaces
  an O(log n) sift for roughly half of all scheduling traffic.

Events themselves are thin slotted views (see :mod:`repro.sim.events`):
no per-event name formatting, no callback-list allocation until a
second callback actually arrives.  None of this changes observable
semantics: dispatch order is the total order ``(time, priority, seq)``.
"""

from __future__ import annotations

import heapq
from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Optional

from .errors import EmptySchedule, ProcessCrashed, StopSimulation
from .events import _PENDING, AllOf, AnyOf, Event, Timeout
from .process import EventGenerator, Process

#: default lazy-deletion compaction threshold: rebuild the heap once at
#: least this many cancelled entries linger *and* they outnumber live
#: ones (constructor knob ``compact_min`` overrides per instance)
_COMPACT_MIN = 512

#: heap-entry ``kind`` tags
_KIND_PLAIN = 0    #: value already set; just run callbacks
_KIND_DELAYED = 1  #: timeout: materialize the held-aside value at pop

_new = object.__new__


class Simulator:
    """Event queue, clock, and process factory."""

    __slots__ = ("_now", "_queue", "_ready", "_seq", "_slots", "_free",
                 "_active_process", "_pending_crashes", "_cancelled_count",
                 "_compact_min", "strict", "crashes", "dispatched",
                 "fired_inline", "trace_hook")

    def __init__(self, start: float = 0.0, compact_min: int = _COMPACT_MIN):
        if compact_min < 0:
            raise ValueError(f"negative compact_min: {compact_min}")
        self._now = float(start)
        #: packed schedule: (time, priority<<53|seq<<1|kind, slot) tuples
        self._queue: list[tuple[float, int, int]] = []
        #: same-instant NORMAL-priority entries, sorted by construction
        #: (appends happen in (time, key) order); merged with the heap
        #: at dispatch by comparing heads
        self._ready: deque[tuple[float, int, int]] = deque()
        self._seq = 0
        #: slot table: scheduled event views; None marks a cancelled or
        #: vacant slot awaiting reuse through the free list
        self._slots: list[Optional[Event]] = []
        self._free: list[int] = []
        self._active_process: Optional[Process] = None
        self._pending_crashes: list[ProcessCrashed] = []
        #: cancelled entries still sitting in the heap (lazy deletion)
        self._cancelled_count = 0
        #: rebuild threshold — 0 compacts as soon as cancelled entries
        #: hold the majority, a huge value never compacts (pure lazy)
        self._compact_min = compact_min
        #: if False, crashed processes are recorded but do not abort run()
        self.strict = True
        self.crashes: list[ProcessCrashed] = []
        #: total events dispatched by this simulator (deterministic for a
        #: seeded run; the numerator of every events/sec measurement)
        self.dispatched = 0
        #: events fired *inside* another dispatch by macro-event
        #: delivery (:meth:`fire_inline`) — they never touch the heap
        self.fired_inline = 0
        #: optional dispatch hook ``(time, event) -> None`` for tracing;
        #: None (the default) costs one attribute check per step
        self.trace_hook: Optional[Any] = None

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current model time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories -----------------------------------------------------

    def event(self, name: str = "") -> Event:
        """A fresh untriggered one-shot event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """An event firing ``delay`` units from now."""
        # Inlined Timeout.__init__ (kept in lock-step with events.py):
        # timeouts are allocated on every message hop and retry loop,
        # so the factory skips the constructor frame.
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = _new(Timeout)
        event.sim = self
        event.name = name
        event.callbacks = None
        event._value = _PENDING
        event._processed = False
        event._cancelled = False
        event.delay = delay
        event._delayed_value = value
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            slot = free.pop()
            self._slots[slot] = event
        else:
            slot = len(self._slots)
            self._slots.append(event)
        event._slot = slot
        heappush(self._queue,
                 (self._now + delay, (1 << 53) | (seq << 1) | 1, slot))
        return event

    def process(self, generator: EventGenerator, name: str = "") -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name)

    def any_of(self, events) -> AnyOf:
        """Composite event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events) -> AllOf:
        """Composite event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling ------------------------------------------------------------

    def _push(self, event: Event, when: float, priority: int,
              kind: int) -> None:
        """Reserve a slot for ``event`` and push its packed entry.

        The hot constructors (``Event.succeed``, ``Timeout.__init__``)
        inline this; it exists for cold paths and subclasses.
        """
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            slot = free.pop()
            self._slots[slot] = event
        else:
            slot = len(self._slots)
            self._slots.append(event)
        event._slot = slot
        heappush(self._queue,
                 (when, (priority << 53) | (seq << 1) | kind, slot))

    def _cancel_slot(self, slot: int) -> None:
        """Clear a scheduled entry's slot (lazy deletion) and compact
        the heap once dead entries dominate.  The hot cancellation
        sites (timeouts, queue gets) inline the clear-and-count part
        and only call :meth:`_compact` past the threshold."""
        self._slots[slot] = None
        count = self._cancelled_count + 1
        self._cancelled_count = count
        if count >= self._compact_min and count * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap (and the ready FIFO) without cancelled
        entries, freeing their slots.  In-place (``queue[:] = live``)
        so the dispatch loop's local aliases stay valid; pop order is
        unaffected — it is fixed by the entry tuples, not the heap
        layout, and filtering the FIFO preserves its sort."""
        queue = self._queue
        slots = self._slots
        free_append = self._free.append
        live = []
        live_append = live.append
        for entry in queue:
            if slots[entry[2]] is None:
                free_append(entry[2])
            else:
                live_append(entry)
        queue[:] = live
        heapify(queue)
        ready = self._ready
        if ready:
            survivors = []
            for entry in ready:
                if slots[entry[2]] is None:
                    free_append(entry[2])
                else:
                    survivors.append(entry)
            if len(survivors) != len(ready):
                ready.clear()
                ready.extend(survivors)
        self._cancelled_count = 0

    def _report_crash(self, crash: ProcessCrashed) -> None:
        self.crashes.append(crash)
        if self.strict:
            self._pending_crashes.append(crash)

    # -- execution ------------------------------------------------------------

    def _pop_live(self):
        """Pop the next live ``(entry, event, from_ready)``, merging the
        heap with the ready FIFO and discarding cancelled slots, or
        ``None`` when both are empty.  The popped entry's slot stays
        reserved — callers either dispatch (and free) it or push the
        entry back untouched (``peek``, horizon overshoot)."""
        queue = self._queue
        ready = self._ready
        slots = self._slots
        free = self._free
        while True:
            if ready:
                if queue and queue[0] < ready[0]:
                    entry = heappop(queue)
                    from_ready = False
                else:
                    entry = ready.popleft()
                    from_ready = True
            elif queue:
                entry = heappop(queue)
                from_ready = False
            else:
                return None
            event = slots[entry[2]]
            if event is None:
                free.append(entry[2])
                self._cancelled_count -= 1
                continue
            return entry, event, from_ready

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        popped = self._pop_live()
        if popped is None:
            return float("inf")
        entry, _event, from_ready = popped
        if from_ready:
            self._ready.appendleft(entry)
        else:
            heappush(self._queue, entry)
        return entry[0]

    def _run_callbacks(self, event: Event) -> None:
        """Process one event that is already triggered and due: run its
        callbacks (or surface an unhandled failure)."""
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        if callbacks is not None:
            if callbacks.__class__ is list:
                for callback in callbacks:
                    callback(event)
            else:
                callbacks(event)
        elif not event._ok and not getattr(event, "_defused", False):
            # A failure nobody waited for: surface it.
            value = event._value
            if isinstance(value, BaseException):
                raise value
            raise RuntimeError(f"unhandled failed event {event!r}: {value!r}")

    def fire_inline(self, event: Event, value: Any = None) -> bool:
        """Trigger a pending ``event`` and process it *now*, inside the
        current dispatch — the macro-event primitive.

        Used by batched envelope delivery: all messages carried by one
        envelope wake their waiters within the envelope's single
        dispatch instead of costing one heap entry (and one dispatch)
        each.  Returns False without side effects if the event already
        triggered or was cancelled.  The clock does not move and
        :attr:`dispatched` does not count it; :attr:`fired_inline` does.
        """
        if event._value is not _PENDING or event._cancelled:
            return False
        event._ok = True
        event._value = value
        self.fired_inline += 1
        if self.trace_hook is not None:
            self.trace_hook(self._now, event)
        self._run_callbacks(event)
        return True

    def step(self) -> None:
        """Process exactly one event."""
        popped = self._pop_live()
        if popped is None:
            raise EmptySchedule("event queue is empty")
        entry, event, _from_ready = popped
        self._slots[entry[2]] = None
        self._free.append(entry[2])
        self._now = entry[0]
        self.dispatched += 1
        if self.trace_hook is not None:
            self.trace_hook(entry[0], event)
        if entry[1] & 1 == _KIND_DELAYED and event._value is _PENDING:
            event._ok = True
            event._value = event._delayed_value
        self._run_callbacks(event)
        if self._pending_crashes:
            raise self._pending_crashes.pop(0)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until a horizon time, an event fires, or the queue empties.

        * ``until`` is a number: stop when the clock would pass it.
        * ``until`` is an :class:`Event`: stop when it fires and return
          its value (a failed event re-raises its exception).
        * ``until`` is ``None``: run until no events remain.
        """
        stop_event: Optional[Event] = None
        horizon = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                raise RuntimeError(f"{until!r} already processed")
            stop_event.add_callback(self._stop_on)
        elif until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"horizon {horizon} is in the past (now={self._now})"
                )

        # The dispatch loop proper.  Everything reachable per iteration
        # is a local: the heap (compaction mutates it in place, so the
        # alias stays valid), the slot table, the free list, and the
        # heap primitives.  ``dispatched`` accumulates locally and is
        # flushed on every exit path.
        queue = self._queue
        ready = self._ready
        ready_popleft = ready.popleft
        slots = self._slots
        free_append = self._free.append
        pending_crashes = self._pending_crashes
        pop = heappop
        pending = _PENDING
        steps = 0
        try:
            while True:
                # Merge the ready FIFO with the heap: both are sorted,
                # so the smaller head is the global minimum.
                if ready:
                    if queue and queue[0] < ready[0]:
                        entry = pop(queue)
                    else:
                        entry = ready_popleft()
                elif queue:
                    entry = pop(queue)
                else:
                    break
                when, key, slot = entry
                event = slots[slot]
                if event is None:
                    free_append(slot)
                    self._cancelled_count -= 1
                    continue
                if when > horizon:
                    # Not due yet: put it back for the next run() call
                    # (the slot stays reserved).  Only heap entries can
                    # overshoot — FIFO entries fire at or before `now`,
                    # which never exceeds the horizon.
                    heappush(queue, entry)
                    self._now = horizon
                    return None
                slots[slot] = None
                free_append(slot)
                self._now = when
                steps += 1
                trace = self.trace_hook
                if trace is not None:
                    trace(when, event)
                if key & 1 and event._value is pending:  # delayed kind
                    event._ok = True
                    event._value = event._delayed_value
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                if callbacks is not None:
                    if callbacks.__class__ is list:
                        for callback in callbacks:
                            callback(event)
                    else:
                        callbacks(event)
                elif not event._ok and not getattr(event, "_defused", False):
                    value = event._value
                    if isinstance(value, BaseException):
                        raise value
                    raise RuntimeError(
                        f"unhandled failed event {event!r}: {value!r}"
                    )
                if pending_crashes:
                    raise pending_crashes.pop(0)
            # Queue empty.
            if stop_event is not None:
                raise EmptySchedule(
                    f"queue empty before {stop_event!r} fired"
                )
            if horizon != float("inf"):
                # Advance to the horizon even with nothing left to do,
                # so callers composing successive run(until=t) calls
                # never act "in the past".
                self._now = horizon
            return None
        except StopSimulation as stop:
            if (stop_event is not None and stop_event.triggered
                    and not stop_event.ok):
                raise stop_event.value from None
            return stop.value
        finally:
            self.dispatched += steps

    def _stop_on(self, event: Event) -> None:
        if not event.ok:
            event.defuse()
        raise StopSimulation(event.value)


# re-exported for introspection/tests; heapq is the only dependency the
# flat encoding leans on
__all__ = ["Simulator", "_COMPACT_MIN"]
assert heapq  # keep the module import alive for monkeypatching tests
