"""The deterministic discrete-event simulation core.

All model time is a float; ties are broken by ``(time, priority,
sequence-number)`` so that two runs with the same seed replay the exact
same interleaving.  There is no wall-clock anywhere in the kernel, which
is what makes adversarially timed failure injection reproducible.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Optional

from .errors import EmptySchedule, ProcessCrashed, StopSimulation
from .events import NORMAL, AllOf, AnyOf, Event, Timeout
from .process import EventGenerator, Process


class Simulator:
    """Event queue, clock, and process factory."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = count()
        self._active_process: Optional[Process] = None
        self._pending_crashes: list[ProcessCrashed] = []
        #: if False, crashed processes are recorded but do not abort run()
        self.strict = True
        self.crashes: list[ProcessCrashed] = []
        #: optional dispatch hook ``(time, event) -> None`` for tracing;
        #: None (the default) costs one attribute check per step
        self.trace_hook: Optional[Any] = None

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current model time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories -----------------------------------------------------

    def event(self, name: str = "") -> Event:
        """A fresh untriggered one-shot event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """An event firing ``delay`` units from now."""
        return Timeout(self, delay, value, name)

    def process(self, generator: EventGenerator, name: str = "") -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name)

    def any_of(self, events) -> AnyOf:
        """Composite event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events) -> AllOf:
        """Composite event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling ------------------------------------------------------------

    def _schedule(self, event: Event, priority: int = NORMAL,
                  delay: float = 0.0) -> None:
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._seq), event)
        )

    def _report_crash(self, crash: ProcessCrashed) -> None:
        self.crashes.append(crash)
        if self.strict:
            self._pending_crashes.append(crash)

    # -- execution ------------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        while self._queue:
            when, _, _, event = self._queue[0]
            if getattr(event, "_cancelled", False):
                heapq.heappop(self._queue)
                continue
            return when
        return float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        while True:
            try:
                when, _, _, event = heapq.heappop(self._queue)
            except IndexError:
                raise EmptySchedule("event queue is empty") from None
            if not getattr(event, "_cancelled", False):
                break
        self._now = when
        if self.trace_hook is not None:
            self.trace_hook(when, event)
        materialize = getattr(event, "_materialize", None)
        if materialize is not None:
            materialize()
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        if callbacks:
            for callback in callbacks:
                callback(event)
        elif not event._ok and not event._defused:
            # A failure nobody waited for: surface it.
            value = event.value
            if isinstance(value, BaseException):
                raise value
            raise RuntimeError(f"unhandled failed event {event!r}: {value!r}")
        if self._pending_crashes:
            crash = self._pending_crashes.pop(0)
            raise crash

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until a horizon time, an event fires, or the queue empties.

        * ``until`` is a number: stop when the clock would pass it.
        * ``until`` is an :class:`Event`: stop when it fires and return
          its value (a failed event re-raises its exception).
        * ``until`` is ``None``: run until no events remain.
        """
        stop_event: Optional[Event] = None
        horizon = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                raise RuntimeError(f"{until!r} already processed")
            stop_event.add_callback(self._stop_on)
        elif until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"horizon {horizon} is in the past (now={self._now})"
                )

        try:
            while True:
                upcoming = self.peek()
                if upcoming == float("inf"):
                    if stop_event is not None:
                        raise EmptySchedule(
                            f"queue empty before {stop_event!r} fired"
                        )
                    if horizon != float("inf"):
                        # Advance to the horizon even with nothing left to
                        # do, so callers composing successive run(until=t)
                        # calls never act "in the past".
                        self._now = horizon
                    break
                if upcoming > horizon:
                    self._now = horizon
                    break
                self.step()
        except StopSimulation as stop:
            if (stop_event is not None and stop_event.triggered
                    and not stop_event.ok):
                raise stop_event.value from None
            return stop.value
        if stop_event is not None and stop_event.triggered:
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        return None

    def _stop_on(self, event: Event) -> None:
        if not event.ok:
            event.defuse()
        raise StopSimulation(event.value if event.ok else None)
