"""The deterministic discrete-event simulation core.

All model time is a float; ties are broken by ``(time, priority,
sequence-number)`` so that two runs with the same seed replay the exact
same interleaving.  There is no wall-clock anywhere in the kernel, which
is what makes adversarially timed failure injection reproducible.

The dispatch loop is the hottest code in the repository — every message
hop, timer, and lock grant passes through it — so it is written for
speed: one heap pop per dispatched event (no peek-then-pop), direct
slot-attribute reads instead of ``getattr`` probes, and lazy deletion
of cancelled entries with periodic compaction so a churn-heavy run
(thousands of cancelled timers) does not drag dead weight through every
``heappush``.  None of this changes observable semantics: dispatch
order is the total order ``(time, priority, seq)``, which is
independent of the heap's internal arrangement.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Optional

from .errors import EmptySchedule, ProcessCrashed, StopSimulation
from .events import NORMAL, AllOf, AnyOf, Event, Timeout
from .process import EventGenerator, Process

#: lazy-deletion compaction thresholds: rebuild the heap once at least
#: this many cancelled entries linger *and* they outnumber live ones
_COMPACT_MIN = 512


class Simulator:
    """Event queue, clock, and process factory."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = count()
        self._active_process: Optional[Process] = None
        self._pending_crashes: list[ProcessCrashed] = []
        #: cancelled entries still sitting in the heap (lazy deletion)
        self._cancelled_count = 0
        #: if False, crashed processes are recorded but do not abort run()
        self.strict = True
        self.crashes: list[ProcessCrashed] = []
        #: total events dispatched by this simulator (deterministic for a
        #: seeded run; the numerator of every events/sec measurement)
        self.dispatched = 0
        #: optional dispatch hook ``(time, event) -> None`` for tracing;
        #: None (the default) costs one attribute check per step
        self.trace_hook: Optional[Any] = None

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current model time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories -----------------------------------------------------

    def event(self, name: str = "") -> Event:
        """A fresh untriggered one-shot event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """An event firing ``delay`` units from now."""
        return Timeout(self, delay, value, name)

    def process(self, generator: EventGenerator, name: str = "") -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name)

    def any_of(self, events) -> AnyOf:
        """Composite event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events) -> AllOf:
        """Composite event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling ------------------------------------------------------------

    def _schedule(self, event: Event, priority: int = NORMAL,
                  delay: float = 0.0) -> None:
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._seq), event)
        )

    def _note_cancelled(self) -> None:
        """Called by events that mark themselves cancelled while still
        scheduled.  Cancelled entries are skipped lazily at pop time;
        once they pile up past the compaction threshold the heap is
        rebuilt without them (pop order is unaffected — it is fixed by
        the entry tuples, not the heap layout)."""
        self._cancelled_count += 1
        if (self._cancelled_count >= _COMPACT_MIN
                and self._cancelled_count * 2 > len(self._queue)):
            self._queue = [entry for entry in self._queue
                           if not entry[3]._cancelled]
            heapq.heapify(self._queue)
            self._cancelled_count = 0

    def _report_crash(self, crash: ProcessCrashed) -> None:
        self.crashes.append(crash)
        if self.strict:
            self._pending_crashes.append(crash)

    # -- execution ------------------------------------------------------------

    def _pop_next(self) -> Optional[tuple[float, int, int, Event]]:
        """Pop and return the next live entry, discarding cancelled
        ones, or ``None`` when the queue is empty.  This is the single
        place the cancelled-event skip rule lives; ``run``, ``step``,
        and ``peek`` all go through it."""
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            if entry[3]._cancelled:
                self._cancelled_count -= 1
                continue
            return entry
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        entry = self._pop_next()
        if entry is None:
            return float("inf")
        heapq.heappush(self._queue, entry)
        return entry[0]

    def _dispatch(self, when: float, event: Event) -> None:
        """Advance the clock to ``when`` and process one popped event."""
        self._now = when
        self.dispatched += 1
        if self.trace_hook is not None:
            self.trace_hook(when, event)
        if event._delayed:
            event._materialize()
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        if callbacks:
            for callback in callbacks:
                callback(event)
        elif not event._ok and not event._defused:
            # A failure nobody waited for: surface it.
            value = event._value
            if isinstance(value, BaseException):
                raise value
            raise RuntimeError(f"unhandled failed event {event!r}: {value!r}")
        if self._pending_crashes:
            crash = self._pending_crashes.pop(0)
            raise crash

    def step(self) -> None:
        """Process exactly one event."""
        entry = self._pop_next()
        if entry is None:
            raise EmptySchedule("event queue is empty")
        self._dispatch(entry[0], entry[3])

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until a horizon time, an event fires, or the queue empties.

        * ``until`` is a number: stop when the clock would pass it.
        * ``until`` is an :class:`Event`: stop when it fires and return
          its value (a failed event re-raises its exception).
        * ``until`` is ``None``: run until no events remain.
        """
        stop_event: Optional[Event] = None
        horizon = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                raise RuntimeError(f"{until!r} already processed")
            stop_event.add_callback(self._stop_on)
        elif until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"horizon {horizon} is in the past (now={self._now})"
                )

        pop_next = self._pop_next
        dispatch = self._dispatch
        try:
            while True:
                entry = pop_next()
                if entry is None:
                    if stop_event is not None:
                        raise EmptySchedule(
                            f"queue empty before {stop_event!r} fired"
                        )
                    if horizon != float("inf"):
                        # Advance to the horizon even with nothing left to
                        # do, so callers composing successive run(until=t)
                        # calls never act "in the past".
                        self._now = horizon
                    break
                when = entry[0]
                if when > horizon:
                    # Not due yet: put it back for the next run() call.
                    heapq.heappush(self._queue, entry)
                    self._now = horizon
                    break
                dispatch(when, entry[3])
        except StopSimulation as stop:
            if (stop_event is not None and stop_event.triggered
                    and not stop_event.ok):
                raise stop_event.value from None
            return stop.value
        if stop_event is not None and stop_event.triggered:
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        return None

    def _stop_on(self, event: Event) -> None:
        if not event.ok:
            event.defuse()
        raise StopSimulation(event.value if event.ok else None)
