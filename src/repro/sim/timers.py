"""Restartable timers with the paper's ``set`` / ``reset`` interface.

The protocol pseudocode (Figures 5–8) uses timers of the form::

    var T: Timer;
    T.set(3 * delta);        -- arm (or re-arm) for a duration
    ...
    select from
        receive(...)  -> ... T.reset; ...
        T.timeout     -> ...

:class:`Timer` reproduces those semantics on top of cancellable
:class:`~repro.sim.events.Timeout` events.  ``wait()`` returns an event
that fires at the *current* expiry; re-arming invalidates outstanding
waits (they never fire), exactly like re-setting a hardware timer.
"""

from __future__ import annotations

from heapq import heappush
from typing import Optional

from .events import _PENDING, Event, Timeout


class _TimerGate(Event):
    """The event a :meth:`Timer.wait` hands out.

    Cancelling the gate (e.g. when it loses an ``AnyOf`` race) also
    cancels the underlying :class:`Timeout` so it does not linger in
    the kernel heap.  A dedicated slotted subclass replaces the old
    per-instance ``gate.cancel`` monkeypatch, which ``__slots__`` on
    :class:`Event` no longer permits — and its ``_relay`` bound method
    replaces a per-wait closure.
    """

    __slots__ = ("_timeout", "_timer", "_generation")

    def __init__(self, sim, timer: "Timer", timeout: Timeout,
                 name: str = ""):
        self.sim = sim
        self.name = name
        self.callbacks = None
        self._value = _PENDING
        self._processed = False
        self._cancelled = False
        self._slot = -1
        self._timeout = timeout
        self._timer = timer
        self._generation = timer._generation

    def _relay(self, _event) -> None:
        # Fires only if the arming that created this wait is still the
        # current one — re-arming invalidates outstanding waits.
        if (self._timer._generation == self._generation
                and self._value is _PENDING):
            self.succeed(self._timer)

    def cancel(self) -> None:
        # Inlined Timeout.cancel: gates are cancelled on every lost
        # select race, i.e. on nearly every receive-loop iteration.
        timeout = self._timeout
        if not (timeout._processed or timeout._cancelled):
            timeout.callbacks = None
            timeout._cancelled = True
            sim = timeout.sim
            sim._slots[timeout._slot] = None
            count = sim._cancelled_count + 1
            sim._cancelled_count = count
            if count >= sim._compact_min and count * 2 > len(sim._queue):
                sim._compact()
        if self._value is _PENDING:
            self.callbacks = None
            # A cancelled gate lost its race and nobody can hear it
            # any more: hand it back to the timer for the next wait().
            self._timer._spare_gate = self


class Timer:
    """A one-shot, re-armable countdown."""

    __slots__ = ("sim", "name", "_generation", "_pending", "_expiry",
                 "_spare", "_spare_gate", "_never_name", "_timeout_name",
                 "_gate_name")

    def __init__(self, sim, name: str = "timer"):
        self.sim = sim
        self.name = name
        self._generation = 0
        self._pending: Optional[Timeout] = None
        self._expiry: Optional[float] = None
        #: a cancelled-but-never-fired Timeout from a previous wait,
        #: recycled by the next wait() — timers lose their races on
        #: nearly every receive-loop iteration, so this turns the per
        #: wait Timeout allocation into a field reset.  Safe because
        #: the Timeout is private to the timer: only the gate (which
        #: detached at cancel) and the kernel's dead heap entry (slot
        #: already cleared) ever referenced it.
        self._spare: Optional[Timeout] = None
        #: likewise for the gate handed out by the lost wait — it was
        #: cancelled, so its holder (the losing AnyOf) is done with it
        self._spare_gate: Optional[_TimerGate] = None
        # precomputed once per timer — wait() runs on every receive
        # loop iteration, so no per-wait string formatting
        self._never_name = f"{name}.never"
        self._timeout_name = f"{name}.timeout"
        self._gate_name = f"{name}.gate"

    @property
    def armed(self) -> bool:
        """True while a countdown is in progress."""
        return (self._expiry is not None
                and self._expiry > self.sim.now)

    @property
    def expiry(self) -> Optional[float]:
        """Absolute expiry time, or ``None`` when disarmed."""
        return self._expiry if self.armed else None

    def set(self, duration: float) -> None:
        """Arm (or re-arm) the timer to fire ``duration`` from now."""
        if duration < 0:
            raise ValueError(f"negative timer duration {duration}")
        # Inlined _invalidate: set() runs once per receive-loop
        # iteration, and in the common case the pending Timeout was
        # already cancelled when its gate lost the select race — skip
        # the cancel() call entirely then.
        self._generation += 1
        pending = self._pending
        if pending is not None:
            if not (pending._processed or pending._cancelled):
                pending.cancel()
            if pending._cancelled and pending._value is _PENDING:
                self._spare = pending
            self._pending = None
        self._expiry = self.sim._now + duration

    def reset(self) -> None:
        """Disarm the timer; outstanding waits never fire."""
        self._invalidate()
        self._expiry = None

    def wait(self) -> Event:
        """An event that fires when the *current* arming expires.

        Waiting on a disarmed timer returns an event that never fires
        (callers combine it with other sources via ``AnyOf``).
        """
        sim = self.sim
        expiry = self._expiry
        if expiry is None or expiry <= sim._now:
            return Event(sim, self._never_name)
        spare = self._spare
        if spare is not None and spare._cancelled:
            # Re-arm the recycled Timeout: reset its one-shot state and
            # push a fresh packed entry (the old heap entry's slot was
            # cleared at cancel, so it pops as dead).
            self._spare = None
            spare._cancelled = False
            spare.callbacks = None
            spare.delay = expiry - sim._now
            seq = sim._seq
            sim._seq = seq + 1
            free = sim._free
            if free:
                slot = free.pop()
                sim._slots[slot] = spare
            else:
                slot = len(sim._slots)
                sim._slots.append(spare)
            spare._slot = slot
            heappush(sim._queue, (expiry, (1 << 53) | (seq << 1) | 1, slot))
            timeout = spare
        else:
            timeout = Timeout(sim, expiry - sim._now,
                              name=self._timeout_name)
        self._pending = timeout
        gate = self._spare_gate
        if gate is not None and gate._value is _PENDING:
            self._spare_gate = None
            gate._timeout = timeout
            gate._generation = self._generation
        else:
            gate = _TimerGate(sim, self, timeout, name=self._gate_name)
        timeout.callbacks = gate._relay
        return gate

    def _invalidate(self) -> None:
        self._generation += 1
        pending = self._pending
        if pending is not None:
            if not pending._processed:
                pending.cancel()
            if pending._cancelled and pending._value is _PENDING:
                self._spare = pending
            self._pending = None
