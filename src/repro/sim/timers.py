"""Restartable timers with the paper's ``set`` / ``reset`` interface.

The protocol pseudocode (Figures 5–8) uses timers of the form::

    var T: Timer;
    T.set(3 * delta);        -- arm (or re-arm) for a duration
    ...
    select from
        receive(...)  -> ... T.reset; ...
        T.timeout     -> ...

:class:`Timer` reproduces those semantics on top of cancellable
:class:`~repro.sim.events.Timeout` events.  ``wait()`` returns an event
that fires at the *current* expiry; re-arming invalidates outstanding
waits (they never fire), exactly like re-setting a hardware timer.
"""

from __future__ import annotations

from typing import Optional

from .events import Event, Timeout


class _TimerGate(Event):
    """The event a :meth:`Timer.wait` hands out.

    Cancelling the gate (e.g. when it loses an ``AnyOf`` race) also
    cancels the underlying :class:`Timeout` so it does not linger in
    the kernel heap.  A dedicated slotted subclass replaces the old
    per-instance ``gate.cancel`` monkeypatch, which ``__slots__`` on
    :class:`Event` no longer permits — and its ``_relay`` bound method
    replaces a per-wait closure.
    """

    __slots__ = ("_timeout", "_timer", "_generation")

    def __init__(self, sim, timer: "Timer", timeout: Timeout,
                 name: str = ""):
        super().__init__(sim, name)
        self._timeout = timeout
        self._timer = timer
        self._generation = timer._generation

    def _relay(self, _event) -> None:
        # Fires only if the arming that created this wait is still the
        # current one — re-arming invalidates outstanding waits.
        if (self._timer._generation == self._generation
                and not self.triggered):
            self.succeed(self._timer)

    def cancel(self) -> None:
        self._timeout.cancel()
        super().cancel()


class Timer:
    """A one-shot, re-armable countdown."""

    __slots__ = ("sim", "name", "_generation", "_pending", "_expiry")

    def __init__(self, sim, name: str = "timer"):
        self.sim = sim
        self.name = name
        self._generation = 0
        self._pending: Optional[Timeout] = None
        self._expiry: Optional[float] = None

    @property
    def armed(self) -> bool:
        """True while a countdown is in progress."""
        return (self._expiry is not None
                and self._expiry > self.sim.now)

    @property
    def expiry(self) -> Optional[float]:
        """Absolute expiry time, or ``None`` when disarmed."""
        return self._expiry if self.armed else None

    def set(self, duration: float) -> None:
        """Arm (or re-arm) the timer to fire ``duration`` from now."""
        if duration < 0:
            raise ValueError(f"negative timer duration {duration}")
        self._invalidate()
        self._expiry = self.sim.now + duration

    def reset(self) -> None:
        """Disarm the timer; outstanding waits never fire."""
        self._invalidate()
        self._expiry = None

    def wait(self) -> Event:
        """An event that fires when the *current* arming expires.

        Waiting on a disarmed timer returns an event that never fires
        (callers combine it with other sources via ``AnyOf``).
        """
        if not self.armed:
            return self.sim.event(name=f"{self.name}.never")
        timeout = Timeout(
            self.sim, self._expiry - self.sim.now,
            name=f"{self.name}.timeout",
        )
        self._pending = timeout
        gate = _TimerGate(self.sim, self, timeout, name=f"{self.name}.gate")
        timeout.add_callback(gate._relay)
        return gate

    def _invalidate(self) -> None:
        self._generation += 1
        if self._pending is not None and not self._pending.processed:
            self._pending.cancel()
        self._pending = None
