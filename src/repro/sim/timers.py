"""Restartable timers with the paper's ``set`` / ``reset`` interface.

The protocol pseudocode (Figures 5–8) uses timers of the form::

    var T: Timer;
    T.set(3 * delta);        -- arm (or re-arm) for a duration
    ...
    select from
        receive(...)  -> ... T.reset; ...
        T.timeout     -> ...

:class:`Timer` reproduces those semantics on top of cancellable
:class:`~repro.sim.events.Timeout` events.  ``wait()`` returns an event
that fires at the *current* expiry; re-arming invalidates outstanding
waits (they never fire), exactly like re-setting a hardware timer.
"""

from __future__ import annotations

from typing import Optional

from .events import Event, Timeout


class Timer:
    """A one-shot, re-armable countdown."""

    def __init__(self, sim, name: str = "timer"):
        self.sim = sim
        self.name = name
        self._generation = 0
        self._pending: Optional[Timeout] = None
        self._expiry: Optional[float] = None

    @property
    def armed(self) -> bool:
        """True while a countdown is in progress."""
        return (self._expiry is not None
                and self._expiry > self.sim.now)

    @property
    def expiry(self) -> Optional[float]:
        """Absolute expiry time, or ``None`` when disarmed."""
        return self._expiry if self.armed else None

    def set(self, duration: float) -> None:
        """Arm (or re-arm) the timer to fire ``duration`` from now."""
        if duration < 0:
            raise ValueError(f"negative timer duration {duration}")
        self._invalidate()
        self._expiry = self.sim.now + duration

    def reset(self) -> None:
        """Disarm the timer; outstanding waits never fire."""
        self._invalidate()
        self._expiry = None

    def wait(self) -> Event:
        """An event that fires when the *current* arming expires.

        Waiting on a disarmed timer returns an event that never fires
        (callers combine it with other sources via ``AnyOf``).
        """
        if not self.armed:
            return self.sim.event(name=f"{self.name}.never")
        generation = self._generation
        timeout = Timeout(
            self.sim, self._expiry - self.sim.now,
            name=f"{self.name}.timeout",
        )
        self._pending = timeout
        gate = self.sim.event(name=f"{self.name}.gate")

        def relay(_event, timer=self, gen=generation, out=gate):
            if timer._generation == gen and not out.triggered:
                out.succeed(timer)

        timeout.add_callback(relay)
        original_cancel = gate.cancel

        def cancel_both(t=timeout, orig=original_cancel):
            t.cancel()
            orig()

        gate.cancel = cancel_both  # type: ignore[method-assign]
        return gate

    def _invalidate(self) -> None:
        self._generation += 1
        if self._pending is not None and not self._pending.processed:
            self._pending.cancel()
        self._pending = None
