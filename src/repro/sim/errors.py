"""Exception types raised by the simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` early.

    User code may raise it from inside a process to stop the whole
    simulation at the current instant.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class EmptySchedule(SimulationError):
    """The event queue ran dry before the requested horizon."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed by the interrupter.
    """

    def __init__(self, cause=None):
        super().__init__(cause)

    @property
    def cause(self):
        return self.args[0]


class ProcessCrashed(SimulationError):
    """A process terminated with an unhandled exception.

    Wraps the original exception so the simulation loop can surface the
    failure at the ``run()`` call site instead of losing it.
    """

    def __init__(self, process, original: BaseException):
        super().__init__(f"process {process!r} crashed: {original!r}")
        self.process = process
        self.original = original
