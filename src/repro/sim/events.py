"""One-shot events: the unit of synchronization in the kernel.

An :class:`Event` moves through three states:

* *pending* — created, not yet triggered;
* *triggered* — a value (or exception) has been set and the event is
  scheduled for processing;
* *processed* — its callbacks have run.

Processes wait on events by ``yield``-ing them (see
:mod:`repro.sim.process`).  Composite events (:class:`AnyOf`,
:class:`AllOf`) let a process wait on several sources at once; losers
that support cancellation (e.g. queue gets, timers) are cancelled so
they do not fire later and steal items.

Events are allocated on every message hop, timer, and lock wait, so
they are deliberately *thin views* over the kernel's flat schedule:

* ``callbacks`` is polymorphic — ``None`` (none yet), a bare callable
  (the overwhelmingly common single-waiter case), or a list.  Most
  events never allocate a callback list at all.
* ``_slot`` is the event's index in the kernel slot table while an
  entry for it sits in the heap; cancellation clears the slot instead
  of touching the heap.
* names default to ``""`` and are only formatted on demand (``repr``);
  the hot paths never build f-strings.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Iterable, Optional

#: Scheduling priorities. Lower value runs first at equal timestamps.
URGENT = 0
NORMAL = 1

#: packed heap key layout: ``priority << 53 | seq << 1 | kind``.  The
#: kind bit (1 = delayed-value timeout) never affects ordering because
#: sequence numbers are unique, so one integer comparison reproduces
#: the (priority, seq) lexicographic order exactly.
_KEY_SHIFT = 53

_PENDING = object()


class Event:
    """A one-shot occurrence that callbacks and processes can wait on."""

    __slots__ = ("sim", "name", "callbacks", "_value", "_ok",
                 "_processed", "_defused", "_cancelled", "_slot")

    def __init__(self, sim, name: str = ""):
        self.sim = sim
        self.name = name
        #: None | callable | list of callables (in attach order)
        self.callbacks: Any = None
        self._value: Any = _PENDING
        #: set by the kernel once callbacks have been executed
        self._processed = False
        #: True once withdrawn while scheduled; the kernel skips it
        self._cancelled = False
        #: slot-table index while scheduled; -1 when not in the heap
        self._slot = -1
        # ``_ok`` and ``_defused`` are deliberately NOT initialized:
        # every trigger path (succeed/fail/materialize/fire_inline)
        # stores ``_ok`` before anything reads it, and ``_defused`` is
        # stored by defuse() and read (via getattr) only on the
        # unhandled-failure path.  Two fewer stores per event matters:
        # events are allocated on every message hop.

    # -- state inspection ------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once a value or an exception has been set."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the kernel has run this event's callbacks."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        if self._value is _PENDING:
            raise RuntimeError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception (once triggered)."""
        if self._value is _PENDING:
            raise RuntimeError(f"{self!r} has not been triggered")
        return self._value

    # -- triggering ------------------------------------------------------

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        # inlined Simulator._push: succeed() runs once per message hop
        # and lock grant, so the extra call is worth skipping
        sim = self.sim
        seq = sim._seq
        sim._seq = seq + 1
        free = sim._free
        if free:
            slot = free.pop()
            sim._slots[slot] = self
        else:
            slot = len(sim._slots)
            sim._slots.append(self)
        self._slot = slot
        if priority == NORMAL:
            # same-instant NORMAL triggers keep FIFO order — skip the heap
            sim._ready.append((sim._now, (1 << 53) | (seq << 1), slot))
        else:
            heappush(sim._queue,
                     (sim._now, (priority << 53) | (seq << 1), slot))
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with a failure carrying ``exception``."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        sim = self.sim
        seq = sim._seq
        sim._seq = seq + 1
        free = sim._free
        if free:
            slot = free.pop()
            sim._slots[slot] = self
        else:
            slot = len(sim._slots)
            sim._slots.append(self)
        self._slot = slot
        if priority == NORMAL:
            sim._ready.append((sim._now, (1 << 53) | (seq << 1), slot))
        else:
            heappush(sim._queue,
                     (sim._now, (priority << 53) | (seq << 1), slot))
        return self

    def defuse(self) -> None:
        """Mark a failure as handled so the kernel will not re-raise it."""
        self._defused = True

    # -- cancellation ----------------------------------------------------

    def cancel(self) -> None:
        """Withdraw interest in a pending event.

        The base event simply drops its callbacks; subclasses that hold
        external registrations (queue waiters, timers) override this to
        release them.  Cancelling a triggered event is a no-op.
        """
        if self._value is _PENDING:
            self.callbacks = None

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when this event is processed.

        A triggered-but-unprocessed event still accepts callbacks: the
        kernel picks them up when it pops the event.
        """
        if self._processed:
            raise RuntimeError(f"{self!r} already processed")
        cbs = self.callbacks
        if cbs is None:
            self.callbacks = callback
        elif cbs.__class__ is list:
            cbs.append(callback)
        else:
            self.callbacks = [cbs, callback]

    def __repr__(self) -> str:
        label = self.name or self.__class__.__name__
        state = (
            "processed" if self._processed
            else "triggered" if self._value is not _PENDING
            else "pending"
        )
        return f"<{label} {state} at {id(self):#x}>"


def _attach(event: Event, callback: Callable[[Event], None]) -> None:
    """Append ``callback`` to an event's polymorphic callback field
    without the ``add_callback`` state checks (internal hot path)."""
    cbs = event.callbacks
    if cbs is None:
        event.callbacks = callback
    elif cbs.__class__ is list:
        cbs.append(callback)
    else:
        event.callbacks = [cbs, callback]


class Timeout(Event):
    """An event that fires ``delay`` time units after creation.

    The value is held aside and only materialized when the kernel pops
    the event (heap entries carry the DELAYED kind tag), so
    ``triggered`` stays false until the timeout actually occurs in
    model time — composite conditions rely on this.
    """

    __slots__ = ("delay", "_delayed_value")

    def __init__(self, sim, delay: float, value: Any = None, name: str = ""):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.sim = sim
        self.name = name
        self.callbacks = None
        self._value = _PENDING
        self._processed = False
        self._cancelled = False
        self.delay = delay
        self._delayed_value = value
        # inlined Simulator._push with the DELAYED kind tag
        seq = sim._seq
        sim._seq = seq + 1
        free = sim._free
        if free:
            slot = free.pop()
            sim._slots[slot] = self
        else:
            slot = len(sim._slots)
            sim._slots.append(self)
        self._slot = slot
        heappush(sim._queue,
                 (sim._now + delay, (NORMAL << 53) | (seq << 1) | 1, slot))

    def cancel(self) -> None:
        # Lazy deletion: clear the slot so the kernel discards the heap
        # entry when popped; compact once dead entries dominate.
        if self._processed or self._cancelled:
            return
        self.callbacks = None
        self._cancelled = True
        sim = self.sim
        sim._slots[self._slot] = None
        count = sim._cancelled_count + 1
        sim._cancelled_count = count
        if count >= sim._compact_min and count * 2 > len(sim._queue):
            sim._compact()

    def __repr__(self) -> str:
        label = self.name or f"timeout({self.delay})"
        state = (
            "processed" if self._processed
            else "triggered" if self._value is not _PENDING
            else "pending"
        )
        return f"<{label} {state} at {id(self):#x}>"


class ConditionValue:
    """Mapping of events to values for fired composite conditions."""

    __slots__ = ("events",)

    def __init__(self):
        self.events: list[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key.value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __repr__(self) -> str:
        pairs = ", ".join(f"{e!r}: {e.value!r}" for e in self.events)
        return f"<ConditionValue {{{pairs}}}>"


class Condition(Event):
    """Base composite event over a list of sub-events."""

    __slots__ = ("events", "_fired")

    def __init__(self, sim, events: Iterable[Event], name: str = ""):
        self.sim = sim
        self.name = name
        self.callbacks = None
        self._value = _PENDING
        self._processed = False
        self._cancelled = False
        self._slot = -1
        # composite callers pass freshly built lists; reuse them rather
        # than copying (non-list iterables are materialized)
        self.events = events if events.__class__ is list else list(events)
        self._fired: list[Event] = []
        if not self.events:
            self.succeed(ConditionValue())
            return
        on_sub = self._on_sub_event
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("events belong to different simulators")
            if event._value is not _PENDING:
                on_sub(event)
            else:
                cbs = event.callbacks
                if cbs is None:
                    event.callbacks = on_sub
                elif cbs.__class__ is list:
                    cbs.append(on_sub)
                else:
                    event.callbacks = [cbs, on_sub]

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _on_sub_event(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            self._cancel_pending()
            return
        self._fired.append(event)
        if self._satisfied():
            result = ConditionValue()
            result.events.extend(self._fired)
            self.succeed(result)
            self._cancel_pending()

    def _cancel_pending(self) -> None:
        # Cancel every loser that has not yet been processed — including
        # ones that triggered at the same instant as the winner.  Events
        # holding resources (queue gets) use cancel() to give them back;
        # without this, a message delivered simultaneously with the
        # winning event would be consumed and silently dropped.
        fired = self._fired
        for event in self.events:
            if event not in fired and not event._processed:
                event.cancel()


#: shared "nothing fired yet" marker for AnyOf — its specialized
#: ``_on_sub_event`` replaces ``_fired`` wholesale instead of appending,
#: so every AnyOf can share one (never-mutated) empty list
_NOT_FIRED: list = []


class AnyOf(Condition):
    """Fires as soon as one sub-event fires; remaining ones are cancelled.

    This is the select-loop workhorse (``receive | timeout`` races run
    on every protocol task iteration), so it bypasses the generic
    :class:`Condition` machinery: the first sub-event to fire triggers
    the composite inline — no ``_satisfied`` indirection, no generic
    result assembly, no per-instance ``_fired`` list until the winner
    is known.
    """

    __slots__ = ()

    def __init__(self, sim, events: Iterable[Event], name: str = ""):
        self.sim = sim
        self.name = name
        self.callbacks = None
        self._value = _PENDING
        self._processed = False
        self._cancelled = False
        self._slot = -1
        self.events = events if events.__class__ is list else list(events)
        self._fired = _NOT_FIRED
        if not self.events:
            self.succeed(ConditionValue())
            return
        on_sub = self._on_sub_event
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("events belong to different simulators")
            if event._value is not _PENDING:
                on_sub(event)
            else:
                cbs = event.callbacks
                if cbs is None:
                    event.callbacks = on_sub
                elif cbs.__class__ is list:
                    cbs.append(on_sub)
                else:
                    event.callbacks = [cbs, on_sub]

    def _satisfied(self) -> bool:
        return len(self._fired) >= 1

    def _on_sub_event(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if event._ok:
            # First success wins: assemble the single-winner result and
            # schedule the composite (inlined Event.succeed).  The
            # result's event list doubles as ``_fired``.
            fired = [event]
            self._fired = fired
            result = ConditionValue.__new__(ConditionValue)
            result.events = fired
            self._ok = True
            self._value = result
            sim = self.sim
            seq = sim._seq
            sim._seq = seq + 1
            free = sim._free
            if free:
                slot = free.pop()
                sim._slots[slot] = self
            else:
                slot = len(sim._slots)
                sim._slots.append(self)
            self._slot = slot
            sim._ready.append((sim._now, (NORMAL << 53) | (seq << 1), slot))
            # Cancel the losers (the winner is already _processed, so
            # the guard skips it) — see Condition._cancel_pending.
            for other in self.events:
                if other is not event and not other._processed:
                    other.cancel()
        else:
            event._defused = True
            self.fail(event._value)
            self._cancel_pending()


class AllOf(Condition):
    """Fires when every sub-event has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._fired) == len(self.events)
