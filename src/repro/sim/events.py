"""One-shot events: the unit of synchronization in the kernel.

An :class:`Event` moves through three states:

* *pending* — created, not yet triggered;
* *triggered* — a value (or exception) has been set and the event is
  scheduled for processing;
* *processed* — its callbacks have run.

Processes wait on events by ``yield``-ing them (see
:mod:`repro.sim.process`).  Composite events (:class:`AnyOf`,
:class:`AllOf`) let a process wait on several sources at once; losers
that support cancellation (e.g. queue gets, timers) are cancelled so
they do not fire later and steal items.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Iterable, Optional

#: Scheduling priorities. Lower value runs first at equal timestamps.
URGENT = 0
NORMAL = 1

_PENDING = object()


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    Events are allocated on every message hop, timer, and lock wait, so
    the class is slotted and its kernel-facing state (``_cancelled``,
    the ``_delayed`` materialization flag) consists of real attributes —
    the dispatch loop reads them directly instead of ``getattr``-probing.
    """

    __slots__ = ("sim", "name", "callbacks", "_value", "_ok",
                 "_processed", "_defused", "_cancelled")

    #: class-level flag: True on subclasses (Timeout) whose value is
    #: held aside and materialized only when the kernel pops the event
    _delayed = False

    def __init__(self, sim, name: str = ""):
        self.sim = sim
        self.name = name
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        #: set by the kernel once callbacks have been executed
        self._processed = False
        #: True once defused (a failure someone consumed on purpose)
        self._defused = False
        #: True once withdrawn while scheduled; the kernel skips it
        self._cancelled = False

    # -- state inspection ------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once a value or an exception has been set."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the kernel has run this event's callbacks."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        if not self.triggered:
            raise RuntimeError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception (once triggered)."""
        if self._value is _PENDING:
            raise RuntimeError(f"{self!r} has not been triggered")
        return self._value

    # -- triggering ------------------------------------------------------

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        # inlined Simulator._schedule: succeed() runs once per message
        # hop and lock grant, so the extra call is worth skipping
        sim = self.sim
        heappush(sim._queue, (sim._now, priority, next(sim._seq), self))
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with a failure carrying ``exception``."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        sim = self.sim
        heappush(sim._queue, (sim._now, priority, next(sim._seq), self))
        return self

    def defuse(self) -> None:
        """Mark a failure as handled so the kernel will not re-raise it."""
        self._defused = True

    # -- cancellation ----------------------------------------------------

    def cancel(self) -> None:
        """Withdraw interest in a pending event.

        The base event simply drops its callbacks; subclasses that hold
        external registrations (queue waiters, timers) override this to
        release them.  Cancelling a triggered event is a no-op.
        """
        if self._value is _PENDING:
            self.callbacks = []

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when this event is processed.

        A triggered-but-unprocessed event still accepts callbacks: the
        kernel picks them up when it pops the event.
        """
        if self._processed:
            raise RuntimeError(f"{self!r} already processed")
        self.callbacks.append(callback)

    def __repr__(self) -> str:
        label = self.name or self.__class__.__name__
        state = (
            "processed" if self._processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{label} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation.

    The value is held aside and only materialized when the kernel pops
    the event, so ``triggered`` stays false until the timeout actually
    occurs in model time — composite conditions rely on this.
    """

    __slots__ = ("delay", "_delayed_value")

    _delayed = True

    def __init__(self, sim, delay: float, value: Any = None, name: str = ""):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(sim, name or f"timeout({delay})")
        self.delay = delay
        self._delayed_value = value
        sim._schedule(self, NORMAL, delay)

    def _materialize(self) -> None:
        if self._value is _PENDING:
            self._ok = True
            self._value = self._delayed_value

    def cancel(self) -> None:
        # The kernel lazily discards cancelled timeouts when popped.
        if self._processed or self._cancelled:
            return
        self.callbacks = []
        self._cancelled = True
        self.sim._note_cancelled()


class ConditionValue:
    """Mapping of events to values for fired composite conditions."""

    __slots__ = ("events",)

    def __init__(self):
        self.events: list[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key.value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __repr__(self) -> str:
        pairs = ", ".join(f"{e!r}: {e.value!r}" for e in self.events)
        return f"<ConditionValue {{{pairs}}}>"


class Condition(Event):
    """Base composite event over a list of sub-events."""

    __slots__ = ("events", "_fired")

    def __init__(self, sim, events: Iterable[Event], name: str = ""):
        super().__init__(sim, name)
        self.events = list(events)
        self._fired: list[Event] = []
        if not self.events:
            self.succeed(ConditionValue())
            return
        on_sub = self._on_sub_event
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("events belong to different simulators")
            if event._value is not _PENDING:
                on_sub(event)
            else:
                event.callbacks.append(on_sub)

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _on_sub_event(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            self._cancel_pending()
            return
        self._fired.append(event)
        if self._satisfied():
            result = ConditionValue()
            result.events.extend(self._fired)
            self.succeed(result)
            self._cancel_pending()

    def _cancel_pending(self) -> None:
        # Cancel every loser that has not yet been processed — including
        # ones that triggered at the same instant as the winner.  Events
        # holding resources (queue gets) use cancel() to give them back;
        # without this, a message delivered simultaneously with the
        # winning event would be consumed and silently dropped.
        fired = self._fired
        for event in self.events:
            if event not in fired and not event._processed:
                event.cancel()


class AnyOf(Condition):
    """Fires as soon as one sub-event fires; remaining ones are cancelled."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._fired) >= 1


class AllOf(Condition):
    """Fires when every sub-event has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._fired) == len(self.events)
