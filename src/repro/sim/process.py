"""Generator-based simulated processes.

A process is a Python generator that ``yield``-s :class:`Event` objects;
the kernel resumes it with the event's value (or throws the event's
exception).  A :class:`Process` is itself an event and fires when the
generator returns — its value is the generator's return value — so
processes can wait on each other.

This mirrors the task structure of the paper's pseudocode (Figures
3–12): each ``task ... cycle ... endcycle`` becomes a generator loop and
each ``select from receive(...) | T.timeout`` becomes a ``yield AnyOf``.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .errors import Interrupt, ProcessCrashed, StopSimulation
from .events import _PENDING, URGENT, Event

EventGenerator = Generator[Event, Any, Any]


class Process(Event):
    """Wraps a generator and drives it through the event loop."""

    __slots__ = ("_generator", "_target", "_send", "_throw")

    def __init__(self, sim, generator: EventGenerator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self.callbacks = None
        self._value = _PENDING
        self._ok = True
        self._processed = False
        self._defused = False
        self._cancelled = False
        self._slot = -1
        self._generator = generator
        # bound methods cached once: _resume runs per dispatch
        self._send = generator.send
        self._throw = generator.throw
        self._target: Optional[Event] = None
        # Kick the process off at the current instant — at NORMAL
        # priority, so a freshly spawned process never preempts event
        # deliveries that were already scheduled at this instant.
        init = Event(sim)
        init.succeed()
        init.callbacks = self._resume
        self._target = init

    # -- inspection --------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    # -- control -----------------------------------------------------------

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a finished process is an error; interrupting a
        process twice before it handles the first interrupt queues both.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has already terminated")
        if self._target is not None and not self._target.triggered:
            self._target.cancel()
        hit = Event(self.sim)
        hit.defuse()
        hit.fail(Interrupt(cause), priority=URGENT)
        hit.add_callback(self._resume)

    def kill(self) -> None:
        """Terminate the process immediately without running it further.

        Used to model processor crashes: the victim gets no chance to
        clean up, exactly like a real crash.  The process event itself is
        *not* triggered with a value — anyone waiting on it keeps waiting
        (their wait should be guarded by a timeout, as in the paper).
        """
        if not self.is_alive:
            return
        if self._target is not None and not self._target.triggered:
            self._target.cancel()
        self._target = None
        self._generator.close()
        # Mark dead without scheduling: waiters time out instead.
        self._value = None
        self._ok = True
        self._processed = True
        self.callbacks = None

    # -- kernel callback -----------------------------------------------------

    def _resume(self, event: Event) -> None:
        if self._value is not _PENDING:
            # Killed (or finished) between scheduling and delivery.
            return
        sim = self.sim
        sim._active_process = self
        try:
            if event._ok:
                next_target = self._send(event._value)
            else:
                event._defused = True
                next_target = self._throw(event._value)
        except StopIteration as stop:
            self._target = None
            self.succeed(stop.value)
            return
        except Interrupt:
            # An interrupt escaped the generator: treat as clean stop.
            self._target = None
            self.succeed(None)
            return
        except StopSimulation:
            # Deliberate halt requests pass straight through to run().
            self._target = None
            raise
        except BaseException as exc:  # noqa: BLE001 - surfaced via kernel
            self._target = None
            sim._report_crash(ProcessCrashed(self, exc))
            self.fail(exc)
            return
        finally:
            sim._active_process = None

        if next_target.__class__ is not Event and \
                not isinstance(next_target, Event):
            crash = ProcessCrashed(
                self, TypeError(f"process yielded non-event {next_target!r}")
            )
            sim._report_crash(crash)
            self.fail(crash)
            return
        if next_target._processed:
            crash = ProcessCrashed(
                self, RuntimeError(f"{next_target!r} already processed")
            )
            sim._report_crash(crash)
            self.fail(crash)
            return
        self._target = next_target
        cbs = next_target.callbacks
        if cbs is None:
            next_target.callbacks = self._resume
        elif cbs.__class__ is list:
            cbs.append(self._resume)
        else:
            next_target.callbacks = [cbs, self._resume]
