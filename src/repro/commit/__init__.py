"""Pluggable atomic-commit backends (the commit phase of R4).

``ProtocolConfig.commit_backend`` selects which one a protocol
instance gets; the host protocol delegates the prepare round, decision
distribution, and in-doubt resolution wholesale (see
:class:`~repro.commit.base.AtomicCommit`).
"""

from __future__ import annotations

from typing import Any, Dict, Type

from .base import AtomicCommit
from .paxos import BALLOT_STRIDE, PaxosCommit
from .two_phase import TwoPhaseCommit

#: backend name -> class, keyed exactly like ``commit_backend``
COMMIT_BACKENDS: Dict[str, Type[AtomicCommit]] = {
    TwoPhaseCommit.name: TwoPhaseCommit,
    PaxosCommit.name: PaxosCommit,
}


def make_commit(name: str, host: Any) -> AtomicCommit:
    """Instantiate the commit backend ``name`` for ``host``."""
    try:
        backend = COMMIT_BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown commit backend {name!r}; "
            f"known: {sorted(COMMIT_BACKENDS)}"
        ) from None
    return backend(host)


__all__ = ["AtomicCommit", "BALLOT_STRIDE", "COMMIT_BACKENDS",
           "PaxosCommit", "TwoPhaseCommit", "make_commit"]
