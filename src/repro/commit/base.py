"""The atomic-commit backend interface.

The virtual partitions protocol (and, in principle, any replica
control protocol that validates at commit time) delegates the whole
atomic-commit phase — the prepare round, the decision log, the decide
fan-out, and in-doubt resolution — to a pluggable backend selected by
:attr:`~repro.core.config.ProtocolConfig.commit_backend`:

* ``"2pc"`` — classic presumed-abort two-phase commit
  (:class:`~repro.commit.two_phase.TwoPhaseCommit`), where the
  coordinator's decision log is the single authority a prepared
  participant can learn the outcome from; its crash blocks them.
* ``"paxos"`` — Gray & Lamport's *Paxos Commit*
  (:class:`~repro.commit.paxos.PaxosCommit`), where each participant's
  vote is a Paxos consensus instance replicated to the transaction's
  acceptors, so any node reaching a majority of them can finish the
  transaction — no single crash leaves participants in doubt.

The host protocol keeps everything that is *not* commit-protocol
specific: before-images (the write path fills them), poisoning (strict
R4 force-aborts), the R4 vote itself, and decision application.  The
backend owns the commit-phase state: the coordinator decision log, the
participant in-doubt set, and the resolver machinery.

A backend's host must provide: ``processor``, ``pid``, ``sim``,
``state``, ``config``, ``metrics``, ``tracer``, ``auditor``,
``all_pids``, ``_vote(txn, payload)``, ``_weakened_ok_locally(ctx)``,
``_apply_decision(txn, outcome)`` and ``_audit_decision(txn,
outcome)``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Mapping


class AtomicCommit(ABC):
    """One commit backend instance per protocol instance (per processor).

    The same object plays both commit-protocol roles: the coordinator
    side (:meth:`prepare_commit` / :meth:`end_transaction`, driven by
    the transaction manager) and the participant side (the message
    handlers from :meth:`handlers`, driven by the protocol's physical-
    access dispatcher task).
    """

    #: short identifier, matches ``ProtocolConfig.commit_backend``
    name: str = "abstract"

    def __init__(self, host: Any):
        self.host = host
        #: participant side: txns we voted yes for -> coordinator pid
        self.in_doubt: Dict[Any, int] = {}
        #: sim-time each in-doubt registration happened (dwell metric)
        self._in_doubt_since: Dict[Any, float] = {}
        #: txns with a live resolver task (idempotence guard)
        self.resolving: set = set()

    # -- conveniences over the host façade --------------------------------

    @property
    def processor(self):
        return self.host.processor

    @property
    def pid(self) -> int:
        return self.host.pid

    @property
    def sim(self):
        return self.host.sim

    @property
    def config(self):
        return self.host.config

    @property
    def state(self):
        return self.host.state

    @property
    def metrics(self):
        return self.host.metrics

    @property
    def tracer(self):
        return self.host.tracer

    @property
    def auditor(self):
        return self.host.auditor

    # -- coordinator side ---------------------------------------------------

    @abstractmethod
    def prepare_commit(self, ctx):
        """Generator: run the voting round for ``ctx``'s transaction.

        Returns None when every participant is prepared; raises
        :class:`~repro.core.errors.TransactionAborted` otherwise.
        """

    @abstractmethod
    def end_transaction(self, ctx, outcome: str):
        """Generator: decide ``outcome`` and distribute it to all
        participants (decision log force-write + decide fan-out)."""

    # -- participant side ---------------------------------------------------

    @abstractmethod
    def handlers(self) -> Mapping[str, Callable]:
        """Ordered ``{message kind: handler}`` map for the dispatcher.

        The protocol's physical-access task composes these behind its
        read/write mailboxes; registration order is the mailbox polling
        order, so backends must list kinds deterministically.  Handlers
        are plain callables taking the message; anything that needs to
        wait spawns its own process.
        """

    # -- lifecycle hooks (called from the host's crash/recover hooks) ------

    @abstractmethod
    def on_crash(self) -> None:
        """Drop volatile commit state; durable state (the decision log
        models a force-written log) survives."""

    @abstractmethod
    def on_recover(self) -> None:
        """Restart resolution for whatever is still in doubt."""

    @abstractmethod
    def kick_resolver(self, txn) -> None:
        """Begin resolving one in-doubt transaction now (idempotent);
        called by watchdogs, partition changes, and recovery."""

    # -- shared bookkeeping -------------------------------------------------

    def note_in_doubt(self, txn, coordinator: int) -> None:
        """Register a yes-vote: ``txn`` may no longer be aborted
        unilaterally here until its outcome is learned."""
        self.in_doubt[txn] = coordinator
        self._in_doubt_since.setdefault(txn, self.sim.now)

    def note_resolved(self, txn) -> None:
        """The outcome reached this participant; record the dwell."""
        if self.in_doubt.pop(txn, None) is not None:
            since = self._in_doubt_since.pop(txn, None)
            if since is not None:
                self.metrics.in_doubt_dwell.append(self.sim.now - since)

    def _delayed_reply(self, delay: float, message, kind: str, payload):
        """Reply after ``delay`` — models a forced write gating an ack."""
        yield self.sim.timeout(delay)
        self.processor.reply(message, kind, payload)
