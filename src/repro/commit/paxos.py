"""Paxos Commit (Gray & Lamport, *Consensus on Transaction Commit*).

Non-blocking atomic commit: each resource manager's prepared/aborted
vote is one Paxos consensus instance, replicated to the transaction's
2F+1 acceptors.  The global outcome is a pure function of the chosen
votes — commit iff every instance chose "prepared" — so *any* node
that can reach a majority of acceptors can finish the transaction.
The coordinator is only an optimization (it collects the fast-path
ballot-0 accepts); its crash moves leadership to whichever prepared
participant's watchdog fires first, and the in-doubt window closes
without the coordinator ever recovering.  That is the property 2PC
cannot offer: there, the coordinator's decision log is the single
authority and its crash parks every prepared participant.

Mapping onto this codebase's primitives:

* **Acceptors** are the coordinator's view members at prepare time
  (their durable state rides on :meth:`StorageEngine.durable_cell`,
  one cell per consensus instance, forced on every promise/accept —
  the PR-3 durability points, ``storage_sync_cost`` charged per
  acceptor write batch).
* **Ballot 0** is reserved for the RM itself: it force-writes its
  prepare record, then sends phase-2a ``px-accept`` messages straight
  to the acceptors (no phase 1 needed — ballot 0 cannot have been
  preempted unless a recovery leader already moved in, in which case
  the stale 2a is simply dropped).
* **Recovery leaders** (the coordinator on collection timeout, or any
  in-doubt participant's watchdog/partition-change/recovery resolver)
  run full ballots ``attempt * BALLOT_STRIDE + pid`` over all
  instances at once, batched per acceptor through the ordinary
  ``scatter_gather`` quorum machinery: phase 1 to a majority, pick
  each instance's highest-ballot accepted value — aborting *free*
  instances, whose RM's ballot-0 vote can then never reach a majority
  unseen — and phase 2 to a majority.

Unilateral abort discipline: once prepare messages have left, the
coordinator may abort on its own only while it knows its own instance
can never choose "prepared" (it never proposed that vote) — e.g. its
local R4 vote failed.  In every other pre-decision failure mode it
must *cede* the outcome to the recovery leaders rather than guess;
the transaction's history record is then closed by whoever decides
(``History.finish_txn_once`` makes that race idempotent).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..core.errors import TransactionAborted
from .base import AtomicCommit

#: recovery ballots are ``attempt * BALLOT_STRIDE + pid`` — distinct
#: per leader, strictly above the RMs' fast ballot 0, and increasing
#: per attempt (classic Paxos ballot allocation)
BALLOT_STRIDE = 1024

#: acceptor cell value: (promised ballot, accepted ballot or None,
#: accepted vote or None); a missing cell means the acceptor is fresh
AcceptorState = Tuple[int, Optional[int], Optional[str]]


class PaxosCommit(AtomicCommit):
    """Gray & Lamport's commit protocol over the VP transport layer."""

    name = "paxos"

    def __init__(self, host: Any):
        super().__init__(host)
        #: consensus outcomes determined here: txn -> commit|abort
        self._outcome: Dict[Any, str] = {}
        #: per-txn instance metadata (participants, acceptors,
        #: majority, leader).  Modelled as part of the force-written
        #: prepare record, so it deliberately survives on_crash —
        #: recovery leadership needs it.
        self._meta: Dict[Any, dict] = {}
        #: coordinator-side fast-path collection: txn -> {event,
        #: instances, tallies}; volatile (cleared on crash)
        self._collect: Dict[Any, dict] = {}

    # ------------------------------------------------------------------
    # coordinator side
    # ------------------------------------------------------------------

    def prepare_commit(self, ctx):
        """Run every participant's voting instance; wait for all of
        them to choose.  Same R4 screens as the 2PC backend — what
        changes is who may finish the transaction afterwards."""
        if ctx.poisoned:
            raise TransactionAborted(ctx.txn_id, ctx.poisoned)
        state = self.state
        if not state.assigned or state.cur_id not in ctx.vpids:
            if ctx.vpids and not self.host._weakened_ok_locally(ctx):
                raise TransactionAborted(
                    ctx.txn_id, "coordinator changed partition (R4)"
                )
        txn = ctx.txn_id
        participants = sorted(ctx.participants)
        if not participants:
            # No copies were touched: nothing is prepared anywhere and
            # every instance is trivially free — presumed abort/commit
            # without any consensus round.
            return None
        acceptors = sorted(state.lview) if state.assigned else [self.pid]
        meta = {
            "txn": txn,
            "vpids": sorted(ctx.vpids),
            "objects": sorted(ctx.objects),
            "participants": participants,
            "acceptors": acceptors,
            "majority": len(acceptors) // 2 + 1,
            "leader": self.pid,
            # placement epochs each access routed on (reshard R4 stamps)
            "epochs": {obj: ctx.placement_epochs.get(obj, 0)
                       for obj in sorted(ctx.objects)},
        }
        self._meta[txn] = meta
        wait = self._begin_collect(txn, participants)
        for server in participants:
            if server != self.pid:
                self.processor.send(server, "prepare", meta)
        if self.pid in ctx.participants:
            verdict = self.host._vote(txn, meta)
            if verdict is not None:
                # Only the RM itself ever proposes "prepared" for its
                # own instance (at ballot 0); since we never will, no
                # quorum can choose prepared for it and abort is the
                # only decidable outcome — this unilateral abort is
                # consensus-safe.  Cast the no-vote anyway so recovery
                # leaders converge without waiting out a free instance.
                self.processor.spawn(
                    f"px-vote{txn}", self._cast_vote(txn, "aborted", meta))
                self._outcome[txn] = "abort"
                raise TransactionAborted(txn, f"local vote: {verdict}")
            # Our yes vote: force the prepare record, then run our own
            # instance exactly like any remote RM's.
            self.note_in_doubt(txn, self.pid)
            self.processor.store.record_prepare(txn, ctx.objects)
            self.processor.spawn(
                f"px-vote{txn}", self._cast_vote(txn, "prepared", meta))
        timer = self.sim.timeout(self.config.access_timeout)
        fired = yield self.sim.any_of([wait, timer])
        if wait in fired:
            instances = fired[wait]
        else:
            # Fast path timed out (a silent RM, a lost accept, a cut):
            # become a recovery leader over our own transaction.
            instances = yield from self._lead_until_decided(txn)
        self._collect.pop(txn, None)
        outcome = ("commit"
                   if all(v == "prepared" for v in instances.values())
                   else "abort")
        self._outcome[txn] = outcome
        if outcome == "abort":
            raise TransactionAborted(txn, "a participant voted aborted")
        return None

    def _lead_until_decided(self, txn):
        """Retry recovery ballots until one completes.  Used by the
        coordinator's own slow path; participant resolvers run their
        own loop in :meth:`_resolve_in_doubt`."""
        retry = self.config.access_timeout
        attempt = 1
        while True:
            if not self.processor.alive:
                # Our processor crashed under this client process.  We
                # can no longer learn or influence the outcome — the
                # participants' recovery leaders own it now (that is
                # the point of Paxos Commit).  end_transaction sees no
                # determined outcome and stays silent.
                raise TransactionAborted(txn, "coordinator crashed "
                                              "while deciding")
            meta = self._meta.get(txn)
            if meta is None:
                # A recovery leader finished the transaction while we
                # slept: either its decide already applied here (the
                # release handler memoizes the outcome for our own
                # transactions) or this node itself led the resolution
                # (which journals the decision).  Adopt that outcome —
                # deciding anything else would contradict consensus.
                known = (self._outcome.get(txn)
                         or self.processor.store.decision_of(txn))
                if known == "commit":
                    return {self.pid: "prepared"}
                if known == "abort":
                    self._outcome[txn] = "abort"
                    return {self.pid: "aborted"}
                raise TransactionAborted(
                    txn, "consensus state lost while deciding")
            ballot = attempt * BALLOT_STRIDE + self.pid
            votes = yield from self._lead(txn, meta, ballot)
            if votes is not None:
                return votes
            attempt += 1
            yield self.sim.timeout(retry)

    def end_transaction(self, ctx, outcome: str):
        """Distribute a *consensus-backed* outcome (or a presumed abort
        for transactions that never started a voting round)."""
        if outcome not in ("commit", "abort"):
            raise ValueError(f"unknown outcome {outcome!r}")
        txn = ctx.txn_id
        known = self._outcome.pop(txn, None)
        started = txn in self._collect
        self._collect.pop(txn, None)
        if outcome == "commit" and known != "commit":
            # Defensive: prepare_commit determines the outcome before
            # returning, so a commit without one cannot happen — but it
            # must never be distributed on faith.
            raise TransactionAborted(txn, "commit without consensus")
        if (outcome == "abort" and known is None
                and (started or not self.processor.alive)):
            # A voting round exists but no outcome was determined here —
            # a coordinator interrupted mid-decision, or a zombie client
            # of a crashed processor (whose crash hook cleared the
            # volatile collect state, hence the liveness check).  It
            # must stay silent: the acceptors may yet choose commit,
            # and a unilateral abort here could contradict the recovery
            # leaders.  The history record stays open; whoever decides
            # closes it (see _decide_and_distribute).
            self._meta.pop(txn, None)
            raise TransactionAborted(txn, "outcome ceded to recovery leaders")
        yield from self._decide_and_distribute(txn, outcome,
                                               sorted(ctx.participants))

    def _decide_and_distribute(self, txn, outcome: str, participants):
        """Journal the decision, fan it out, close the history record.

        Unlike 2PC the decision-log record is a convenience, not the
        authority — any majority of acceptors can re-derive the
        outcome — so the in-memory entry retires immediately (the
        ``decisions_retired`` counter keeps the two backends
        comparable).
        """
        self.processor.store.record_decision(txn, outcome)
        self.host._audit_decision(txn, outcome)
        sync_cost = self.config.storage_sync_cost
        if sync_cost > 0:
            yield self.sim.timeout(sync_cost)
        for server in participants:
            if server == self.pid:
                self.host._apply_decision(txn, outcome)
            else:
                self.processor.send(server, "release",
                                    {"txn": txn, "outcome": outcome})
        self._meta.pop(txn, None)
        self.metrics.decisions_retired += 1
        # Close the transaction's history record if its own client
        # could not (dead coordinator): first finalization wins, the
        # client's own commit/abort path is a no-op afterwards.
        status = "committed" if outcome == "commit" else "aborted"
        self.host.history.finish_txn_once(
            txn, status, self.sim.now, reason="decided by recovery leader")
        return
        yield  # pragma: no cover - generator form when sync cost is zero

    # ------------------------------------------------------------------
    # the fast path: ballot-0 votes and their collection
    # ------------------------------------------------------------------

    def _begin_collect(self, txn, participants):
        """Register the coordinator's fast-path tally; returns the
        event that fires with ``{rm: vote}`` once every instance has a
        majority of same-ballot accepts."""
        event = self.sim.event(name=f"px-collect{txn}")
        self._collect[txn] = {
            "event": event,
            "instances": {rm: None for rm in participants},
            "tallies": {},
        }
        return event

    def _cast_vote(self, txn, vote: str, meta):
        """Ballot-0 phase 2a: propose this RM's own vote everywhere.

        A prepared vote waits out the prepare record's force first;
        the no-vote needs no durability (forgetting it re-aborts)."""
        sync_cost = self.config.storage_sync_cost
        if vote == "prepared" and sync_cost > 0:
            yield self.sim.timeout(sync_cost)
        for acceptor in meta["acceptors"]:
            if acceptor != self.pid:
                self.processor.send(acceptor, "px-accept",
                                    {"txn": txn, "rm": self.pid, "ballot": 0,
                                     "vote": vote, "leader": meta["leader"]})
        if self.pid in meta["acceptors"]:
            yield from self._accept(txn, self.pid, 0, vote, meta["leader"])

    def _accept(self, txn, rm: int, ballot: int, vote: str, leader: int):
        """Acceptor: accept one instance's 2a, force it, notify the
        leader (locally when we are the leader — no self-sends)."""
        cell = self._acceptor_cell(txn, rm)
        state: Optional[AcceptorState] = cell.value
        if state is not None and ballot < state[0]:
            return  # promised a higher ballot; drop the stale 2a
        cell.value = (ballot, ballot, vote)
        sync_cost = self.config.storage_sync_cost
        if sync_cost > 0:
            yield self.sim.timeout(sync_cost)
        payload = {"txn": txn, "rm": rm, "ballot": ballot, "vote": vote,
                   "acceptor": self.pid}
        if leader == self.pid:
            self._note_accepted(payload)
        else:
            self.processor.send(leader, "px-accepted", payload)

    def _note_accepted(self, payload) -> None:
        """Leader: tally one 2b; fire the collection event when every
        instance has a same-ballot majority."""
        txn = payload["txn"]
        entry = self._collect.get(txn)
        meta = self._meta.get(txn)
        if entry is None or meta is None:
            return  # not collecting (already decided, or not ours)
        instances = entry["instances"]
        rm = payload["rm"]
        if rm not in instances:
            return
        votes = (entry["tallies"].setdefault(rm, {})
                 .setdefault(payload["ballot"], {}))
        votes[payload["acceptor"]] = payload["vote"]
        if instances[rm] is None and len(votes) >= meta["majority"]:
            instances[rm] = payload["vote"]
            if all(v is not None for v in instances.values()):
                event = entry["event"]
                if not event.triggered:
                    event.succeed(dict(instances))

    # ------------------------------------------------------------------
    # recovery leadership (full ballots)
    # ------------------------------------------------------------------

    def _lead(self, txn, meta, ballot: int):
        """One complete ballot over all of ``txn``'s instances, batched
        per acceptor: phase 1 to a majority, pick each instance's
        highest-ballot accepted value (aborting free instances), phase
        2 to a majority.  Returns the chosen ``{rm: vote}`` map, or
        None when preempted or short of quorum."""
        rms = meta["participants"]
        acceptors = meta["acceptors"]
        majority = meta["majority"]
        timeout = self.config.access_timeout
        sync_cost = self.config.storage_sync_cost
        others = [a for a in acceptors if a != self.pid]

        # Phase 1: promises from a majority.
        promises: List[dict] = []
        if self.pid in acceptors:
            local = self._promise_locally(txn, ballot, rms)
            if local is not None:
                if sync_cost > 0:
                    yield self.sim.timeout(sync_cost)
                promises.append(local)
        needed = majority - len(promises)
        if needed > 0:
            if len(others) < needed:
                return None

            def promise_quorum(results):
                return sum(1 for r in results.values()
                           if r is not None and r["ok"]) >= needed

            replies = yield from self.processor.scatter_gather(
                others, "px-p1",
                lambda _server: {"txn": txn, "ballot": ballot, "rms": rms},
                timeout=timeout, quorum=promise_quorum,
                label=f"px-p1({txn})")
            promises.extend(r for r in replies.values()
                            if r is not None and r["ok"])
            if len(promises) < majority:
                return None

        # Choose values: highest-ballot accepted per instance; a free
        # instance (no accepted value in a full majority) means the
        # RM's ballot-0 vote cannot be chosen behind our back — abort.
        votes: Dict[int, str] = {}
        for rm in rms:
            best = None
            for reply in promises:
                entry = reply["accepted"].get(rm)
                if entry is not None and (best is None
                                          or entry[0] > best[0]):
                    best = entry
            votes[rm] = best[1] if best is not None else "aborted"

        # Phase 2: accepts from a majority.
        accepted = 0
        if self.pid in acceptors and self._accept_locally(txn, ballot,
                                                          votes):
            accepted += 1
            if sync_cost > 0:
                yield self.sim.timeout(sync_cost)
        needed = majority - accepted
        if needed > 0:
            if len(others) < needed:
                return None

            def accept_quorum(results):
                return sum(1 for r in results.values()
                           if r is not None and r["ok"]) >= needed

            replies = yield from self.processor.scatter_gather(
                others, "px-p2",
                lambda _server: {"txn": txn, "ballot": ballot,
                                 "votes": votes},
                timeout=timeout, quorum=accept_quorum,
                label=f"px-p2({txn})")
            accepted += sum(1 for r in replies.values()
                            if r is not None and r["ok"])
        if accepted < majority:
            return None
        return votes

    def _promise_locally(self, txn, ballot: int, rms):
        """Local-acceptor phase 1b for all instances (batched force);
        returns a reply-shaped dict, or None when preempted."""
        cells = [(rm, self._acceptor_cell(txn, rm)) for rm in rms]
        for _rm, cell in cells:
            state: Optional[AcceptorState] = cell.value
            if state is not None and ballot < state[0]:
                return None
        accepted = {}
        for rm, cell in cells:
            state = cell.value
            cell.value = (ballot,
                          state[1] if state else None,
                          state[2] if state else None)
            if state is not None and state[1] is not None:
                accepted[rm] = (state[1], state[2])
        return {"ok": True, "accepted": accepted}

    def _accept_locally(self, txn, ballot: int, votes) -> bool:
        """Local-acceptor phase 2b for all instances (batched force)."""
        cells = [(rm, self._acceptor_cell(txn, rm)) for rm in votes]
        for _rm, cell in cells:
            state: Optional[AcceptorState] = cell.value
            if state is not None and ballot < state[0]:
                return False
        for rm, cell in cells:
            cell.value = (ballot, ballot, votes[rm])
        return True

    def _acceptor_cell(self, txn, rm: int):
        """The durable cell of one consensus instance's acceptor state.

        Durable cells journal a forced WAL record on every write, so
        promises and accepts survive the acceptor's crash — the
        protocol's correctness leans on exactly that."""
        return self.processor.store.durable_cell(f"px:{txn}:{rm}")

    # ------------------------------------------------------------------
    # participant side
    # ------------------------------------------------------------------

    def handlers(self) -> Mapping[str, Callable]:
        """Paxos Commit's mailbox set (deterministic poll order)."""
        return {
            "prepare": self._handle_prepare,
            "release": self._handle_release,
            "txn-status": self._handle_txn_status,
            "px-accept": self._handle_px_accept,
            "px-accepted": self._handle_px_accepted,
            "px-p1": self._handle_px_p1,
            "px-p2": self._handle_px_p2,
        }

    def _handle_prepare(self, message) -> None:
        payload = message.payload
        txn = payload["txn"]
        verdict = self.host._vote(txn, payload)
        self._meta.setdefault(txn, dict(payload))
        if verdict is None:
            # In doubt from here until a decision applies — but unlike
            # 2PC, resolution needs a majority of acceptors, never the
            # coordinator itself.  The watchdog's resolver *decides*
            # rather than asks.
            self.note_in_doubt(txn, message.src)
            self.sim.timeout(self.config.access_timeout).add_callback(
                lambda _event, txn=txn: self.kick_resolver(txn)
            )
            self.processor.store.record_prepare(txn, payload["objects"])
            self.processor.spawn(
                f"px-vote{txn}", self._cast_vote(txn, "prepared", payload))
        else:
            self.processor.spawn(
                f"px-vote{txn}", self._cast_vote(txn, "aborted", payload))

    def _handle_release(self, message) -> None:
        txn = message.payload["txn"]
        outcome = message.payload["outcome"]
        meta = self._meta.get(txn)
        if meta is not None and meta["leader"] == self.pid:
            # A recovery leader finished our own transaction; the
            # client generator may still be waiting out its vote
            # collection.  Leave it the outcome — end_transaction pops
            # the memo, so this cannot outlive the transaction.
            self._outcome.setdefault(txn, outcome)
        self.host._apply_decision(txn, outcome)
        self._meta.pop(txn, None)

    def _handle_txn_status(self, message) -> None:
        # Kept for introspection/compat: answer from the journalled
        # decision record.  Nothing is ceded here — undecided really
        # means undecided, and the asker should lead a ballot instead.
        txn = message.payload["txn"]
        outcome = (self._outcome.get(txn)
                   or self.processor.store.decision_of(txn))
        self.processor.reply(message, "txn-status-reply",
                             {"outcome": outcome or "undecided"})

    def _handle_px_accept(self, message) -> None:
        payload = message.payload
        self.processor.spawn(
            f"px-acc{payload['txn']}",
            self._accept(payload["txn"], payload["rm"], payload["ballot"],
                         payload["vote"], payload["leader"]))

    def _handle_px_accepted(self, message) -> None:
        self._note_accepted(message.payload)

    def _handle_px_p1(self, message) -> None:
        self.processor.spawn(f"px-p1{message.payload['txn']}",
                             self._serve_promise(message))

    def _serve_promise(self, message):
        """Acceptor phase 1b (remote): all-instance promise + one
        batched force before the reply."""
        payload = message.payload
        reply = self._promise_locally(payload["txn"], payload["ballot"],
                                      payload["rms"])
        if reply is None:
            self.processor.reply(message, "px-p1-reply", {"ok": False})
            return
        sync_cost = self.config.storage_sync_cost
        if sync_cost > 0:
            yield self.sim.timeout(sync_cost)
        self.processor.reply(message, "px-p1-reply", reply)
        return
        yield  # pragma: no cover - generator form when sync cost is zero

    def _handle_px_p2(self, message) -> None:
        self.processor.spawn(f"px-p2{message.payload['txn']}",
                             self._serve_accept(message))

    def _serve_accept(self, message):
        """Acceptor phase 2b (remote): all-instance accept + one
        batched force before the reply."""
        payload = message.payload
        ok = self._accept_locally(payload["txn"], payload["ballot"],
                                  payload["votes"])
        if not ok:
            self.processor.reply(message, "px-p2-reply", {"ok": False})
            return
        sync_cost = self.config.storage_sync_cost
        if sync_cost > 0:
            yield self.sim.timeout(sync_cost)
        self.processor.reply(message, "px-p2-reply", {"ok": True})
        return
        yield  # pragma: no cover - generator form when sync cost is zero

    # ------------------------------------------------------------------
    # in-doubt resolution (recovery leadership)
    # ------------------------------------------------------------------

    def kick_resolver(self, txn) -> None:
        """Start deciding one in-doubt transaction (idempotent)."""
        if not self.processor.alive:
            return
        if txn in self.in_doubt and txn not in self.resolving:
            self.resolving.add(txn)
            if self.tracer is not None:
                self.tracer.emit("txn.indoubt", pid=self.pid, txn=str(txn),
                                 coordinator=self.in_doubt[txn])
            self.processor.spawn(f"resolve{txn}",
                                 self._resolve_in_doubt(txn))

    def _resolve_in_doubt(self, txn):
        """Become a recovery leader and *decide* the outcome from the
        acceptors — the coordinator is not consulted, so its crash
        bounds our in-doubt dwell at roughly one watchdog period plus
        a ballot round-trip.  Concurrent leaders are safe: ballots
        embed the pid and Paxos makes them all choose the same votes.
        A normally-delivered decide resolves the transaction while we
        lead; the loop notices and stops."""
        retry = self.config.access_timeout
        attempt = 1
        try:
            while txn in self.in_doubt:
                meta = self._meta.get(txn)
                if meta is None:  # pragma: no cover - stored at prepare
                    yield self.sim.timeout(retry)
                    continue
                ballot = attempt * BALLOT_STRIDE + self.pid
                votes = yield from self._lead(txn, meta, ballot)
                if votes is not None:
                    outcome = ("commit"
                               if all(v == "prepared"
                                      for v in votes.values())
                               else "abort")
                    if txn in self.in_doubt:
                        if self.tracer is not None:
                            self.tracer.emit("txn.resolve", pid=self.pid,
                                             txn=str(txn), outcome=outcome)
                        targets = sorted(set(meta["participants"])
                                         | {meta["leader"]})
                        yield from self._decide_and_distribute(
                            txn, outcome, targets)
                    break
                attempt += 1
                yield self.sim.timeout(retry)
        finally:
            self.resolving.discard(txn)

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------

    def on_crash(self) -> None:
        """Volatile leadership state dies; acceptor cells and prepare
        metadata are durable.  Unlike 2PC there is nothing to presume-
        abort: undecided transactions belong to the acceptors now, and
        a recovery leader — any prepared participant, or this node
        after recovery — finishes them."""
        self.resolving.clear()
        self._collect.clear()
        self._outcome.clear()

    def on_recover(self) -> None:
        for txn in sorted(self.in_doubt, key=repr):
            self.kick_resolver(txn)
