"""Presumed-abort two-phase commit (the backend PR 1's machinery became).

Moved verbatim out of ``core/access.py``: the prepare scatter, the
coordinator decision log, the decide fan-out, the in-doubt set with its
decide watchdog and resolver task, and the ``txn-status`` cession.  The
default-config simulation must stay byte-identical to the pre-refactor
golden trace (``tests/properties/test_storage_transparency.py``), so
every sim interaction — scatter/gather order, spawn names, timer
callbacks, forced-write points — is preserved exactly.

One behavioural addition rides along (trace-transparent by design):
the coordinator *retires* a decision's in-memory entry as soon as the
decide fan-out has left.  The WAL record written just before is the
durable authority — ``_handle_txn_status`` falls back to it — so the
in-memory map holds only in-flight transactions instead of growing
with history (``ProtocolMetrics.decisions_retired`` counts the pops).
The fallback changes no message payload and emits no event, which is
what keeps the golden trace pinned.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping

from ..core.errors import TransactionAborted
from ..node.transport import NoResponse
from .base import AtomicCommit


class TwoPhaseCommit(AtomicCommit):
    """Classic 2PC: the coordinator's log is the only decision authority.

    Blocking window: a prepared participant whose coordinator crashed
    before distributing the decision stays in doubt until the
    coordinator recovers (its resolver retries ``txn-status`` forever).
    """

    name = "2pc"

    def __init__(self, host: Any):
        super().__init__(host)
        #: coordinator-side decision log: txn -> undecided|commit|abort.
        #: Written before any decide message leaves, so in-doubt
        #: participants can query it (presumed abort when absent);
        #: retired to the WAL record once the fan-out is done.
        self.decisions: Dict[Any, str] = {}

    # ------------------------------------------------------------------
    # coordinator side
    # ------------------------------------------------------------------

    def prepare_commit(self, ctx):
        """Validate R4 across all participants (one voting round).

        Strict mode: every participant must still be in the partition
        the access was made in.  Weakened mode (§6): a participant in a
        *newer* partition may vote yes when conditions (1) and (2) hold
        — every object the transaction referenced is accessible in its
        current view and every participant is inside that view.
        Condition (3) is enforced by the recovery reads taking shared
        locks (see copy_update).
        """
        if ctx.poisoned:
            raise TransactionAborted(ctx.txn_id, ctx.poisoned)
        # Open the decision-log entry before any participant can vote
        # yes: an in-doubt participant querying us must find at least
        # "undecided", never a missing entry (which means presumed abort).
        # Journalled unforced — presumed abort means its *absence* is
        # already safe, so the open needs no sync of its own.
        if ctx.txn_id not in self.decisions:
            self.decisions[ctx.txn_id] = "undecided"
            self.processor.store.record_decision(ctx.txn_id, "undecided",
                                                 forced=False)
            self.host._audit_decision(ctx.txn_id, "undecided")
        state = self.state
        if not state.assigned or state.cur_id not in ctx.vpids:
            if ctx.vpids and not self.host._weakened_ok_locally(ctx):
                raise TransactionAborted(
                    ctx.txn_id, "coordinator changed partition (R4)"
                )
        votes_needed = sorted(ctx.participants - {self.pid})
        payload = {
            "txn": ctx.txn_id,
            "vpids": sorted(ctx.vpids),
            "objects": sorted(ctx.objects),
            "participants": sorted(ctx.participants),
            # placement epochs each access routed on (reshard R4 stamps)
            "epochs": {obj: ctx.placement_epochs.get(obj, 0)
                       for obj in sorted(ctx.objects)},
        }

        # Two-phase scatter: the prepare requests go out *before* the
        # local vote runs (participants learn of the transaction and
        # become in-doubt even when the coordinator's own vote fails —
        # the resolver machinery handles them), matching the original
        # spawn-then-vote ordering.
        call = self.processor.scatter(
            votes_needed, "prepare", lambda _server: payload,
            timeout=self.config.access_timeout,
        )
        if self.pid in ctx.participants:
            verdict = self.host._vote(ctx.txn_id, payload)
            if verdict is not None:
                raise TransactionAborted(ctx.txn_id, f"local vote: {verdict}")
            # Our own yes vote is a participant prepare record: force-
            # written (the classic 2PC force point), its model-time cost
            # overlapping the remote vote collection already in flight.
            self.processor.store.record_prepare(ctx.txn_id, ctx.objects)
            sync_cost = self.config.storage_sync_cost
            if sync_cost > 0:
                yield self.sim.timeout(sync_cost)
        results = yield from call.gather()
        for server in votes_needed:
            reply = results[server]
            status = ("no-response" if reply is None
                      else "yes" if reply["ok"] else reply["reason"])
            if status != "yes":
                raise TransactionAborted(
                    ctx.txn_id, f"participant {server} voted {status}"
                )
        return None

    def end_transaction(self, ctx, outcome: str):
        """Distribute the decision; participants release locks (strict 2PL).

        Decision messages are one-way: a participant that cannot be
        reached holds its locks until its own partition change clears
        them (strict mode) or until the lock timeout of a later
        conflicting transaction breaks the wait.
        """
        if outcome not in ("commit", "abort"):
            raise ValueError(f"unknown outcome {outcome!r}")
        if outcome == "commit" and self.decisions.get(ctx.txn_id) == "abort":
            # While we were collecting votes, an in-doubt participant
            # asked for the outcome and we ceded the abort (see
            # _handle_txn_status).  That answer is final — it may
            # already have been applied — so this transaction can no
            # longer commit.
            raise TransactionAborted(ctx.txn_id,
                                     "aborted while in doubt (R4)")
        if outcome == "commit" and ctx.txn_id in self.host._poisoned_txns:
            # Our own partition changed while the remote votes were in
            # flight and strict R4 force-aborted the transaction here
            # (on_partition_change): the local writes are already rolled
            # back and the locks dropped, so deciding commit now would
            # diverge from our own copies.  The coordinator still holds
            # its unilateral abort right at this point — exercise it.
            raise TransactionAborted(ctx.txn_id,
                                     "partition changed during commit (R4)")
        # Log the decision before the first decide message leaves: a
        # participant may lose the decide to a partition cut and query
        # the log later (see _resolve_in_doubt).  This is the
        # coordinator's forced write — the decide messages wait for it.
        self.decisions[ctx.txn_id] = outcome
        self.processor.store.record_decision(ctx.txn_id, outcome)
        self.host._audit_decision(ctx.txn_id, outcome)
        sync_cost = self.config.storage_sync_cost
        if sync_cost > 0:
            yield self.sim.timeout(sync_cost)
        for server in sorted(ctx.participants):
            if server == self.pid:
                self.host._apply_decision(ctx.txn_id, outcome)
            else:
                self.processor.send(server, "release",
                                    {"txn": ctx.txn_id, "outcome": outcome})
        # Retire the in-memory entry: the forced WAL record above is
        # the durable authority from here on (txn-status falls back to
        # it), so only in-flight transactions stay in the map.
        self.decisions.pop(ctx.txn_id, None)
        self.metrics.decisions_retired += 1
        return
        yield  # pragma: no cover - generator form when sync cost is zero

    # ------------------------------------------------------------------
    # participant side
    # ------------------------------------------------------------------

    def handlers(self) -> Mapping[str, Callable]:
        """2PC's mailbox set, in the dispatcher's historical poll order."""
        return {
            "prepare": self._handle_prepare,
            "release": self._handle_release,
            "txn-status": self._handle_txn_status,
        }

    def _handle_prepare(self, message):
        verdict = self.host._vote(message.payload["txn"], message.payload)
        if verdict is None:
            # A yes vote makes this transaction in-doubt here: we may
            # no longer abort it unilaterally until we learn the
            # coordinator's decision (classic 2PC uncertainty window).
            # Arm a decide watchdog (a bare timer, not a process): if
            # no decide arrived when it fires — lost to the network, a
            # cut, or a coordinator crash — start querying for the
            # outcome.  Normally the decide lands one round later and
            # the callback finds nothing to do.
            txn = message.payload["txn"]
            self.note_in_doubt(txn, message.src)
            self.sim.timeout(self.config.access_timeout).add_callback(
                lambda _event, txn=txn: self.kick_resolver(txn)
            )
            # The yes vote is 2PC's participant force point: the
            # prepare record must be durable before the vote leaves,
            # or a crash could silently forget it.  With a nonzero
            # sync cost the reply waits out the force write in a
            # spawned process; at zero cost it goes out immediately.
            self.processor.store.record_prepare(
                txn, message.payload["objects"])
            sync_cost = self.config.storage_sync_cost
            if sync_cost > 0:
                self.processor.spawn(
                    f"prepare-sync{txn}",
                    self._delayed_reply(sync_cost, message, "prepare-reply",
                                        {"ok": True}))
            else:
                self.processor.reply(message, "prepare-reply", {"ok": True})
        else:
            self.processor.reply(message, "prepare-reply",
                                 {"ok": False, "reason": verdict})

    def _handle_release(self, message) -> None:
        self.host._apply_decision(message.payload["txn"],
                                  message.payload["outcome"])

    def _handle_txn_status(self, message) -> None:
        # Presumed abort: a transaction with no decision-log entry never
        # entered its prepare round here, so no decide can have been
        # sent — answering "abort" is always safe.  A retired entry is
        # answered from its WAL record (same outcome, no extra events).
        txn = message.payload["txn"]
        outcome = self.decisions.get(txn)
        if outcome is None:
            outcome = self.processor.store.decision_of(txn) or "abort"
        if outcome == "undecided":
            # The asker is an in-doubt participant whose recovery is
            # blocked on this transaction.  No decide has left yet, so
            # aborting is still our unilateral right — cede it rather
            # than keep a whole partition's Update-Copies waiting on
            # our vote collection (the strict-R4 trade, routed safely
            # through the decision log; end_transaction honours it).
            outcome = "abort"
            self.decisions[txn] = "abort"
            # Journalled as a forced decision record (its sync latency
            # is absorbed by the status reply already in flight).
            self.processor.store.record_decision(txn, "abort")
            self.host._audit_decision(txn, "abort")
        self.processor.reply(message, "txn-status-reply",
                             {"outcome": outcome})

    # ------------------------------------------------------------------
    # in-doubt resolution
    # ------------------------------------------------------------------

    def kick_resolver(self, txn) -> None:
        """Start the in-doubt resolver for ``txn`` unless it is moot.

        Callable from anywhere (watchdog timer, partition change,
        recovery); idempotent via ``resolving``.  A crashed processor
        must not grow tasks — its ``on_recover`` restarts resolvers
        for whatever is still in doubt.
        """
        if not self.processor.alive:
            return
        if txn in self.in_doubt and txn not in self.resolving:
            self.resolving.add(txn)
            if self.tracer is not None:
                self.tracer.emit("txn.indoubt", pid=self.pid, txn=str(txn),
                                 coordinator=self.in_doubt[txn])
            self.processor.spawn(f"resolve{txn}",
                                 self._resolve_in_doubt(txn))

    def _resolve_in_doubt(self, txn):
        """Learn an in-doubt transaction's outcome from its coordinator.

        Retries through partitions and crashes: the coordinator logs
        its decision before sending any decide, so the answer is
        "commit"/"abort" once decided and "undecided" at most briefly.
        A normally-delivered decide resolves the transaction while we
        retry; the loop notices and stops.
        """
        coordinator = self.in_doubt[txn]
        retry = self.config.access_timeout
        try:
            while txn in self.in_doubt:
                try:
                    response = yield from self.processor.rpc(
                        coordinator, "txn-status", {"txn": txn},
                        timeout=retry,
                    )
                except NoResponse:
                    yield self.sim.timeout(retry)
                    continue
                outcome = response.payload["outcome"]
                if outcome == "undecided":
                    yield self.sim.timeout(retry)
                    continue
                if txn in self.in_doubt:
                    if self.tracer is not None:
                        self.tracer.emit("txn.resolve", pid=self.pid,
                                         txn=str(txn), outcome=outcome)
                    self.host._apply_decision(txn, outcome)
                break
        finally:
            self.resolving.discard(txn)

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------

    def on_crash(self) -> None:
        """The decision log survives the crash (real coordinators force-
        write it); entries still undecided can never have sent a decide,
        so crashing finalizes them as the presumed abort.  The
        finalization is journalled (unforced — it is a recovery
        re-interpretation, not a new force point) so WAL replay rebuilds
        the same decision log; the journalled record then lets every
        entry retire from memory."""
        self.resolving.clear()
        for txn, outcome in list(self.decisions.items()):
            if outcome == "undecided":
                self.decisions[txn] = "abort"
                self.processor.store.record_decision(txn, "abort",
                                                     forced=False)
                self.host._audit_decision(txn, "abort")
        retired = len(self.decisions)
        self.decisions.clear()
        self.metrics.decisions_retired += retired

    def on_recover(self) -> None:
        for txn in sorted(self.in_doubt, key=repr):
            self.kick_resolver(txn)
