"""E18 — client tier: session caching and lease-based local reads.

The client-tier claim: on Zipf-skewed hot-key workloads, a per-client
LRU cache plus lease-based bounded-staleness reads cuts p50/p99 client
latency below the no-session baseline at equal or lower messages per
committed program — while every cell stays 1SR (the protocol history is
untouched by local serves) and the runtime auditor's lease-staleness
check stays clean.

The sweep crosses cache policy (none / write-through / write-back) with
lease duration (off / short / the full probe period pi) and read
fraction, per protocol.  Lease cells run only on the virtual-partitions
family: the staleness bound L + Delta is anchored to the C6 window, so
view-less protocols get the cache rows only.  The open-loop Poisson
driver is on everywhere, so latency includes queueing — the number a
client would actually see.
"""

from __future__ import annotations

from repro.workload.parallel import run_many
from repro.workload.runner import ExperimentSpec, run_experiment
from repro.workload.generator import WorkloadSpec
from repro.workload.tables import format_quantiles, render_table

from _shared import bench_main, emit_metrics, report, run_once

#: protocols whose view state can anchor the C6 staleness bound
LEASE_PROTOCOLS = frozenset({"virtual-partitions"})
PROTOCOLS = ("virtual-partitions", "majority")
READ_FRACTIONS = (0.6, 0.9)
#: short lease vs the longest legal lease (L <= pi, default pi = 10)
LEASE_DURATIONS = (2.5, 10.0)
CACHE_CAPACITY = 8
ZIPF_S = 1.2

SMOKE = {"protocols": ("virtual-partitions",), "read_fractions": (0.9,),
         "lease_durations": (10.0,), "txns_per_client": 4}


def session_grid(protocol: str, lease_durations) -> list:
    """The (label, SessionSpec-or-None) cells one protocol sweeps."""
    from repro.client.session import SessionSpec

    cells = [
        ("baseline", None),
        ("cache-wt", SessionSpec(cache_capacity=CACHE_CAPACITY)),
        ("cache-wb", SessionSpec(cache_capacity=CACHE_CAPACITY,
                                 cache_policy="write-back")),
    ]
    if protocol in LEASE_PROTOCOLS:
        for duration in lease_durations:
            cells.append((f"lease-{duration:g}",
                          SessionSpec(lease_duration=duration)))
            cells.append((f"wb+lease-{duration:g}",
                          SessionSpec(cache_capacity=CACHE_CAPACITY,
                                      cache_policy="write-back",
                                      lease_duration=duration)))
    return cells


def cell_spec(protocol: str, label: str, session, read_fraction: float,
              txns_per_client: int, seed: int) -> ExperimentSpec:
    return ExperimentSpec(
        protocol=protocol,
        processors=4,
        objects=12,
        seed=seed,
        duration=300.0,
        grace=120.0,
        workload=WorkloadSpec(read_fraction=read_fraction, zipf_s=ZIPF_S,
                              mean_interarrival=5.0),
        retries=3,
        check=True,
        audit=True,
        txns_per_client=txns_per_client,
        open_loop=True,
        session=session,
    )


def cell_outcome(protocol: str, label: str, session,
                 read_fraction: float, result) -> dict:
    snapshot = result.registry.snapshot()
    histograms = snapshot["histograms"]
    program_latency = result.latency_summary()
    # a baseline read completes when its transaction commits, which is
    # exactly what sessions record for remote reads — so the program
    # latency histogram is the baseline's read-latency distribution
    read_latency = histograms.get("client.read_latency", program_latency)
    staleness = histograms.get("client.staleness", {"count": 0})
    lease = session.lease_duration if session is not None else 0.0
    bound = None
    if lease > 0:
        bound = lease + result.cluster.config.liveness_bound
    return {
        "protocol": protocol,
        "label": label,
        "read_fraction": read_fraction,
        "lease": lease,
        "committed": result.committed,
        "programs": result._client_counter("programs_committed")
        or result.committed,
        "p50": result.latency_p50,
        "p99": result.latency_p99,
        "read_latency": read_latency,
        "program_latency": program_latency,
        "staleness": staleness,
        "staleness_bound": bound,
        "msgs_per_program": result.messages_per_client_program,
        "local_read_fraction": result.local_read_fraction,
        "one_copy_ok": result.one_copy_ok,
        "audit_violations": len(result.audit_violations),
    }


def run(protocols=PROTOCOLS, read_fractions=READ_FRACTIONS,
        lease_durations=LEASE_DURATIONS, txns_per_client: int = 10,
        seed: int = 18, workers=None) -> list:
    cells = [
        (protocol, label, session, rf)
        for protocol in protocols
        for label, session in session_grid(protocol, lease_durations)
        for rf in read_fractions
    ]
    specs = [cell_spec(protocol, label, session, rf, txns_per_client, seed)
             for protocol, label, session, rf in cells]
    results = run_many(specs, workers=workers)
    outcomes = [cell_outcome(protocol, label, session, rf, result)
                for (protocol, label, session, rf), result
                in zip(cells, results)]

    rows = []
    for o in outcomes:
        rows.append([
            o["protocol"], o["label"], f"{o['read_fraction']:g}",
            o["programs"],
            f"{o['local_read_fraction']:.2f}",
            format_quantiles(o["read_latency"]),
            f"{o['p50']:.1f}/{o['p99']:.1f}",
            format_quantiles(o["staleness"], ("p50", "max")),
            f"{o['msgs_per_program']:.1f}",
            "yes" if o["one_copy_ok"] else "NO",
            o["audit_violations"],
        ])
    report(render_table(
        ["protocol", "session", "rf", "programs", "local reads",
         "read p50/p99", "prog p50/p99", "stale p50/max", "msgs/prog",
         "1SR", "audit viol"],
        rows,
        title=f"E18 Client tier: cache policy x lease duration x read "
              f"fraction (zipf s={ZIPF_S}, open loop, seed {seed})",
    ))
    emit_metrics("client", {
        f"{o['protocol']}.{o['label']}.rf{o['read_fraction']:g}.{key}":
        float(o[key])
        for o in outcomes
        for key in ("p50", "p99", "msgs_per_program", "local_read_fraction")
    })
    return outcomes


def check(outcomes: list) -> None:
    """Deterministic assertions only (fixed seeds, simulated time)."""
    for o in outcomes:
        where = f"{o['protocol']}/{o['label']}/rf{o['read_fraction']}"
        assert o["one_copy_ok"] is True, f"{where}: not provably 1SR"
        assert o["audit_violations"] == 0, f"{where}: auditor convicted"
        assert o["programs"] > 0, f"{where}: nothing committed"
        if o["label"] != "baseline":
            assert o["local_read_fraction"] > 0, \
                f"{where}: session tier served nothing locally"
        if o["staleness_bound"] is not None and o["staleness"]["count"]:
            assert o["staleness"]["max"] <= o["staleness_bound"] + 1e-9, \
                f"{where}: staleness {o['staleness']['max']} over bound"

    by_cell = {(o["protocol"], o["label"], o["read_fraction"]): o
               for o in outcomes}
    protocols = {o["protocol"] for o in outcomes}
    fractions = sorted({o["read_fraction"] for o in outcomes})
    leases = sorted({o["lease"] for o in outcomes if o["lease"] > 0})
    for protocol in protocols:
        best = (f"wb+lease-{max(leases):g}"
                if protocol in LEASE_PROTOCOLS and leases else "cache-wb")
        for rf in fractions:
            baseline = by_cell[(protocol, "baseline", rf)]
            session = by_cell[(protocol, best, rf)]
            where = f"{protocol}/{best}/rf{rf}"
            # the headline: latency measurably below the baseline at
            # equal-or-lower message cost per committed program
            assert session["p50"] < baseline["p50"], \
                f"{where}: p50 {session['p50']} !< {baseline['p50']}"
            assert session["p99"] < baseline["p99"], \
                f"{where}: p99 {session['p99']} !< {baseline['p99']}"
            assert session["msgs_per_program"] <= \
                baseline["msgs_per_program"] + 1e-9, \
                f"{where}: msgs {session['msgs_per_program']} > " \
                f"{baseline['msgs_per_program']}"
    # at least one lease cell actually served lease reads
    if any(p in LEASE_PROTOCOLS for p in protocols) and leases:
        served = sum(o["staleness"]["count"] for o in outcomes
                     if o["lease"] > 0 and o["staleness"]["count"])
        assert served > 0, "no lease-served reads anywhere in the sweep"


def test_benchmark_client(benchmark):
    outcomes = run_once(benchmark, run)
    check(outcomes)


if __name__ == "__main__":
    bench_main("bench_client", run, check, smoke=SMOKE)
