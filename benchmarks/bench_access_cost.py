"""E3 — claim C1: physical accesses per logical operation, by protocol.

The paper's efficiency claim (§1, §7): logical reads cost ONE physical
access under virtual partitions, versus a quorum/majority of accesses
under voting protocols [T, G]; when reads outnumber writes, the total
access cost is lower.  This bench sweeps the read fraction under a
failure-free workload, paired across protocols, and reports:

* physical accesses per logical read (1.0 for read-one protocols),
* physical accesses per logical operation (the weighted mix),
* data messages per committed transaction (excluding the probe
  background, reported separately).

Expected shape: virtual-partitions matches ROWA, beats quorum/majority
everywhere on reads, and beats them on the mix once the read fraction
is high; the voting protocols' cheaper writes (majority vs write-all)
win only at write-heavy mixes — the crossover the table exposes.
"""

from __future__ import annotations

from repro.workload import ExperimentSpec, WorkloadSpec, sweep_protocols
from repro.workload.tables import render_table

from _shared import emit_metrics, report, run_once

PROTOCOLS = ["virtual-partitions", "rowa", "quorum", "majority",
             "missing-writes"]
READ_FRACTIONS = [0.5, 0.7, 0.9, 0.99]
SMOKE = {"read_fractions": [0.9], "duration": 60.0,
         "protocols": ["virtual-partitions", "rowa"]}
BACKGROUND = {"probe", "probe-ack", "newvp", "vp-accept", "commit",
              "vpread", "mw-note"}


def data_messages(result) -> int:
    return sum(count for kind, count in result.network["by_kind"].items()
               if kind not in BACKGROUND)


def run(read_fractions=READ_FRACTIONS, duration=300.0,
        protocols=PROTOCOLS) -> dict:
    outcomes: dict = {}
    rows = []
    for fraction in read_fractions:
        spec = ExperimentSpec(
            processors=5, objects=10, seed=21, duration=duration,
            workload=WorkloadSpec(read_fraction=fraction, ops_per_txn=2,
                                  mean_interarrival=10.0),
        )
        results = sweep_protocols(spec, protocols)
        outcomes[fraction] = results
        for name in protocols:
            r = results[name]
            rows.append([
                f"{fraction:.2f}", name, r.committed,
                r.reads_per_logical_read, r.writes_per_logical_write,
                r.accesses_per_operation,
                data_messages(r) / max(r.committed, 1),
            ])
    report(render_table(
        ["read frac", "protocol", "committed", "phys/logical read",
         "phys/logical write", "phys/op (mix)", "data msgs/txn"],
        rows,
        title="E3  Access cost by read fraction (5 processors, full "
              "replication, no failures)",
    ))
    emit_metrics("access_cost", {
        f"rf{fraction:.2f}.{name}.{metric}": value
        for fraction, results in outcomes.items()
        for name in protocols
        for metric, value in (
            ("committed", results[name].committed),
            ("phys_per_read", results[name].reads_per_logical_read),
            ("phys_per_op", results[name].accesses_per_operation),
        )
    })
    return outcomes


def test_benchmark_access_cost(benchmark):
    outcomes = run_once(benchmark, run)
    for fraction, results in outcomes.items():
        vp = results["virtual-partitions"]
        quorum = results["quorum"]
        majority = results["majority"]
        # Read-one holds exactly, regardless of mix:
        assert vp.reads_per_logical_read == 1.0
        # Voting protocols pay a quorum per read (3 of 5 here):
        assert quorum.reads_per_logical_read >= 3.0
        assert majority.reads_per_logical_read >= 3.0
    # The paper's headline: with reads outnumbering writes, the overall
    # access cost beats the voting protocols...
    high = outcomes[0.99]
    assert (high["virtual-partitions"].accesses_per_operation
            < high["quorum"].accesses_per_operation)
    # ...and the crossover exists: at a write-heavy mix the voting
    # protocols' majority writes undercut write-all.
    low = outcomes[0.5]
    assert (low["quorum"].writes_per_logical_write
            < low["virtual-partitions"].writes_per_logical_write)


if __name__ == "__main__":
    run()
