"""E3 — claim C1: physical accesses per logical operation, by protocol.

The paper's efficiency claim (§1, §7): logical reads cost ONE physical
access under virtual partitions, versus a quorum/majority of accesses
under voting protocols [T, G]; when reads outnumber writes, the total
access cost is lower.  This bench sweeps the read fraction under a
failure-free workload, paired across protocols, and reports:

* physical accesses per logical read (1.0 for read-one protocols),
* physical accesses per logical operation (the weighted mix),
* data messages per committed transaction (excluding the probe
  background, reported separately).

Expected shape: virtual-partitions matches ROWA, beats quorum/majority
everywhere on reads, and beats them on the mix once the read fraction
is high; the voting protocols' cheaper writes (majority vs write-all)
win only at write-heavy mixes — the crossover the table exposes.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.workload import ExperimentSpec, WorkloadSpec, run_many, sweep_protocols
from repro.workload.tables import render_table

from _shared import bench_main, cost_metrics, emit_metrics, report, run_once

PROTOCOLS = ["virtual-partitions", "rowa", "quorum", "majority",
             "missing-writes"]
READ_FRACTIONS = [0.5, 0.7, 0.9, 0.99]
SMOKE = {"read_fractions": [0.9], "duration": 60.0,
         "protocols": ["virtual-partitions", "rowa"],
         "batching_txns": 3}
BACKGROUND = {"probe", "probe-ack", "newvp", "vp-accept", "commit",
              "vpread", "mw-note"}

#: transport batching window of the paired comparison (≤ δ = 1.0)
BATCH_WINDOW = 0.5
#: concurrent clients per processor in the batching comparison — the
#: same-coordinator overlap is what per-destination batching coalesces
BATCH_CLIENTS = 3


def data_messages(result) -> int:
    return sum(count for kind, count in result.network["by_kind"].items()
               if kind not in BACKGROUND)


class PrivateObjects:
    """Picklable per-client object assignment (two private objects per
    client) — a callable object so the spec can cross the ``run_many``
    process boundary."""

    def __init__(self, clients: int):
        self.clients = clients

    def __call__(self, pid: int, client: int) -> list:
        base = ((pid - 1) * self.clients + client) * 2
        return [f"o{base}", f"o{base + 1}"]


def batching_spec(window: float, txns_per_client: int,
                  clients: int = BATCH_CLIENTS) -> ExperimentSpec:
    """The paired-comparison spec: identical in everything but the window.

    Each client owns two private, fully replicated objects, so there are
    no lock conflicts and every attempted transaction commits in both
    runs; a fixed per-client transaction count makes the attempted work
    identical regardless of completion-time drift.  The only degree of
    freedom left is the transport — exactly what the pair measures.
    """
    return ExperimentSpec(
        processors=5, objects=5 * clients * 2, seed=11,
        duration=600.0, grace=120.0,
        workload=WorkloadSpec(read_fraction=0.5, ops_per_txn=2,
                              mean_interarrival=4.0),
        config=ProtocolConfig(delta=1.0, batch_window=window),
        clients=clients, txns_per_client=txns_per_client,
        objects_for=PrivateObjects(clients),
        check=True,
    )


def run_batching(txns_per_client: int = 8, workers=None) -> dict:
    """Batched vs unbatched paired runs of the VP protocol."""
    windows = (0.0, BATCH_WINDOW)
    results = dict(zip(windows, run_many(
        [batching_spec(window, txns_per_client) for window in windows],
        workers=workers,
    )))
    rows = []
    for window, r in sorted(results.items()):
        rows.append([
            f"{window:.2f}", r.committed, str(r.one_copy_ok),
            r.network["sent"], r.network["envelopes"],
            f"{r.envelopes_per_committed_txn:.2f}",
            f"{r.batch_occupancy:.2f}",
        ])
    report(render_table(
        ["batch window", "committed", "1SR", "logical msgs", "envelopes",
         "envelopes/txn", "occupancy"],
        rows,
        title=f"E3b  Transport batching, paired runs (virtual partitions, "
              f"{BATCH_CLIENTS} clients/processor, private objects)",
    ))
    emit_metrics("access_cost_batching", {
        f"w{window:.2f}.{metric}": value
        for window, r in sorted(results.items())
        for metric, value in {
            "committed": r.committed, **cost_metrics(r),
        }.items()
    })
    return results


def run(read_fractions=READ_FRACTIONS, duration=300.0,
        protocols=PROTOCOLS, batching_txns=8, workers=None) -> dict:
    outcomes: dict = {}
    rows = []
    for fraction in read_fractions:
        spec = ExperimentSpec(
            processors=5, objects=10, seed=21, duration=duration,
            workload=WorkloadSpec(read_fraction=fraction, ops_per_txn=2,
                                  mean_interarrival=10.0),
        )
        results = sweep_protocols(spec, protocols, workers=workers)
        outcomes[fraction] = results
        for name in protocols:
            r = results[name]
            rows.append([
                f"{fraction:.2f}", name, r.committed,
                r.reads_per_logical_read, r.writes_per_logical_write,
                r.accesses_per_operation,
                data_messages(r) / max(r.committed, 1),
            ])
    report(render_table(
        ["read frac", "protocol", "committed", "phys/logical read",
         "phys/logical write", "phys/op (mix)", "data msgs/txn"],
        rows,
        title="E3  Access cost by read fraction (5 processors, full "
              "replication, no failures)",
    ))
    emit_metrics("access_cost", {
        f"rf{fraction:.2f}.{name}.{metric}": value
        for fraction, results in outcomes.items()
        for name in protocols
        for metric, value in (
            ("committed", results[name].committed),
            ("phys_per_read", results[name].reads_per_logical_read),
            ("phys_per_op", results[name].accesses_per_operation),
            ("msgs_per_txn", results[name].messages_per_committed_txn),
            ("envelopes_per_txn",
             results[name].envelopes_per_committed_txn),
        )
    })
    outcomes["batching"] = run_batching(txns_per_client=batching_txns,
                                        workers=workers)
    return outcomes


def test_benchmark_access_cost(benchmark):
    outcomes = run_once(benchmark, run)
    paired = outcomes.pop("batching")
    plain, batched = paired[0.0], paired[BATCH_WINDOW]
    # Batching is cost-transparent: same committed work, same 1SR
    # verdict, strictly fewer envelopes for the same logical traffic.
    assert batched.committed == plain.committed > 0
    assert batched.one_copy_ok and plain.one_copy_ok
    assert plain.network["envelopes"] == plain.network["sent"]
    assert (batched.envelopes_per_committed_txn
            < plain.envelopes_per_committed_txn)
    assert batched.batch_occupancy > 1.0
    for fraction, results in outcomes.items():
        vp = results["virtual-partitions"]
        quorum = results["quorum"]
        majority = results["majority"]
        # Read-one holds exactly, regardless of mix:
        assert vp.reads_per_logical_read == 1.0
        # Voting protocols pay a quorum per read (3 of 5 here):
        assert quorum.reads_per_logical_read >= 3.0
        assert majority.reads_per_logical_read >= 3.0
    # The paper's headline: with reads outnumbering writes, the overall
    # access cost beats the voting protocols...
    high = outcomes[0.99]
    assert (high["virtual-partitions"].accesses_per_operation
            < high["quorum"].accesses_per_operation)
    # ...and the crossover exists: at a write-heavy mix the voting
    # protocols' majority writes undercut write-all.
    low = outcomes[0.5]
    assert (low["quorum"].writes_per_logical_write
            < low["virtual-partitions"].writes_per_logical_write)


if __name__ == "__main__":
    bench_main("bench_access_cost", run, smoke=SMOKE)
