"""E10 (extension) — concurrency control ablation: 2PL vs TSO.

Assumption A1 only requires the CC protocol to be CP-serializable and
the paper names both two-phase locking [EGLT] and timestamp ordering
[BSR] as valid choices.  This ablation runs the identical workload
under both, confirming the replica control layer's independence of the
choice and characterizing their different conflict behaviour:

* 2PL resolves conflicts by *waiting* (and pays deadlock-timeout stalls
  when read-local-then-write-all waits cycle);
* TSO resolves them by *aborting late operations* (and pays retries).

Both must yield one-copy serializable histories under partitions.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.workload import ExperimentSpec, WorkloadSpec, run_many
from repro.workload.tables import render_table

from _shared import bench_main, emit_metrics, report, run_once

SMOKE = {"duration": 80.0, "contentions": ("low",)}


class PartitionMidRun:
    """Picklable failure schedule: partition at 37.5% of the run, heal
    at 65% — a callable object so the spec can cross the ``run_many``
    process boundary."""

    def __init__(self, duration: float):
        self.duration = duration

    def __call__(self, cluster) -> None:
        cluster.injector.partition_at(self.duration * 0.375,
                                      [{1, 2, 3}, {4, 5}])
        cluster.injector.heal_all_at(self.duration * 0.65)


def cc_spec(cc: str, contention: str,
            duration: float = 400.0) -> ExperimentSpec:
    objects = 3 if contention == "high" else 12
    return ExperimentSpec(
        processors=5, objects=objects, seed=17, duration=duration,
        config=ProtocolConfig(delta=1.0, cc=cc),
        workload=WorkloadSpec(read_fraction=0.7, ops_per_txn=2,
                              mean_interarrival=6.0),
        retries=3,
        check=True,  # 1SR verdict computed in the (possibly child) run
        failures=PartitionMidRun(duration),
    )


def run(duration: float = 400.0, contentions=("low", "high"),
        workers=None) -> dict:
    keys = [(contention, cc) for contention in contentions
            for cc in ("2pl", "tso")]
    results = run_many(
        [cc_spec(cc, contention, duration=duration)
         for contention, cc in keys],
        workers=workers,
    )
    outcomes = {}
    rows = []
    for (contention, cc), result in zip(keys, results):
        outcome = {
            "committed": result.committed,
            "aborted": result.aborted,
            "commit_rate": result.commit_rate,
            # three-valued verdict: inconclusive (None) is not a violation
            "one_copy_ok": result.one_copy_ok is not False,
        }
        outcomes[(contention, cc)] = outcome
        rows.append([contention, cc, outcome["committed"],
                     outcome["aborted"],
                     f"{outcome['commit_rate']:.2f}",
                     outcome["one_copy_ok"]])
    report(render_table(
        ["contention", "cc", "committed", "aborted", "commit rate",
         "no 1SR violation"],
        rows,
        title="E10 CC ablation under a mid-run partition/heal "
              "(virtual partitions protocol, 70% reads)",
    ))
    emit_metrics("cc_ablation", {
        f"{contention}.{cc}.{metric}": outcome[metric]
        for (contention, cc), outcome in outcomes.items()
        for metric in ("committed", "aborted")
    })
    return outcomes


def test_benchmark_cc_ablation(benchmark):
    outcomes = run_once(benchmark, run)
    for key, outcome in outcomes.items():
        assert outcome["one_copy_ok"], f"1SR violated under {key}"
        assert outcome["committed"] > 0
    # Both CC protocols sustain comparable committed work at low
    # contention (the replica control layer dominates).
    low_2pl = outcomes[("low", "2pl")]["committed"]
    low_tso = outcomes[("low", "tso")]["committed"]
    assert min(low_2pl, low_tso) > 0.6 * max(low_2pl, low_tso)


if __name__ == "__main__":
    bench_main("bench_cc_ablation", run, smoke=SMOKE)
