"""E10 (extension) — concurrency control ablation: 2PL vs TSO.

Assumption A1 only requires the CC protocol to be CP-serializable and
the paper names both two-phase locking [EGLT] and timestamp ordering
[BSR] as valid choices.  This ablation runs the identical workload
under both, confirming the replica control layer's independence of the
choice and characterizing their different conflict behaviour:

* 2PL resolves conflicts by *waiting* (and pays deadlock-timeout stalls
  when read-local-then-write-all waits cycle);
* TSO resolves them by *aborting late operations* (and pays retries).

Both must yield one-copy serializable histories under partitions.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import ProtocolConfig
from repro.workload import ExperimentSpec, WorkloadSpec, run_experiment
from repro.workload.tables import render_table

from _shared import emit_metrics, report, run_once

SMOKE = {"duration": 80.0, "contentions": ("low",)}


def run_cc(cc: str, contention: str, duration: float = 400.0) -> dict:
    objects = 3 if contention == "high" else 12
    spec = ExperimentSpec(
        processors=5, objects=objects, seed=17, duration=duration,
        config=ProtocolConfig(delta=1.0, cc=cc),
        workload=WorkloadSpec(read_fraction=0.7, ops_per_txn=2,
                              mean_interarrival=6.0),
        retries=3,
        check=False,
    )

    def partition_mid_run(cluster):
        cluster.injector.partition_at(duration * 0.375, [{1, 2, 3}, {4, 5}])
        cluster.injector.heal_all_at(duration * 0.65)

    spec = replace(spec, failures=partition_mid_run)
    result = run_experiment(spec)
    from repro.analysis.one_copy import check_one_copy
    verdict = check_one_copy(result.cluster.history, exact_limit=12)
    return {
        "committed": result.committed,
        "aborted": result.aborted,
        "commit_rate": result.commit_rate,
        "one_copy_ok": verdict.ok is not False,
    }


def run(duration: float = 400.0, contentions=("low", "high")) -> dict:
    outcomes = {}
    rows = []
    for contention in contentions:
        for cc in ("2pl", "tso"):
            outcome = run_cc(cc, contention, duration=duration)
            outcomes[(contention, cc)] = outcome
            rows.append([contention, cc, outcome["committed"],
                         outcome["aborted"],
                         f"{outcome['commit_rate']:.2f}",
                         outcome["one_copy_ok"]])
    report(render_table(
        ["contention", "cc", "committed", "aborted", "commit rate",
         "no 1SR violation"],
        rows,
        title="E10 CC ablation under a mid-run partition/heal "
              "(virtual partitions protocol, 70% reads)",
    ))
    emit_metrics("cc_ablation", {
        f"{contention}.{cc}.{metric}": outcome[metric]
        for (contention, cc), outcome in outcomes.items()
        for metric in ("committed", "aborted")
    })
    return outcomes


def test_benchmark_cc_ablation(benchmark):
    outcomes = run_once(benchmark, run)
    for key, outcome in outcomes.items():
        assert outcome["one_copy_ok"], f"1SR violated under {key}"
        assert outcome["committed"] > 0
    # Both CC protocols sustain comparable committed work at low
    # contention (the replica control layer dominates).
    low_2pl = outcomes[("low", "2pl")]["committed"]
    low_tso = outcomes[("low", "tso")]["committed"]
    assert min(low_2pl, low_tso) > 0.6 * max(low_2pl, low_tso)


if __name__ == "__main__":
    run()
