"""E12 (extension) — recovery cost under the durable storage engine.

The §6 log catch-up ships only the write-log entries a stale copy
missed — but an unbounded per-copy log is not free: it is memory that
grows with every write.  The storage engine's checkpoint/compaction
machinery bounds it, at a price: a requester whose copy predates the
retained floor can no longer be served from the log and falls back to
Fig. 9's full-object transfer.

This bench stages the trade directly: a partition, a sustained write
burst on the majority side, and a heal.  With compaction off the
minority catches up from the log (cheap transfer, unbounded retained
log); with compaction on the retained log stays bounded and the
catch-up degrades to a full transfer.  Either way the healed copy is
correct — compaction trades transfer units for memory, never safety.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.core.config import CATCHUP_LOG, INIT_PREVIOUS, ProtocolConfig
from repro.workload.tables import render_table

from _shared import bench_main, emit_metrics, report, run_once

OBJECT_SIZE = 100
WRITE_BURST = 30
LOG_RETAIN = 4
CHECKPOINT_EVERY = 20


def recovery_cost(burst: int, log_retain, checkpoint_every: int) -> dict:
    """Partition, write ``burst`` times on the majority side, heal.

    Returns transfer/memory/journal counters after the minority has
    provably caught up.
    """
    config = ProtocolConfig(
        delta=1.0, init_strategy=INIT_PREVIOUS, catchup=CATCHUP_LOG,
        log_retain=log_retain, checkpoint_every=checkpoint_every,
    )
    cluster = Cluster(processors=5, seed=13, config=config)
    cluster.place("x", holders=[1, 2, 3, 4, 5], initial=0, size=OBJECT_SIZE)
    cluster.start()
    cluster.injector.partition_at(5.0, [{1, 2, 3}, {4, 5}])
    cluster.run(until=40.0)
    for index in range(burst):
        cluster.write_once(1, "x", index)
        cluster.run(until=cluster.sim.now + 10.0)
    heal_at = cluster.sim.now + 1.0
    cluster.injector.heal_all_at(heal_at)
    cluster.run(until=heal_at + cluster.config.liveness_bound + 15)
    value, _ = cluster.processor(5).store.peek("x")
    assert value == burst - 1, f"p5 not recovered: {value}"
    totals = cluster.total_metrics()
    retained = wal_appends = forced = checkpoints = compacted = 0
    for pid in cluster.pids:
        store = cluster.processors[pid].store
        retained += store.retained_entries()
        wal_appends += store.stats.wal_appends
        forced += store.stats.forced_syncs
        checkpoints += store.stats.checkpoints
        compacted += store.stats.compacted_entries
    return {
        "transfer_units": totals.transfer_units,
        "catchup_fallbacks": totals.catchup_fallbacks,
        "retained_entries": retained,
        "wal_appends": wal_appends,
        "forced_syncs": forced,
        "checkpoints": checkpoints,
        "compacted_entries": compacted,
    }


CONFIGS = [
    ("compaction off (unbounded log)", None, 0),
    (f"compaction on (retain {LOG_RETAIN}, ckpt {CHECKPOINT_EVERY})",
     LOG_RETAIN, CHECKPOINT_EVERY),
]
COLUMNS = ("transfer_units", "catchup_fallbacks", "retained_entries",
           "wal_appends", "checkpoints", "compacted_entries")
SMOKE = {"burst": 6, "configs": CONFIGS}


def run(burst: int = WRITE_BURST, configs=CONFIGS, workers=None) -> dict:
    # ``workers`` accepted for CLI uniformity; a no-op — each policy
    # stages a partition/burst/heal against a live cluster.
    del workers
    outcomes: dict = {}
    rows = []
    for label, retain, every in configs:
        result = recovery_cost(burst, retain, every)
        outcomes[label] = result
        rows.append([label] + [result[c] for c in COLUMNS])
    report(render_table(
        ["policy", "transfer units", "fallbacks", "retained log",
         "WAL appends", "checkpoints", "compacted"],
        rows,
        title=f"E12 Heal after {burst} writes on a size-{OBJECT_SIZE} "
              "object (5 processors, 3|2 partition, log catch-up)",
    ))
    emit_metrics("recovery_cost", {
        f"{label}.{metric}": outcome[metric]
        for label, outcome in outcomes.items()
        for metric in COLUMNS
    })
    return outcomes


def test_benchmark_recovery_cost(benchmark):
    outcomes = run_once(benchmark, run)
    off = outcomes[CONFIGS[0][0]]
    on = outcomes[CONFIGS[1][0]]
    # Without compaction the retained log grows with the burst and the
    # catch-up is served from it (entries, not whole objects).
    assert off["retained_entries"] >= WRITE_BURST
    assert off["catchup_fallbacks"] == 0
    assert off["transfer_units"] < OBJECT_SIZE
    # With compaction the retained log is bounded and the stale
    # minority fell back to full-object transfers — dearer in units,
    # still correct (the in-bench recovery assert saw the last value).
    assert on["retained_entries"] < off["retained_entries"]
    assert on["compacted_entries"] > 0
    assert on["catchup_fallbacks"] >= 1
    assert on["transfer_units"] >= OBJECT_SIZE


if __name__ == "__main__":
    bench_main("bench_recovery_cost", run, smoke=SMOKE)
