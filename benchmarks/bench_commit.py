"""E17 — atomic-commit backends: 2PC vs Paxos Commit under coordinator loss.

Two measurements:

* **Blocking window** (deterministic single-transaction scenarios): a
  coordinator is crashed between the prepare round and the decide
  fan-out.  Under 2PC the prepared participants stay in doubt until the
  coordinator's WAL comes back — the dwell scales with the outage.
  Under Paxos Commit the surviving majority of acceptors lets recovery
  leaders finish the transaction without the coordinator, so the dwell
  is a few timeout rounds regardless of the outage length.
* **Nemesis campaigns** (crash-heavy randomized fault schedules, the
  hunter's machinery with the invariant auditor and 1SR checker armed):
  both backends must survive every campaign unconvicted; the table
  shows what Paxos Commit's acceptor round costs in messages per
  transaction and what it buys in in-doubt dwell.
"""

from __future__ import annotations

from repro import Cluster, ProtocolConfig
from repro.net.nemesis import NemesisMix
from repro.workload.hunt import HuntConfig, campaign_spec, plan_campaigns, verdict_of
from repro.workload.parallel import run_many
from repro.workload.tables import render_table

from _shared import bench_main, emit_metrics, report, run_once

BACKENDS = ["2pc", "paxos"]
#: crash-heavy diet: the coordinator-loss hole E17 is about, plus
#: enough partitions and link trouble to keep the resolvers honest
CRASH_MIX = NemesisMix(crash=3.0, cut=1.0, oneway=0.5, surge=0.5,
                       grey=0.5, dup=0.25, flap=0.5, partition=1.0)
SMOKE = {"campaigns": 2}

TXN = (1, 1)


def blocking_window(backend: str, recover_after=None) -> dict:
    """Crash the coordinator between prepare and decide; measure how
    long the prepared participants dwell in doubt.  ``recover_after``
    sim-units later the coordinator comes back (None = never)."""
    config = ProtocolConfig(delta=4.0, storage_sync_cost=3.0,
                            commit_backend=backend)
    cluster = Cluster(processors=3, seed=3, config=config, audit=True)
    cluster.place("x", holders=[1, 2, 3], initial=0)
    cluster.start()
    cluster.run(until=5.0)
    cluster.write_once(1, "x", 7)

    def prepared_everywhere() -> bool:
        if backend == "2pc":
            # the decision is logged; the decide fan-out is waiting out
            # the storage sync and has not left yet
            return cluster.processor(1).store.decision_of(TXN) == "commit"
        # paxos: every ballot-0 vote accepted at a majority of acceptors
        for acceptor in (2, 3):
            store = cluster.processor(acceptor).store
            for rm in (1, 2, 3):
                value = store.durable_cell(f"px:{TXN}:{rm}").value
                if value is None or value[1] is None:
                    return False
        return True

    while not prepared_everywhere():
        cluster.sim.run(until=cluster.sim.now + 0.25)
        assert cluster.sim.now < 120.0, "prepare phase never completed"
    cluster.injector.crash_at(cluster.sim.now + 0.1, 1)
    if recover_after is not None:
        cluster.injector.recover_at(cluster.sim.now + recover_after, 1)
    horizon = (recover_after or 0.0) + 8 * cluster.config.access_timeout
    cluster.run(until=cluster.sim.now + horizon)

    dwells = [d for pid in (2, 3)
              for d in cluster.protocol(pid).commit.metrics.in_doubt_dwell]
    resolved = all(TXN not in cluster.protocol(pid).commit.in_doubt
                   for pid in (2, 3))
    return {
        "backend": backend,
        "recover_after": recover_after,
        "resolved": resolved,
        "dwell": max(dwells) if resolved and dwells else None,
        "status": cluster.history.txns[TXN].status,
        "audit_violations": len(cluster.auditor.violations),
    }


def campaign_outcomes(backend: str, campaigns: int, seed: int = 0,
                      workers=None) -> dict:
    """Fixed-seed crash-heavy nemesis campaigns against one backend."""
    cfg = HuntConfig(commit_backend=backend, campaigns=campaigns,
                     seed=seed, mix=CRASH_MIX, workers=workers)
    plans = plan_campaigns(cfg)
    specs = [campaign_spec(cfg, actions, s) for s, actions in plans]
    results = run_many(specs, workers=workers)
    committed = sum(r.committed for r in results)
    dwell_count, dwell_sum, dwell_max = 0, 0.0, 0.0
    for r in results:
        summary = (r.registry.snapshot()["histograms"]
                   .get("txn.in_doubt_dwell", {"count": 0}))
        if summary["count"]:
            dwell_count += summary["count"]
            dwell_sum += summary["sum"]
            dwell_max = max(dwell_max, summary["max"])
    per_txn = [r.txn_messages_per_committed_txn
               for r in results if r.committed]
    return {
        "campaigns": campaigns,
        "committed": committed,
        "aborted": sum(r.aborted for r in results),
        "commit_rate": committed / max(1, sum(r.attempted for r in results)),
        "txn_msgs_per_commit": (sum(per_txn) / len(per_txn)
                                if per_txn else 0.0),
        "in_doubt_count": dwell_count,
        "in_doubt_dwell_mean": dwell_sum / dwell_count if dwell_count else 0.0,
        "in_doubt_dwell_max": dwell_max,
        "audit_violations": sum(len(r.audit_violations) for r in results),
        "unserializable": sum(r.one_copy_ok is False for r in results),
        "convicted": sum(verdict_of(r) is not None for r in results),
    }


def run(campaigns: int = 20, backends=tuple(BACKENDS), seed: int = 0,
        workers=None) -> dict:
    windows = [
        blocking_window("2pc", recover_after=None),
        blocking_window("2pc", recover_after=240.0),
        blocking_window("paxos", recover_after=None),
    ]
    window_rows = []
    for w in windows:
        recover = ("never" if w["recover_after"] is None
                   else f"{w['recover_after']:g}")
        dwell = "blocked" if w["dwell"] is None else f"{w['dwell']:.1f}"
        window_rows.append([w["backend"], recover, dwell, w["status"],
                            w["audit_violations"]])
    report(render_table(
        ["backend", "coordinator back", "in-doubt dwell", "txn status",
         "audit viol"],
        window_rows,
        title="E17a Blocking window: coordinator crashed between "
              "prepare and decide",
    ))

    outcomes: dict = {"windows": windows, "campaigns": {}}
    rows = []
    for backend in backends:
        result = campaign_outcomes(backend, campaigns, seed=seed,
                                   workers=workers)
        outcomes["campaigns"][backend] = result
        rows.append([
            backend, f"{result['commit_rate']:.2f}",
            f"{result['txn_msgs_per_commit']:.1f}",
            f"{result['in_doubt_dwell_mean']:.1f}",
            f"{result['in_doubt_dwell_max']:.1f}",
            result["audit_violations"], result["unserializable"],
            f"{result['convicted']}/{campaigns}",
        ])
    report(render_table(
        ["backend", "commit rate", "txn msgs/commit", "dwell mean",
         "dwell max", "audit viol", "not-1SR", "convicted"],
        rows,
        title=f"E17b Crash-heavy nemesis campaigns per commit backend "
              f"({campaigns} campaigns, seed {seed})",
    ))
    emit_metrics("commit", {
        **{f"window.{w['backend']}."
           f"{'recover' if w['recover_after'] is not None else 'norecover'}"
           ".dwell": (-1.0 if w["dwell"] is None else w["dwell"])
           for w in windows},
        **{f"{backend}.{key}": float(outcomes["campaigns"][backend][key])
           for backend in outcomes["campaigns"]
           for key in ("commit_rate", "txn_msgs_per_commit",
                       "in_doubt_dwell_mean", "in_doubt_dwell_max",
                       "audit_violations", "convicted")},
    })
    return outcomes


def check(outcomes: dict) -> None:
    """Deterministic assertions only (fixed seeds, simulated time)."""
    by_key = {(w["backend"], w["recover_after"]) for w in outcomes["windows"]}
    assert by_key == {("2pc", None), ("2pc", 240.0), ("paxos", None)}
    windows = {(w["backend"], w["recover_after"] is not None): w
               for w in outcomes["windows"]}
    blocked = windows[("2pc", False)]
    recovered = windows[("2pc", True)]
    nonblocking = windows[("paxos", False)]
    # 2PC: blocked until the coordinator's WAL returns
    assert not blocked["resolved"] and blocked["dwell"] is None
    assert recovered["resolved"] and recovered["dwell"] >= 240.0
    assert recovered["status"] == "committed"
    # Paxos Commit: decided by the surviving majority, coordinator down
    assert nonblocking["resolved"]
    assert nonblocking["status"] == "committed"
    assert nonblocking["dwell"] < recovered["dwell"]
    for w in outcomes["windows"]:
        assert w["audit_violations"] == 0, w
    for backend, result in outcomes["campaigns"].items():
        assert result["committed"] > 0, f"{backend} committed nothing"
        assert result["audit_violations"] == 0, f"{backend}: {result}"
        assert result["unserializable"] == 0, f"{backend}: {result}"
        assert result["convicted"] == 0, f"{backend}: {result}"


def test_benchmark_commit(benchmark):
    outcomes = run_once(benchmark, run)
    check(outcomes)


if __name__ == "__main__":
    bench_main("bench_commit", run, check, smoke=SMOKE)
