"""E8 — claim C6: bounded staleness of reads, as a function of π.

§4 observes that views can lag the real topology, so a processor slow
to detect a partition can keep serving reads of values that the other
side has since overwritten — never violating 1SR (the reader simply
serializes before the writer), but stale in real time.  Probing bounds
the window: within about π + 8δ the lagging processor departs its old
partition and the reads stop.

The bench partitions a cluster so that p4 (minority side) still
believes it is in the full partition, has the majority side commit a
write as soon as its new partition forms, and measures how long p4
keeps serving the old value.  Sweeping π shows the window tracking the
probe period — the paper's "probing bounds the staleness" remark made
quantitative.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.core.config import ProtocolConfig
from repro.workload.tables import render_table

from _shared import bench_main, emit_metrics, report, run_once

SMOKE = {"pis": (16.0,)}


def staleness_window(pi: float, seed: int = 2) -> dict:
    # Failure detectors are not synchronized: the minority probes half a
    # period out of phase with the majority, and the partition lands
    # right after a minority probe round completes — so the minority is
    # "slow to detect the occurrence of a failure" (§4) by about pi/2
    # while the majority notices at its very next round.
    config = ProtocolConfig(
        delta=1.0, pi=pi,
        probe_phase=lambda pid: 0.0 if pid <= 3 else 0.5 * pi,
    )
    cluster = Cluster(processors=5, seed=seed, config=config)
    cluster.place("x", holders=[1, 2, 3, 4, 5], initial="old")
    cluster.start()
    partition_at = 0.5 * pi + 2 * config.delta + 0.5
    cluster.injector.partition_at(partition_at, [{1, 2, 3}, {4, 5}])

    outcome: dict = {"write_time": None, "last_stale_read": None,
                     "stale_reads": 0}

    def majority_writer():
        # Write as soon as the majority side has re-formed.
        protocol = cluster.protocol(1)
        while True:
            yield cluster.sim.timeout(0.5)
            if (protocol.assigned and protocol.view == frozenset({1, 2, 3})
                    and protocol.available("x", write=True)
                    and "x" not in protocol.state.locked):
                break
        committed, _ = yield from cluster.tm(1).run(_write_body)
        if committed:
            outcome["write_time"] = cluster.sim.now

    def _write_body(txn):
        yield from txn.write("x", "new")
        return None

    def minority_poller():
        # p4 keeps issuing single reads; record stale successes.
        tm = cluster.tm(4)
        while cluster.sim.now < partition_at + 4 * config.liveness_bound:
            yield cluster.sim.timeout(1.0)

            def read_body(txn):
                value = yield from txn.read("x")
                return value

            committed, value = yield from tm.run(read_body)
            if (committed and value == "old"
                    and outcome["write_time"] is not None):
                outcome["stale_reads"] += 1
                outcome["last_stale_read"] = cluster.sim.now

    cluster.sim.process(majority_writer(), name="majority-writer")
    cluster.sim.process(minority_poller(), name="minority-poller")
    cluster.run(until=partition_at + 5 * config.liveness_bound)
    assert outcome["write_time"] is not None, "majority write never landed"
    window = (outcome["last_stale_read"] - outcome["write_time"]
              if outcome["last_stale_read"] is not None else 0.0)
    assert cluster.check_one_copy_serializable(), (
        "stale reads must still be one-copy serializable"
    )
    return {"pi": pi, "window": window,
            "stale_reads": outcome["stale_reads"],
            "bound": config.liveness_bound}


def run(pis=(16.0, 32.0, 48.0, 64.0), workers=None) -> list:
    # ``workers`` accepted for CLI uniformity; a no-op — each point
    # runs custom writer/poller processes inside a live cluster.
    del workers
    rows = []
    outcomes = []
    for pi in pis:
        result = staleness_window(pi)
        outcomes.append(result)
        rows.append([pi, result["stale_reads"], result["window"],
                     result["bound"]])
    report(render_table(
        ["pi", "stale reads served", "staleness window",
         "detection bound pi+8*delta"],
        rows,
        title="E8  How long the lagging minority (p4) keeps serving the "
              "old value after the majority commits a new one",
    ))
    emit_metrics("staleness", {
        f"pi{result['pi']}.{metric}": result[metric]
        for result in outcomes
        for metric in ("stale_reads", "window", "bound")
    })
    return outcomes


def test_benchmark_staleness(benchmark):
    outcomes = run_once(benchmark, run)
    windows = [r["window"] for r in outcomes]
    # Frequent probing keeps data fresh: at the smallest period the
    # minority departs before the majority even finishes its write.
    assert outcomes[0]["stale_reads"] == 0
    # Staleness is real for lazy probing (the paper: not eliminable
    # under the read-one rule)...
    assert all(r["stale_reads"] > 0 for r in outcomes[1:])
    # ...but bounded by the detection bound in every configuration...
    for r in outcomes:
        assert r["window"] <= r["bound"], (
            f"staleness {r['window']} exceeded bound {r['bound']} "
            f"at pi={r['pi']}"
        )
    # ...and the window grows with the probe period.
    assert windows[1] < windows[2] < windows[3]


if __name__ == "__main__":
    bench_main("bench_staleness", run, smoke=SMOKE)
