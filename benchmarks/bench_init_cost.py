"""E6 — claim C4: partition-initialization cost, by §6 optimization.

After a merge, rule R5 requires each newly accessible copy to be
brought up to date.  The paper's §6 proposes three refinements over the
Fig. 9 baseline (read every copy, ship whole values):

1. ``previous``: use the previous-partition info piggybacked on the
   creation protocol to read exactly one known-fresh copy;
2. split-off fast path: a partition whose members all come from one
   common previous partition needs *no* initialization at all;
3. ``log`` catch-up: ship only the write-log entries a copy missed
   instead of the whole (large) object.

The bench stages a partition, a burst of writes on the majority side,
and a heal; it reports recovery reads and transfer units per strategy,
plus the split-off case (crash + rejoin of a minority that saw no
writes).
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.core.config import (
    CATCHUP_FULL,
    CATCHUP_LOG,
    INIT_PREVIOUS,
    INIT_READ_ALL,
    ProtocolConfig,
)
from repro.workload.tables import render_table

from _shared import bench_main, emit_metrics, report, run_once

OBJECT_SIZE = 100
WRITE_BURST = 5


def merge_cost(init_strategy: str, catchup: str,
               fastpath: bool) -> dict:
    config = ProtocolConfig(delta=1.0, init_strategy=init_strategy,
                            catchup=catchup, split_off_fastpath=fastpath)
    cluster = Cluster(processors=5, seed=13, config=config)
    cluster.place("x", holders=[1, 2, 3, 4, 5], initial=0, size=OBJECT_SIZE)
    cluster.start()
    cluster.injector.partition_at(5.0, [{1, 2, 3}, {4, 5}])
    cluster.run(until=40.0)
    for index in range(WRITE_BURST):
        cluster.write_once(1, "x", index)
        cluster.run(until=cluster.sim.now + 15.0)
    vpreads = {"n": 0}
    cluster.network.tap = lambda m: vpreads.__setitem__(
        "n", vpreads["n"] + (m.kind == "vpread"))
    heal_at = cluster.sim.now + 1.0
    cluster.injector.heal_all_at(heal_at)
    cluster.run(until=heal_at + cluster.config.liveness_bound + 15)
    value, _ = cluster.processor(5).store.peek("x")
    assert value == WRITE_BURST - 1, f"p5 not recovered: {value}"
    return {
        "vpreads": vpreads["n"],
        "transfer_units": cluster.total_metrics().transfer_units,
    }


def split_off_cost(fastpath: bool) -> dict:
    """p5 crashes; {1..4} split off from the full partition.  All
    survivors hold fresh copies, so the fast path skips recovery reads
    entirely."""
    config = ProtocolConfig(delta=1.0, init_strategy=INIT_PREVIOUS,
                            split_off_fastpath=fastpath)
    cluster = Cluster(processors=5, seed=13, config=config)
    cluster.place("x", holders=[1, 2, 3, 4, 5], initial=0, size=OBJECT_SIZE)
    cluster.start()
    vpreads = {"n": 0}
    cluster.network.tap = lambda m: vpreads.__setitem__(
        "n", vpreads["n"] + (m.kind == "vpread"))
    cluster.injector.crash_at(5.0, 5)
    cluster.run(until=5.0 + cluster.config.liveness_bound + 10)
    read = cluster.read_once(1, "x")
    cluster.run(until=cluster.sim.now + 10)
    assert read.value == (True, 0)
    return {
        "vpreads": vpreads["n"],
        "transfer_units": cluster.total_metrics().transfer_units,
    }


CONFIGS = [
    ("Fig.9 read-all + full copy", INIT_READ_ALL, CATCHUP_FULL, False),
    ("previous + full copy", INIT_PREVIOUS, CATCHUP_FULL, False),
    ("previous + log catch-up", INIT_PREVIOUS, CATCHUP_LOG, False),
    ("previous + log + split-off", INIT_PREVIOUS, CATCHUP_LOG, True),
]
SMOKE = {"configs": CONFIGS[:1], "split_off": False}


def run(configs=CONFIGS, split_off: bool = True, workers=None) -> dict:
    # ``workers`` is accepted for CLI uniformity (`--workers N`) but is
    # a no-op here: each scenario stages failures against a live
    # cluster mid-run, so the strategies execute in-process.
    del workers
    outcomes: dict = {}
    rows = []
    for label, strategy, catchup, fastpath in configs:
        result = merge_cost(strategy, catchup, fastpath)
        outcomes[label] = result
        rows.append([label, result["vpreads"], result["transfer_units"]])
    report(render_table(
        ["strategy", "recovery reads", "transfer units"],
        rows,
        title=f"E6  Merge after {WRITE_BURST} writes on a size-"
              f"{OBJECT_SIZE} object (5 processors, 3|2 partition healed)",
    ))
    if split_off:
        split = {
            "split-off fast path OFF": split_off_cost(False),
            "split-off fast path ON": split_off_cost(True),
        }
        outcomes.update(split)
        rows = [[label, r["vpreads"], r["transfer_units"]]
                for label, r in split.items()]
        report(render_table(
            ["case", "recovery reads", "transfer units"],
            rows,
            title="E6b Split-off (p5 crashes; {1..4} re-forms with all "
                  "copies fresh)",
        ))
    emit_metrics("init_cost", {
        f"{label}.{metric}": outcome[metric]
        for label, outcome in outcomes.items()
        for metric in ("vpreads", "transfer_units")
    })
    return outcomes


def test_benchmark_init_cost(benchmark):
    outcomes = run_once(benchmark, run)
    baseline = outcomes["Fig.9 read-all + full copy"]
    previous = outcomes["previous + full copy"]
    logged = outcomes["previous + log catch-up"]
    # §6 claim 1: previous_v ordering cuts the number of recovery reads.
    assert previous["vpreads"] < baseline["vpreads"]
    # §6 claim 3: log catch-up ships entries, not whole large objects.
    assert logged["transfer_units"] < previous["transfer_units"] / 4
    # §6 claim 2: the split-off fast path removes recovery reads.
    assert (outcomes["split-off fast path ON"]["vpreads"]
            < outcomes["split-off fast path OFF"]["vpreads"])


if __name__ == "__main__":
    bench_main("bench_init_cost", run, smoke=SMOKE)
