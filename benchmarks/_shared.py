"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` file regenerates one of the paper's artifacts or
quantifies one of its claims (the experiment ids E1–E9 in DESIGN.md).
Every file is both a pytest-benchmark target (``pytest benchmarks/
--benchmark-only``) and a standalone script (``python
benchmarks/bench_access_cost.py`` prints the table).
"""

from __future__ import annotations

import sys
from typing import Callable


def report(text: str) -> None:
    """Print a benchmark table (visible with ``pytest -s`` and when run
    as a script; always written to stdout for tee'd logs)."""
    print()
    print(text)
    sys.stdout.flush()


def run_once(benchmark, fn: Callable):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    These are simulation experiments, not microbenchmarks: one round is
    the meaningful unit, and the table it prints is the result.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
