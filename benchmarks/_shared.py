"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` file regenerates one of the paper's artifacts or
quantifies one of its claims (the experiment ids E1–E9 in DESIGN.md).
Every file is both a pytest-benchmark target (``pytest benchmarks/
--benchmark-only``) and a standalone script (``python
benchmarks/bench_access_cost.py`` prints the table).

Each bench's ``run()`` accepts keyword overrides for its sweep
parameters; the module-level ``SMOKE`` dict holds a tiny configuration
the smoke tests (``tests/benchmarks/test_smoke.py``) run every entry
point with.  Alongside its human-readable table, every bench routes its
headline numbers through a :class:`repro.obs.metrics.MetricsRegistry`
and prints them as one ``{"bench": ..., "metrics": ...}`` JSON line.

Script entry points share one CLI (:func:`bench_main`): ``--workers N``
fans the bench's experiment batch out through
:func:`repro.workload.parallel.run_many`, ``--smoke`` selects the tiny
configuration, and ``--check`` runs the deterministic assertions CI
leans on.  Benches whose scenarios mutate a live cluster mid-run
(failure injection at a chosen instant, probing a split cluster) run
their clusters in-process and accept ``--workers`` for CLI uniformity
only — the flag is documented as a no-op there.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Callable, Mapping, Optional


def report(text: str) -> None:
    """Print a benchmark table (visible with ``pytest -s`` and when run
    as a script; always written to stdout for tee'd logs)."""
    print()
    print(text)
    sys.stdout.flush()


def emit_metrics(bench: str, values: Optional[Mapping[str, float]] = None,
                 registry=None) -> dict:
    """Print a bench's headline numbers as one structured JSON line.

    ``values`` is a flat ``{metric-name: number}`` mapping routed
    through a fresh registry as gauges; pass ``registry`` instead to
    emit an already-populated :class:`MetricsRegistry`.
    """
    from repro.obs.metrics import MetricsRegistry

    if registry is None:
        registry = MetricsRegistry()
        for name, value in (values or {}).items():
            registry.gauge(name).set(value)
    payload = {"bench": bench, "metrics": registry.snapshot()}
    print(json.dumps(payload, sort_keys=True))
    sys.stdout.flush()
    return payload


def cost_metrics(result) -> dict:
    """Per-committed-transaction message-cost figures for a finished
    :class:`repro.workload.runner.ExperimentResult` — the numbers every
    bench's JSON line carries so batching wins are diffable."""
    return {
        "msgs_per_txn": result.messages_per_committed_txn,
        "envelopes_per_txn": result.envelopes_per_committed_txn,
        "batch_occupancy": result.batch_occupancy,
    }


def bench_main(name: str, run: Callable[..., Any],
               check: Optional[Callable[[Any], None]] = None,
               smoke: Optional[Mapping[str, Any]] = None,
               check_params: Optional[Mapping[str, Any]] = None,
               argv: Optional[list] = None) -> Any:
    """Shared CLI for every bench script — the ``--workers`` sweep runner.

    * ``--workers N`` — process-pool width for the bench's experiment
      fan-outs, forwarded as ``run(workers=N)``.  Every bench routes
      its spec batches through :func:`repro.workload.parallel.run_many`,
      which returns results in submission order — so ``N`` changes only
      the wall-clock, never a table, metric, or fingerprint.
    * ``--smoke`` — run the module's ``SMOKE`` configuration instead of
      the full sweep.
    * ``--check`` — run with ``check_params`` (full-size when omitted),
      apply the bench's deterministic assertions, and print a
      machine-greppable ok line.  Checks assert on dispatched-event
      counts and fingerprints, never on wall-clock, so CI cannot flake
      on a loaded runner.

    Explicit flags compose: ``--check --workers 4`` checks the
    parallel path, and must produce the same outcome as ``--workers 1``.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    kwargs: dict = {}
    if "--workers" in argv:
        index = argv.index("--workers")
        if index + 1 >= len(argv):
            raise SystemExit("--workers requires an integer argument")
        try:
            kwargs["workers"] = int(argv[index + 1])
        except ValueError:
            raise SystemExit(
                f"--workers requires an integer, got {argv[index + 1]!r}"
            ) from None
    if "--smoke" in argv:
        kwargs = {**(smoke or {}), **kwargs}
    if "--check" in argv:
        kwargs = {**(check_params or {}), **kwargs}
        outcome = run(**kwargs)
        if check is not None:
            check(outcome)
        print(f"{name} --check: ok")
        return outcome
    return run(**kwargs)


def run_once(benchmark, fn: Callable):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    These are simulation experiments, not microbenchmarks: one round is
    the meaningful unit, and the table it prints is the result.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
