"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` file regenerates one of the paper's artifacts or
quantifies one of its claims (the experiment ids E1–E9 in DESIGN.md).
Every file is both a pytest-benchmark target (``pytest benchmarks/
--benchmark-only``) and a standalone script (``python
benchmarks/bench_access_cost.py`` prints the table).

Each bench's ``run()`` accepts keyword overrides for its sweep
parameters; the module-level ``SMOKE`` dict holds a tiny configuration
the smoke tests (``tests/benchmarks/test_smoke.py``) run every entry
point with.  Alongside its human-readable table, every bench routes its
headline numbers through a :class:`repro.obs.metrics.MetricsRegistry`
and prints them as one ``{"bench": ..., "metrics": ...}`` JSON line.
"""

from __future__ import annotations

import json
import sys
from typing import Callable, Mapping, Optional


def report(text: str) -> None:
    """Print a benchmark table (visible with ``pytest -s`` and when run
    as a script; always written to stdout for tee'd logs)."""
    print()
    print(text)
    sys.stdout.flush()


def emit_metrics(bench: str, values: Optional[Mapping[str, float]] = None,
                 registry=None) -> dict:
    """Print a bench's headline numbers as one structured JSON line.

    ``values`` is a flat ``{metric-name: number}`` mapping routed
    through a fresh registry as gauges; pass ``registry`` instead to
    emit an already-populated :class:`MetricsRegistry`.
    """
    from repro.obs.metrics import MetricsRegistry

    if registry is None:
        registry = MetricsRegistry()
        for name, value in (values or {}).items():
            registry.gauge(name).set(value)
    payload = {"bench": bench, "metrics": registry.snapshot()}
    print(json.dumps(payload, sort_keys=True))
    sys.stdout.flush()
    return payload


def cost_metrics(result) -> dict:
    """Per-committed-transaction message-cost figures for a finished
    :class:`repro.workload.runner.ExperimentResult` — the numbers every
    bench's JSON line carries so batching wins are diffable."""
    return {
        "msgs_per_txn": result.messages_per_committed_txn,
        "envelopes_per_txn": result.envelopes_per_committed_txn,
        "batch_occupancy": result.batch_occupancy,
    }


def run_once(benchmark, fn: Callable):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    These are simulation experiments, not microbenchmarks: one round is
    the meaningful unit, and the table it prints is the result.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
