"""E15 — sharding & partial replication: cost scales with degree, not n.

Full replication ties every write (and every commit's prepare round) to
the cluster size: five nodes was the practical ceiling.  With a
placement policy sharding the keyspace into per-object placements of
degree ``k`` and the directory routing accesses to copy-holders, the
transaction path should pay for ``k`` copies regardless of how many
processors exist.

The bench sweeps (via the parallel sweep engine):

* node count 5 → 50+ at fixed replication degree — transaction-path
  messages per committed transaction must stay flat (within noise);
* replication degree at a fixed 20-node cluster — the same metric must
  grow with the degree.

"Transaction-path" means the Figs. 10–12 + 2PC message kinds only
(:data:`repro.workload.runner.TXN_MESSAGE_KINDS`).  Background view
maintenance is *expected* to grow as O(n²/π) — probing is the price of
partition detection, amortized over however much work the cluster runs
— so the table reports both numbers side by side.  Every run has the
runtime invariant auditor armed and must stay 1SR-clean.
"""

from __future__ import annotations

from typing import Sequence

from repro.shard import HomeFirstPools
from repro.workload import ExperimentSpec, WorkloadSpec
from repro.workload.parallel import run_many
from repro.workload.tables import render_table

from _shared import bench_main, emit_metrics, report, run_once

NODES = (5, 10, 20, 50)
DEGREES = (1, 3, 5)
FIXED_DEGREE = 3
DEGREE_NODES = 20
OBJECTS = 1000
TXNS_PER_CLIENT = 4
PLACEMENT = "hash-ring"
SEED = 11
SMOKE = {"nodes": (5, 8), "degrees": (1, 3), "objects": 120,
         "txns_per_client": 2}


def point_spec(n: int, degree: int, objects: int,
               txns_per_client: int) -> ExperimentSpec:
    """One scaling point: ``n`` processors, ``objects`` logical objects
    sharded at replication degree ``degree``, a fixed per-client
    transaction count (closed loop, so attempted work is paired across
    points), home-biased Zipf traffic."""
    return ExperimentSpec(
        protocol="virtual-partitions",
        processors=n, objects=objects, copies_per_object=degree,
        placement=PLACEMENT, seed=SEED,
        duration=150.0, grace=60.0,
        clients=1, txns_per_client=txns_per_client, retries=1,
        check=True, audit=True,
        workload=WorkloadSpec(read_fraction=0.8, ops_per_txn=3,
                              zipf_s=1.2, mean_interarrival=2.0),
        objects_for=HomeFirstPools(PLACEMENT, n, objects, degree,
                                   seed=SEED),
    )


def run(nodes: Sequence[int] = NODES, degrees: Sequence[int] = DEGREES,
        objects: int = OBJECTS, txns_per_client: int = TXNS_PER_CLIENT,
        workers=None) -> dict:
    node_points = [(n, FIXED_DEGREE) for n in nodes
                   if FIXED_DEGREE <= n]
    degree_n = max(n for n in nodes if n <= DEGREE_NODES)
    degree_points = [(degree_n, d) for d in degrees if d <= degree_n
                     and (degree_n, d) not in node_points]
    points = node_points + degree_points
    specs = [point_spec(n, d, objects, txns_per_client)
             for n, d in points]
    results = dict(zip(points, run_many(specs, workers=workers)))

    rows = []
    for (n, d), r in results.items():
        rows.append([
            n, d, r.committed, r.aborted,
            f"{r.txn_messages_per_committed_txn:.1f}",
            f"{r.messages_per_committed_txn:.1f}",
            f"{r.envelopes_per_committed_txn:.1f}",
            r.one_copy_ok, len(r.audit_violations),
        ])
    report(render_table(
        ["nodes", "degree", "committed", "aborted", "txn msgs/txn",
         "total msgs/txn", "envelopes/txn", "1SR", "audit viol"],
        rows,
        title=f"E15 Scaling: {objects} objects sharded by {PLACEMENT}, "
              f"Zipf home-biased clients ({txns_per_client} txns each, "
              f"seed {SEED})",
    ))
    emit_metrics("scaling", {
        f"n{n}.k{d}.{key}": float(value)
        for (n, d), r in results.items()
        for key, value in {
            "committed": r.committed,
            "txn_msgs_per_txn": r.txn_messages_per_committed_txn,
            "total_msgs_per_txn": r.messages_per_committed_txn,
        }.items()
    })
    return {"results": results, "node_points": node_points,
            "degree_points": [(degree_n, d) for d in degrees
                              if d <= degree_n],
            "txns_per_client": txns_per_client}


def check(outcome: dict) -> None:
    """Deterministic assertions (fixed seed): every run clean, cost flat
    in node count, growing in replication degree."""
    results = outcome["results"]
    for (n, d), r in results.items():
        assert r.one_copy_ok is True, f"n={n} k={d} not 1SR-clean: {r}"
        assert not r.audit_violations, (
            f"n={n} k={d} auditor violations: {r.audit_violations}")
        expected = n * outcome["txns_per_client"]
        assert r.committed >= 0.9 * expected, (
            f"n={n} k={d} committed only {r.committed}/{expected}")

    node_costs = {n: results[(n, d)].txn_messages_per_committed_txn
                  for n, d in outcome["node_points"]}
    spread = max(node_costs.values()) / min(node_costs.values())
    assert spread <= 1.25, (
        f"txn msgs/txn not flat in node count: {node_costs} "
        f"(spread {spread:.2f})")

    degree_costs = [results[point].txn_messages_per_committed_txn
                    for point in outcome["degree_points"]]
    assert all(a < b for a, b in zip(degree_costs, degree_costs[1:])), (
        f"txn msgs/txn not increasing in degree: {degree_costs}")
    if len(degree_costs) > 1:
        assert degree_costs[-1] >= 1.3 * degree_costs[0], (
            f"degree effect too weak: {degree_costs}")


def test_benchmark_scaling(benchmark):
    outcome = run_once(benchmark, lambda: run(**SMOKE))
    check(outcome)


if __name__ == "__main__":
    # --check runs the FULL sweep (check_params omitted): the cost-curve
    # assertions are calibrated to the full fixed-seed point set.
    bench_main("bench_scaling", run, check, smoke=SMOKE)
