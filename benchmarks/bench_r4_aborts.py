"""E7 — claim C5: the weakened rule R4 aborts fewer transactions.

Rule R4 as stated forces a transaction to abort whenever any processor
that served one of its physical accesses joins a new virtual partition.
§6 weakens it for 2PL: the transaction may span partitions when (1) its
objects stay accessible, (2) its participants stay in view, and (3)
recovery never reads a write-locked copy.

The bench runs deliberately long transactions (think time between
operations) while a non-essential processor crashes and recovers
repeatedly — every membership change creates a new partition, but all
objects remain accessible to the survivors.  Strict R4 aborts every
transaction in flight at each change; the weakened rule lets them
finish.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.core.config import ProtocolConfig
from repro.workload.tables import render_table

from _shared import bench_main, emit_metrics, report, run_once

#: each client gets a private object triple, so lock contention between
#: clients is zero and every abort is attributable to rule R4
CLIENTS = (1, 2, 3)
OBJECTS = [f"{name}{pid}" for pid in CLIENTS for name in ("a", "b", "c")]
THINK = 6.0          # time between a transaction's operations
CHURN_PERIOD = 40.0  # p5 crashes / recovers this often
DURATION = 600.0
SMOKE = {"duration": 120.0}


def churn_run(weakened: bool, seed: int = 3,
              duration: float = DURATION) -> dict:
    config = ProtocolConfig(delta=1.0, weakened_r4=weakened)
    cluster = Cluster(processors=5, seed=seed, config=config)
    for obj in OBJECTS:
        # copies on 1..4 only: p5's churn never affects accessibility
        cluster.place(obj, holders=[1, 2, 3, 4], initial=0)
    cluster.start()
    t, down = 10.0, False
    while t < duration:
        if down:
            cluster.injector.recover_at(t, 5)
        else:
            cluster.injector.crash_at(t, 5)
        down = not down
        t += CHURN_PERIOD / 2

    def slow_body_for(pid):
        def slow_body(txn):
            value = yield from txn.read(f"a{pid}")
            yield cluster.sim.timeout(THINK)
            yield from txn.write(f"b{pid}", (value or 0) + 1)
            yield cluster.sim.timeout(THINK)
            value_c = yield from txn.read(f"c{pid}")
            return value_c
        return slow_body

    def client(pid):
        tm = cluster.tm(pid)
        body = slow_body_for(pid)
        while cluster.sim.now < duration:
            yield cluster.sim.timeout(8.0)
            yield from tm.run(body, retries=0)

    for pid in CLIENTS:
        cluster.sim.process(client(pid), name=f"client@{pid}")
    cluster.run(until=duration + 60.0)
    committed = len(cluster.history.committed())
    aborted = len(cluster.history.aborted())
    ok = cluster.check_one_copy_serializable()
    return {"committed": committed, "aborted": aborted, "one_copy": ok}


def run(duration: float = DURATION, workers=None) -> dict:
    # ``workers`` accepted for CLI uniformity; a no-op — the churn
    # scenario schedules crash/recover against a live cluster.
    del workers
    strict = churn_run(weakened=False, duration=duration)
    weakened = churn_run(weakened=True, duration=duration)
    rows = [
        ["strict R4", strict["committed"], strict["aborted"],
         strict["one_copy"]],
        ["weakened R4 (§6)", weakened["committed"], weakened["aborted"],
         weakened["one_copy"]],
    ]
    report(render_table(
        ["rule", "committed", "aborted", "one-copy SR"],
        rows,
        title=f"E7  Long transactions (think {THINK}) under membership "
              f"churn every {CHURN_PERIOD / 2} (p5 crash/recover; objects "
              "on p1-p4 stay accessible)",
    ))
    emit_metrics("r4_aborts", {
        f"{label}.{metric}": outcome[metric]
        for label, outcome in (("strict", strict), ("weakened", weakened))
        for metric in ("committed", "aborted")
    })
    return {"strict": strict, "weakened": weakened}


def test_benchmark_r4_aborts(benchmark):
    outcomes = run_once(benchmark, run)
    strict, weakened = outcomes["strict"], outcomes["weakened"]
    # Correctness must hold under both rules:
    assert strict["one_copy"] and weakened["one_copy"]
    # The weakened rule converts view-change aborts into commits:
    assert weakened["aborted"] < strict["aborted"]
    assert weakened["committed"] > strict["committed"]


if __name__ == "__main__":
    bench_main("bench_r4_aborts", run, smoke=SMOKE)
