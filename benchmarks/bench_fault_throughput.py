"""E9 — §1/§7's overall claim: cost and availability with rare failures.

"It tolerates the same fault classes as majority voting [T] and quorum
consensus [G], and does so with fewer accesses to copies, assuming that
read requests outnumber write requests and that fault occurrences are
rare events."

The bench runs a read-heavy closed-loop workload under a random
crash/repair process (failures rare relative to transaction latency)
and compares committed work, abort rate, and access cost per protocol.

Expected shape: virtual partitions and the voting protocols keep
committing through failures (similar commit counts); virtual partitions
does it with ~1 physical access per read where the voting protocols pay
a majority; ROWA's writes collapse whenever any copy is down.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import ProtocolConfig
from repro.net.failures import RandomFailures
from repro.workload import ExperimentSpec, WorkloadSpec, sweep_protocols
from repro.workload.runner import run_experiment
from repro.workload.tables import render_table

from _shared import bench_main, cost_metrics, emit_metrics, report, run_once

PROTOCOLS = ["virtual-partitions", "rowa", "quorum", "majority",
             "missing-writes"]
DURATION = 800.0
SMOKE = {"duration": 100.0, "protocols": ["virtual-partitions", "rowa"]}


class RareFailures:
    """Picklable failure schedule (rare random crash/repair) — a
    callable object so the spec can cross the ``run_many`` process
    boundary."""

    def __init__(self, horizon: float):
        self.horizon = horizon

    def __call__(self, cluster) -> None:
        RandomFailures(
            cluster.injector, cluster.streams.stream("random-failures"),
            node_mttf=300.0, node_mttr=40.0, horizon=self.horizon,
        ).install()


def run(duration: float = DURATION, protocols=PROTOCOLS,
        workers=None) -> dict:
    spec = ExperimentSpec(
        processors=5, objects=10, seed=33, duration=duration,
        workload=WorkloadSpec(read_fraction=0.9, ops_per_txn=2,
                              mean_interarrival=10.0),
        failures=RareFailures(duration),
        retries=1,
    )
    results = sweep_protocols(spec, protocols, workers=workers)
    # One extra paired row: the VP protocol on the batched transport
    # (window δ/2), same seed and failure schedule — how much of the
    # message bill batching absorbs while faults are being tolerated.
    if "virtual-partitions" in protocols:
        results["virtual-partitions+batch"] = run_experiment(replace(
            spec, protocol="virtual-partitions",
            config=ProtocolConfig(delta=1.0, batch_window=0.5),
        ))
    rows = []
    for name, r in results.items():
        rows.append([
            name, r.committed, r.aborted, f"{r.commit_rate:.2f}",
            r.reads_per_logical_read, r.accesses_per_operation,
            f"{r.messages_per_committed_txn:.1f}",
            f"{r.envelopes_per_committed_txn:.1f}",
        ])
    report(render_table(
        ["protocol", "committed", "aborted", "commit rate",
         "phys/logical read", "phys/op (mix)", "msgs/txn",
         "envelopes/txn"],
        rows,
        title=f"E9  Read-heavy (90%) workload with rare crash/repair "
              f"(node MTTF 300, MTTR 40, duration {duration})",
    ))
    emit_metrics("fault_throughput", {
        f"{name}.{metric}": value
        for name, r in results.items()
        for metric, value in {
            "committed": r.committed,
            "aborted": r.aborted,
            "phys_per_read": r.reads_per_logical_read,
            "phys_per_op": r.accesses_per_operation,
            **cost_metrics(r),
        }.items()
    })
    return results


def test_benchmark_fault_throughput(benchmark):
    results = run_once(benchmark, run)
    vp = results["virtual-partitions"]
    quorum = results["quorum"]
    majority = results["majority"]
    rowa = results["rowa"]
    # Fault tolerance: the adaptive protocol keeps committing.
    assert vp.committed > 0.8 * quorum.committed
    # Efficiency: read-one vs read-majority under the same faults.
    assert vp.reads_per_logical_read < 1.5
    assert quorum.reads_per_logical_read > 2.5
    assert vp.accesses_per_operation < quorum.accesses_per_operation
    assert vp.accesses_per_operation < majority.accesses_per_operation
    # ROWA cannot write while any copy holder is down: it stalls on
    # unreachable copies (access timeouts) and aborts the writes, so it
    # commits visibly less than the adaptive protocol under the same
    # failure schedule.
    assert rowa.committed < 0.85 * vp.committed


if __name__ == "__main__":
    bench_main("bench_fault_throughput", run, smoke=SMOKE)
