"""E13 — simulated-events-per-second: the speed of the harness itself.

Every experiment E1–E12 and every seed-replicated sweep runs through
the kernel dispatch loop, so events/sec is the number every scaling PR
stands on.  This bench measures three things:

* **kernel** — a pure-kernel churn microbench: producer/consumer pairs
  exchanging messages through :class:`MessageQueue` with ``AnyOf``
  timer races, i.e. exactly the select-loop shape the protocol tasks
  use, with none of the protocol logic.  This isolates the dispatch
  loop (single-pop, slotted events, lazy cancellation).
* **vp** — events/sec for a message-heavy virtual-partitions run (the
  full stack: transport, locks, 2PC), via the runner's
  ``events_dispatched`` / ``wall_seconds`` counters.
* **sweep** — wall-clock for the same seed sweep run serially and
  through the :func:`~repro.workload.parallel.run_many` process pool,
  with the fingerprints of both paths compared entry by entry: the
  parallel engine must change *nothing* but the wall-clock.

Wall-clock numbers are hardware-dependent; the deterministic side
(dispatched-event counts, fingerprint equality) is what CI's
``bench-simperf`` smoke job asserts on (``--check``), so it cannot
flake on a loaded runner.
"""

from __future__ import annotations

import sys
import time

from repro.sim import Simulator
from repro.sim.queues import MessageQueue
from repro.sim.timers import Timer
from repro.workload import ExperimentSpec, WorkloadSpec, run_many
from repro.workload.runner import run_experiment
from repro.workload.tables import render_table

from _shared import emit_metrics, report

CHURN_PAIRS = 50
CHURN_MSGS = 1200
VP_DURATION = 1000.0
SWEEP_SEEDS = tuple(range(1, 9))
SWEEP_DURATION = 200.0
WORKERS = 4

SMOKE = {
    "churn_pairs": 10, "churn_msgs": 100,
    "vp_duration": 60.0,
    "sweep_seeds": (1, 2), "sweep_duration": 40.0,
    "workers": 2,
}


def _build_churn(pairs: int, msgs: int) -> Simulator:
    """A kernel-only workload: ``pairs`` producer/consumer couples, the
    consumer racing each receive against a timer (the losing timer is
    cancelled — the lazy-deletion path) exactly like the protocol's
    ``select from receive(...) | T.timeout`` loops."""
    sim = Simulator()

    def producer(queue: MessageQueue):
        for index in range(msgs):
            yield sim.timeout(1.0)
            queue.put(index)

    def consumer(queue: MessageQueue, timer: Timer):
        received = 0
        while received < msgs:
            timer.set(3.0)
            result = yield sim.any_of([queue.get(), timer.wait()])
            received += sum(1 for event in result.events
                            if not isinstance(event.value, Timer))

    for index in range(pairs):
        queue = MessageQueue(sim, name=f"q{index}")
        sim.process(producer(queue), name=f"prod{index}")
        sim.process(consumer(queue, Timer(sim, name=f"t{index}")),
                    name=f"cons{index}")
    return sim


def kernel_churn(pairs: int, msgs: int):
    """Run the churn workload; returns ``(dispatched, wall_seconds)``."""
    sim = _build_churn(pairs, msgs)
    start = time.perf_counter()
    sim.run()
    return sim.dispatched, time.perf_counter() - start


def _vp_spec(duration: float, seed: int = 3) -> ExperimentSpec:
    """A message-heavy VP experiment: write-heavy mix, short
    interarrivals, two clients per processor."""
    return ExperimentSpec(
        protocol="virtual-partitions", processors=5, objects=10,
        seed=seed, duration=duration, grace=60.0,
        workload=WorkloadSpec(read_fraction=0.5, ops_per_txn=4,
                              mean_interarrival=2.0),
        clients=2,
    )


def run(churn_pairs: int = CHURN_PAIRS, churn_msgs: int = CHURN_MSGS,
        vp_duration: float = VP_DURATION, sweep_seeds=SWEEP_SEEDS,
        sweep_duration: float = SWEEP_DURATION,
        workers: int = WORKERS) -> dict:
    # -- kernel microbench ------------------------------------------------
    churn_events, churn_wall = kernel_churn(churn_pairs, churn_msgs)
    churn_rate = churn_events / churn_wall if churn_wall else 0.0

    # -- message-heavy VP run --------------------------------------------
    vp = run_experiment(_vp_spec(vp_duration))
    vp_rate = vp.events_per_sec

    # -- serial vs parallel seed sweep -----------------------------------
    specs = [_vp_spec(sweep_duration, seed=seed) for seed in sweep_seeds]
    serial_start = time.perf_counter()
    serial = run_many(specs, workers=1)
    serial_wall = time.perf_counter() - serial_start
    parallel_start = time.perf_counter()
    parallel = run_many(specs, workers=workers)
    parallel_wall = time.perf_counter() - parallel_start
    mismatches = [
        seed for seed, a, b in zip(sweep_seeds, serial, parallel)
        if a.fingerprint() != b.fingerprint()
    ]
    if mismatches:
        raise AssertionError(
            f"parallel sweep diverged from serial for seeds {mismatches}"
        )
    speedup = serial_wall / parallel_wall if parallel_wall else 0.0
    sweep_events = sum(result.events_dispatched for result in serial)

    report(render_table(
        ["workload", "events", "wall (s)", "events/sec"],
        [
            ["kernel churn", churn_events, f"{churn_wall:.3f}",
             f"{churn_rate:,.0f}"],
            ["vp message-heavy", vp.events_dispatched,
             f"{vp.wall_seconds:.3f}", f"{vp_rate:,.0f}"],
            [f"sweep serial ({len(specs)} seeds)", sweep_events,
             f"{serial_wall:.3f}", f"{sweep_events / serial_wall:,.0f}"],
            [f"sweep workers={workers}", sweep_events,
             f"{parallel_wall:.3f}",
             f"{sweep_events / parallel_wall:,.0f}"],
        ],
        title=f"E13  Simulation speed (parallel sweep speedup "
              f"{speedup:.2f}x, outputs byte-identical)",
    ))
    emit_metrics("simperf", {
        "kernel.events": churn_events,
        "kernel.events_per_sec": churn_rate,
        "vp.events": vp.events_dispatched,
        "vp.events_per_sec": vp_rate,
        "sweep.runs": len(specs),
        "sweep.events": sweep_events,
        "sweep.serial_seconds": serial_wall,
        "sweep.parallel_seconds": parallel_wall,
        "sweep.workers": workers,
        "sweep.speedup": speedup,
        "sweep.fingerprints_equal": 1.0,
    })
    return {
        "kernel": (churn_events, churn_rate),
        "vp": vp,
        "serial": serial,
        "parallel": parallel,
        "speedup": speedup,
    }


def check(**overrides) -> None:
    """Deterministic assertions only — CI's flake-proof smoke entry.

    Counts dispatched events and compares serial/parallel
    fingerprints; never asserts on wall time.
    """
    params = {**SMOKE, **overrides}
    results = run(**params)
    churn_events, _ = results["kernel"]
    assert churn_events > 0
    vp = results["vp"]
    assert vp.events_dispatched > 0 and vp.committed > 0
    # run() already raised if any serial/parallel fingerprint differed;
    # re-derive the comparison here so --check is self-contained
    for a, b in zip(results["serial"], results["parallel"]):
        assert a.fingerprint() == b.fingerprint()
        assert a.events_dispatched > 0
    print("bench_simperf --check: ok")


def test_benchmark_simperf(benchmark):
    from _shared import run_once

    results = run_once(benchmark, lambda: run(**SMOKE))
    assert results["vp"].committed > 0
    for a, b in zip(results["serial"], results["parallel"]):
        assert a.fingerprint() == b.fingerprint()


if __name__ == "__main__":
    if "--check" in sys.argv[1:]:
        check()
    elif "--smoke" in sys.argv[1:]:
        run(**SMOKE)
    else:
        run()
