"""E13/E16 — simulated-events-per-second: the speed of the harness itself.

Every experiment E1–E12 and every seed-replicated sweep runs through
the kernel dispatch loop, so events/sec is the number every scaling PR
stands on.  This bench measures two experiment groups:

**E13** (harness speed, unchanged methodology):

* **kernel** — a pure-kernel churn microbench: producer/consumer pairs
  exchanging messages through :class:`MessageQueue` with ``AnyOf``
  timer races, i.e. exactly the select-loop shape the protocol tasks
  use, with none of the protocol logic.  This isolates the dispatch
  loop (packed heap entries, slot table, lazy cancellation).
* **vp** — events/sec for a message-heavy virtual-partitions run (the
  full stack: transport, locks, 2PC), via the runner's
  ``events_dispatched`` / ``wall_seconds`` counters.
* **sweep** — wall-clock for the same seed sweep run serially and
  through the :func:`~repro.workload.parallel.run_many` process pool,
  with the fingerprints of both paths compared entry by entry: the
  parallel engine must change *nothing* but the wall-clock.

**E16** (flat event core + macro-event delivery, new in this PR):

* **churn best-of-N** — the same churn workload, warmed up and run
  ``churn_reps`` times reporting the best wall-clock; compared against
  the kernel-churn rate recorded at the PR-4 tag (``PR4_CHURN_RATE``).
  The dispatch count is closed-form (``3·pairs·msgs + 4·pairs``) and
  pinned by ``--check``, so any kernel change that adds, drops, or
  reorders a dispatch fails CI deterministically.
* **macro delivery** — the E13 vp spec run unbatched and with
  ``batch_window > 0``: in batched mode every network envelope drains
  through the destination's inline handler as ONE kernel dispatch
  (``macro_wakeups == envelopes``), so dispatched-event counts drop
  even though per-message ``delivered`` counts and traces are intact.

Wall-clock numbers are hardware-dependent; the deterministic side
(dispatched-event counts, fingerprint equality, macro-wakeup
invariants) is what CI's ``bench-simperf`` job asserts on
(``--check``), so it cannot flake on a loaded runner.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.core.config import ProtocolConfig
from repro.sim import Simulator
from repro.sim.queues import MessageQueue
from repro.sim.timers import Timer
from repro.workload import ExperimentSpec, WorkloadSpec, run_many
from repro.workload.runner import run_experiment
from repro.workload.tables import render_table

from _shared import bench_main, emit_metrics, report

CHURN_PAIRS = 50
CHURN_MSGS = 1200
CHURN_REPS = 3
#: kernel-churn events/sec recorded in EXPERIMENTS.md E13 at the PR-4
#: tag (same container class; re-measuring that tag on today's hardware
#: gives ~277k — both comparators are reported in EXPERIMENTS.md E16).
PR4_CHURN_RATE = 205_000.0
VP_DURATION = 1000.0
MACRO_WINDOW = 0.05
SWEEP_SEEDS = tuple(range(1, 9))
SWEEP_DURATION = 200.0
WORKERS = 4

SMOKE = {
    "churn_pairs": 10, "churn_msgs": 100, "churn_reps": 1,
    "vp_duration": 60.0,
    "sweep_seeds": (1, 2), "sweep_duration": 40.0,
    "workers": 2,
}


def _build_churn(pairs: int, msgs: int) -> Simulator:
    """A kernel-only workload: ``pairs`` producer/consumer couples, the
    consumer racing each receive against a timer (the losing timer is
    cancelled — the lazy-deletion path) exactly like the protocol's
    ``select from receive(...) | T.timeout`` loops."""
    sim = Simulator()

    def producer(queue: MessageQueue):
        for index in range(msgs):
            yield sim.timeout(1.0)
            queue.put(index)

    def consumer(queue: MessageQueue, timer: Timer):
        received = 0
        while received < msgs:
            timer.set(3.0)
            result = yield sim.any_of([queue.get(), timer.wait()])
            received += sum(1 for event in result.events
                            if not isinstance(event.value, Timer))

    for index in range(pairs):
        queue = MessageQueue(sim, name=f"q{index}")
        sim.process(producer(queue), name=f"prod{index}")
        sim.process(consumer(queue, Timer(sim, name=f"t{index}")),
                    name=f"cons{index}")
    return sim


def kernel_churn(pairs: int, msgs: int):
    """Run the churn workload; returns ``(dispatched, wall_seconds)``."""
    sim = _build_churn(pairs, msgs)
    start = time.perf_counter()
    sim.run()
    return sim.dispatched, time.perf_counter() - start


def churn_dispatches(pairs: int, msgs: int) -> int:
    """Closed-form dispatch count for the churn workload.

    3 dispatches per message cycle (producer timeout, AnyOf wakeup,
    next-get wakeup) plus 4 per pair of start/finish bookkeeping.  The
    FIFO fast path and inline fires change *which queue* an entry
    travels through, never whether it is dispatched — so this is
    invariant across kernel data-structure changes and is what
    ``--check`` pins.
    """
    return 3 * pairs * msgs + 4 * pairs


def churn_best(pairs: int, msgs: int, reps: int):
    """Warm up, then best-of-``reps`` churn; returns
    ``(dispatched, best_wall_seconds)``.  Dispatched counts must agree
    across reps (the workload is deterministic)."""
    kernel_churn(min(pairs, 5), min(msgs, 50))  # warm caches/allocator
    dispatched = None
    best = float("inf")
    for _ in range(max(1, reps)):
        events, wall = kernel_churn(pairs, msgs)
        if dispatched is None:
            dispatched = events
        elif events != dispatched:
            raise AssertionError(
                f"churn dispatch count drifted across reps: "
                f"{dispatched} vs {events}"
            )
        best = min(best, wall)
    return dispatched, best


def _vp_spec(duration: float, seed: int = 3) -> ExperimentSpec:
    """A message-heavy VP experiment: write-heavy mix, short
    interarrivals, two clients per processor."""
    return ExperimentSpec(
        protocol="virtual-partitions", processors=5, objects=10,
        seed=seed, duration=duration, grace=60.0,
        workload=WorkloadSpec(read_fraction=0.5, ops_per_txn=4,
                              mean_interarrival=2.0),
        clients=2,
    )


def run(churn_pairs: int = CHURN_PAIRS, churn_msgs: int = CHURN_MSGS,
        churn_reps: int = CHURN_REPS,
        vp_duration: float = VP_DURATION, sweep_seeds=SWEEP_SEEDS,
        sweep_duration: float = SWEEP_DURATION,
        workers: int = WORKERS) -> dict:
    # -- E13: kernel microbench (single shot, legacy methodology) ---------
    churn_events, churn_wall = kernel_churn(churn_pairs, churn_msgs)
    churn_rate = churn_events / churn_wall if churn_wall else 0.0

    # -- E13: message-heavy VP run ---------------------------------------
    vp = run_experiment(_vp_spec(vp_duration))
    vp_rate = vp.events_per_sec

    # -- E13: serial vs parallel seed sweep ------------------------------
    specs = [_vp_spec(sweep_duration, seed=seed) for seed in sweep_seeds]
    serial_start = time.perf_counter()
    serial = run_many(specs, workers=1)
    serial_wall = time.perf_counter() - serial_start
    parallel_start = time.perf_counter()
    parallel = run_many(specs, workers=workers)
    parallel_wall = time.perf_counter() - parallel_start
    mismatches = [
        seed for seed, a, b in zip(sweep_seeds, serial, parallel)
        if a.fingerprint() != b.fingerprint()
    ]
    if mismatches:
        raise AssertionError(
            f"parallel sweep diverged from serial for seeds {mismatches}"
        )
    speedup = serial_wall / parallel_wall if parallel_wall else 0.0
    sweep_events = sum(result.events_dispatched for result in serial)

    # -- E16: flat-core churn, best-of-N ---------------------------------
    flat_events, flat_wall = churn_best(churn_pairs, churn_msgs, churn_reps)
    flat_rate = flat_events / flat_wall if flat_wall else 0.0
    flat_speedup = flat_rate / PR4_CHURN_RATE if PR4_CHURN_RATE else 0.0

    # -- E16: macro-event delivery (batched vs unbatched vp) -------------
    batched_spec = replace(_vp_spec(vp_duration),
                           config=ProtocolConfig(batch_window=MACRO_WINDOW))
    batched = run_experiment(batched_spec)
    macro_wakeups = batched.network.get("macro_wakeups", 0)
    macro_envelopes = batched.network.get("envelopes", 0)
    dispatch_savings = (
        1.0 - batched.events_dispatched / vp.events_dispatched
        if vp.events_dispatched else 0.0
    )

    report(render_table(
        ["workload", "events", "wall (s)", "events/sec"],
        [
            ["kernel churn", churn_events, f"{churn_wall:.3f}",
             f"{churn_rate:,.0f}"],
            ["vp message-heavy", vp.events_dispatched,
             f"{vp.wall_seconds:.3f}", f"{vp_rate:,.0f}"],
            [f"sweep serial ({len(specs)} seeds)", sweep_events,
             f"{serial_wall:.3f}", f"{sweep_events / serial_wall:,.0f}"],
            [f"sweep workers={workers}", sweep_events,
             f"{parallel_wall:.3f}",
             f"{sweep_events / parallel_wall:,.0f}"],
        ],
        title=f"E13  Simulation speed (parallel sweep speedup "
              f"{speedup:.2f}x, outputs byte-identical)",
    ))
    report(render_table(
        ["workload", "dispatched", "wall (s)", "events/sec", "note"],
        [
            [f"churn best-of-{max(1, churn_reps)}", flat_events,
             f"{flat_wall:.3f}", f"{flat_rate:,.0f}",
             f"{flat_speedup:.2f}x vs PR-4 recorded"],
            ["vp unbatched", vp.events_dispatched,
             f"{vp.wall_seconds:.3f}", f"{vp_rate:,.0f}",
             "macro_wakeups=0"],
            [f"vp batch_window={MACRO_WINDOW}", batched.events_dispatched,
             f"{batched.wall_seconds:.3f}",
             f"{batched.events_per_sec:,.0f}",
             f"{macro_wakeups} wakeups / {macro_envelopes} envelopes, "
             f"dispatches -{dispatch_savings:.0%}"],
        ],
        title="E16  Flat event core + macro-event delivery "
              f"(churn dispatch count pinned at "
              f"{churn_dispatches(churn_pairs, churn_msgs)})",
    ))
    emit_metrics("simperf", {
        "kernel.events": churn_events,
        "kernel.events_per_sec": churn_rate,
        "kernel.flat.events_per_sec": flat_rate,
        "kernel.flat.speedup_vs_pr4": flat_speedup,
        "vp.events": vp.events_dispatched,
        "vp.events_per_sec": vp_rate,
        "macro.unbatched_dispatched": vp.events_dispatched,
        "macro.batched_dispatched": batched.events_dispatched,
        "macro.wakeups": macro_wakeups,
        "macro.envelopes": macro_envelopes,
        "macro.dispatch_savings": dispatch_savings,
        "sweep.runs": len(specs),
        "sweep.events": sweep_events,
        "sweep.serial_seconds": serial_wall,
        "sweep.parallel_seconds": parallel_wall,
        "sweep.workers": workers,
        "sweep.speedup": speedup,
        "sweep.fingerprints_equal": 1.0,
    })
    return {
        "kernel": (churn_events, churn_rate),
        "flat": (flat_events, flat_rate),
        "churn_shape": (churn_pairs, churn_msgs),
        "vp": vp,
        "batched": batched,
        "serial": serial,
        "parallel": parallel,
        "speedup": speedup,
    }


def check(results: dict) -> None:
    """Deterministic assertions only — CI's flake-proof smoke entry.

    Pins dispatched-event counts (closed-form churn formula, macro
    wakeup==envelope identity) and compares serial/parallel
    fingerprints; never asserts on wall time.
    """
    pairs, msgs = results["churn_shape"]
    expected = churn_dispatches(pairs, msgs)
    churn_events, _ = results["kernel"]
    flat_events, _ = results["flat"]
    assert churn_events == expected, (churn_events, expected)
    assert flat_events == expected, (flat_events, expected)
    vp = results["vp"]
    assert vp.events_dispatched > 0 and vp.committed > 0
    assert vp.network.get("macro_wakeups", 0) == 0
    batched = results["batched"]
    assert batched.committed > 0
    wakeups = batched.network.get("macro_wakeups", 0)
    envelopes = batched.network.get("envelopes", 0)
    assert wakeups == envelopes > 0, (wakeups, envelopes)
    # every batched envelope drains inline instead of scheduling a
    # wakeup per message, so the batched run must dispatch fewer events
    assert batched.events_dispatched < vp.events_dispatched, (
        batched.events_dispatched, vp.events_dispatched,
    )
    # run() already raised if any serial/parallel fingerprint differed;
    # re-derive the comparison here so --check is self-contained
    for a, b in zip(results["serial"], results["parallel"]):
        assert a.fingerprint() == b.fingerprint()
        assert a.events_dispatched > 0


def test_benchmark_simperf(benchmark):
    from _shared import run_once

    results = run_once(benchmark, lambda: run(**SMOKE))
    check(results)


if __name__ == "__main__":
    bench_main("bench_simperf", run, check,
               smoke=SMOKE, check_params=SMOKE)
