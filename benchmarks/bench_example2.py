"""E2 — Figure 2 / Tables 1–2 / Example 2: the stale-view cycle.

Regenerates the paper's second counterexample: after re-partitioning
{A,B}|{C,D} → {B,C}|{A,D} with only B and D updating their views, the
four Table-2 transactions all commit under the naive protocol using
only local copies, forming a reads-from cycle (serializable, not 1SR).
Under the virtual partitions protocol property S3 makes the cycle
impossible: some transactions abort, the rest are 1SR.
"""

from __future__ import annotations

from repro.workload.scenarios import run_example2_naive, run_example2_vp
from repro.workload.tables import render_table

from _shared import bench_main, emit_metrics, report, run_once

SMOKE: dict = {}


def run(workers=None) -> dict:
    # ``workers`` accepted for CLI uniformity; a no-op — the bench is
    # two fixed scripted scenarios, not a spec sweep.
    del workers
    naive = run_example2_naive(seed=0)
    vp = run_example2_vp(seed=0)
    rows = [
        ["naive-view", len(naive.committed), len(naive.aborted),
         naive.cp_serializable, bool(naive.one_copy.ok)],
        ["virtual-partitions", len(vp.committed), len(vp.aborted),
         vp.cp_serializable, bool(vp.one_copy.ok)],
    ]
    report(render_table(
        ["protocol", "committed", "aborted", "CP-serializable",
         "one-copy SR"],
        rows,
        title="E2  Example 2 (Fig. 2, Tables 1-2): re-partition with "
              "asynchronous view updates, weighted copies",
    ))
    if naive.one_copy.violation:
        report(f"naive violation witness: {naive.one_copy.violation}")
    emit_metrics("example2", {
        f"{label}.{metric}": value
        for label, outcome in (("naive", naive), ("vp", vp))
        for metric, value in (
            ("committed", len(outcome.committed)),
            ("aborted", len(outcome.aborted)),
            ("one_copy_ok", int(bool(outcome.one_copy.ok))),
        )
    })
    return {"naive": naive, "vp": vp}


def test_benchmark_example2(benchmark):
    results = run_once(benchmark, run)
    naive, vp = results["naive"], results["vp"]
    assert len(naive.committed) == 4
    assert naive.cp_serializable and naive.one_copy.ok is False
    assert vp.one_copy.ok is True
    assert len(vp.committed) < 4  # availability traded for correctness


if __name__ == "__main__":
    bench_main("bench_example2", run, smoke=SMOKE)
