"""E19 — online resharding: objects moved vs. transactions disturbed.

A 20-node hash-ring cluster grows to 25 nodes while transactions run.
The migration engine executes the placement change live: install the
new copies through the §6 catch-up path, flip each directory entry
under a placement epoch, retire the old copies.  Two cells, same seed:

* ``quiet`` — the expansion races nothing but the workload;
* ``partition`` — a minority block is cut out of the network across
  the cutover window and healed mid-migration, so installs stall and
  retry while the coordinator keeps draining the plan.

The headline numbers are the two costs a production resharding story
owes: **objects moved** (must equal the hash ring's bounded-movement
prediction — the policy diff between the 20- and 25-member
assignments, nowhere near all objects) and **transactions disturbed**
(R4 stale-placement aborts: transactions that raced a flip and retried
— never a stale read).  Every run has the auditor armed and must stay
1SR-clean, partitions or not.
"""

from __future__ import annotations

from repro.shard import ReshardAction, make_policy, object_names
from repro.workload import ExperimentSpec, WorkloadSpec
from repro.workload.parallel import run_many
from repro.workload.tables import render_table

from _shared import bench_main, emit_metrics, report, run_once

BASE = 20
SPARES = 5
OBJECTS = 120
DEGREE = 3
SEED = 19
RESHARD_AT = 60.0
# the engine drips one object at a time (bounded disturbance beats
# speed), so the run must span prediction × per-object cutover time
DURATION = 800.0
TXNS_PER_CLIENT = 30
PLACEMENT = "hash-ring"
SMOKE = {"base": 6, "spares": 2, "objects": 20, "txns_per_client": 8,
         "duration": 280.0, "reshard_at": 30.0}


class PartitionAcrossCutover:
    """Cut a minority block out during the migration, heal mid-flight.

    A picklable callable (not a closure) so the spec survives
    ``run_many``'s trip into worker processes.
    """

    def __init__(self, at: float, blocks, heal_at: float):
        self.at = at
        self.blocks = [list(block) for block in blocks]
        self.heal_at = heal_at

    def __call__(self, cluster) -> None:
        cluster.injector.partition_at(self.at, self.blocks)
        cluster.injector.heal_all_at(self.heal_at)


def movement_prediction(base: int, spares: int, objects: int,
                        degree: int, seed: int) -> int:
    """Objects the policy reassigns when the membership grows — the
    bound the engine's moved-object count must meet exactly."""
    policy = make_policy(PLACEMENT, degree=degree, seed=seed)
    names = object_names(objects)
    before = policy.assign(names, list(range(1, base + 1)))
    after = policy.assign(names, list(range(1, base + spares + 1)))
    return sum(1 for obj in names if before[obj] != after[obj])


def cell_spec(cell: str, base: int, spares: int, objects: int,
              degree: int, txns_per_client: int, duration: float,
              reshard_at: float, seed: int) -> ExperimentSpec:
    total = base + spares
    failures = None
    if cell == "partition":
        # cut the two highest *base* pids — copy-holders mid-migration
        # — a delta after the reshard starts; heal while it still runs
        cut = [base - 1, base]
        rest = [p for p in range(1, total + 1) if p not in cut]
        failures = PartitionAcrossCutover(reshard_at + 4.0, [rest, cut],
                                          reshard_at + 40.0)
    return ExperimentSpec(
        protocol="virtual-partitions",
        processors=total, objects=objects, copies_per_object=degree,
        placement=PLACEMENT, directory="cached", seed=seed,
        duration=duration, grace=60.0,
        clients=1, txns_per_client=txns_per_client, retries=2,
        check=True, audit=True,
        workload=WorkloadSpec(read_fraction=0.8, ops_per_txn=2,
                              mean_interarrival=20.0),
        failures=failures,
        reshard=(ReshardAction(
            time=reshard_at,
            add=tuple(range(base + 1, total + 1))),),
    )


def _reshard_counters(result) -> dict:
    counters = result.registry.snapshot().get("counters", {})
    return {key.split(".", 1)[1]: value
            for key, value in counters.items()
            if key.startswith("reshard.")}


def run(base: int = BASE, spares: int = SPARES, objects: int = OBJECTS,
        degree: int = DEGREE, txns_per_client: int = TXNS_PER_CLIENT,
        duration: float = DURATION, reshard_at: float = RESHARD_AT,
        seed: int = SEED, workers=None) -> dict:
    cells = ("quiet", "partition")
    specs = [cell_spec(cell, base, spares, objects, degree,
                       txns_per_client, duration, reshard_at, seed)
             for cell in cells]
    results = dict(zip(cells, run_many(specs, workers=workers)))
    prediction = movement_prediction(base, spares, objects, degree, seed)

    rows = []
    for cell, r in results.items():
        mig = _reshard_counters(r)
        disturbed = r.metrics.by_reason.get("stale-placement", 0)
        rows.append([
            cell, r.committed, r.aborted,
            f"{mig.get('objects_moved', 0)}/{prediction}",
            mig.get("objects_unchanged", 0), disturbed,
            mig.get("verify_retries", 0),
            r.one_copy_ok, len(r.audit_violations),
        ])
    report(render_table(
        ["cell", "committed", "aborted", "moved/predicted",
         "unchanged", "disturbed", "verify retries", "1SR",
         "audit viol"],
        rows,
        title=f"E19 Online resharding: {base}→{base + spares} nodes, "
              f"{objects} objects on {PLACEMENT} (seed {seed})",
    ))
    emit_metrics("reshard", {
        f"{cell}.{key}": float(value)
        for cell, r in results.items()
        for key, value in {
            "committed": r.committed,
            "moved": _reshard_counters(r).get("objects_moved", 0),
            "disturbed": r.metrics.by_reason.get("stale-placement", 0),
        }.items()
    } | {"prediction": float(prediction)})
    return {"results": results, "prediction": prediction,
            "base": base, "spares": spares, "objects": objects,
            "degree": degree}


def check(outcome: dict) -> None:
    """Deterministic assertions (fixed seed): both cells clean, every
    campaign completes, movement pinned to the policy's prediction."""
    prediction = outcome["prediction"]
    for cell, r in outcome["results"].items():
        assert r.one_copy_ok is True, f"{cell}: not 1SR-clean"
        assert not r.audit_violations, (
            f"{cell}: auditor violations: {r.audit_violations[:3]}")
        mig = _reshard_counters(r)
        assert mig.get("campaigns_completed") == 1, (
            f"{cell}: migration never completed: {mig}")
        moved = mig.get("objects_moved", 0)
        assert moved == prediction, (
            f"{cell}: moved {moved} objects, policy predicted "
            f"{prediction}")

    # the hash ring's reason to exist: an object is disturbed only if
    # one of its k holders changes, so the expected moved fraction is
    # 1-(1-s/(n+s))^k of the objects — never anywhere near all of them
    base, spares = outcome["base"], outcome["spares"]
    objects, degree = outcome["objects"], outcome["degree"]
    fraction = 1.0 - (1.0 - spares / (base + spares)) ** degree
    ceiling = 1.6 * objects * fraction
    assert prediction <= ceiling, (
        f"movement not bounded: {prediction}/{objects} objects for a "
        f"{base}→{base + spares} expansion at degree {degree} "
        f"(ceiling {ceiling:.0f})")
    assert prediction < objects, (
        f"every object moved ({prediction}/{objects}); the policy lost "
        "its bounded-movement property")


def test_benchmark_reshard(benchmark):
    outcome = run_once(benchmark, lambda: run(**SMOKE))
    check(outcome)


if __name__ == "__main__":
    bench_main("bench_reshard", run, check, smoke=SMOKE)
