"""E5 — claim C3: view convergence within Δ = π + 8δ.

§5 proves that once a clique stabilizes (no further failures or
recoveries affecting it), every member commits to the partition with
the highest identifier within Δ = π + 8δ.  This bench heals a
partitioned cluster, measures when the last processor joins the final
common partition, and sweeps π and δ to show the measured convergence
tracks (and respects) the bound.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.core.config import ProtocolConfig
from repro.net.latency import FixedLatency, UniformLatency
from repro.workload.tables import render_table

from _shared import bench_main, emit_metrics, report, run_once

SMOKE = {"deltas": (1.0,), "pi_factors": (3,), "jitters": (False,),
         "seeds": (1,)}


def convergence_time(delta: float, pi: float, seed: int,
                     jittered: bool) -> float:
    """Time from heal to the last join of the final common partition."""
    latency = (UniformLatency(0.4 * delta, delta) if jittered
               else FixedLatency(delta))
    config = ProtocolConfig(delta=delta, pi=pi)
    cluster = Cluster(processors=5, seed=seed, latency=latency,
                      config=config)
    cluster.place("x", holders=[1, 2, 3, 4, 5], initial=0)
    cluster.start()
    cluster.injector.partition_at(5.0, [{1, 2}, {3, 4, 5}])
    settle = 5.0 + 2 * config.liveness_bound
    heal_at = settle + 1.0
    cluster.injector.heal_all_at(heal_at)
    cluster.run(until=heal_at + 3 * config.liveness_bound)

    final_ids = {cluster.protocol(p).current_partition for p in cluster.pids}
    assert len(final_ids) == 1 and None not in final_ids, (
        f"cluster did not reconverge: {final_ids}"
    )
    final_id = final_ids.pop()
    last_join = max(t for t, _pid, vpid, _v in cluster.history.joins
                    if vpid == final_id)
    return last_join - heal_at


def run(deltas=(0.5, 1.0, 2.0), pi_factors=(3, 10, 20),
        jitters=(False, True), seeds=(1, 2, 3), workers=None) -> dict:
    # ``workers`` accepted for CLI uniformity; a no-op — each point
    # stages a partition/heal against a live cluster in-process.
    del workers
    rows = []
    outcomes: dict = {}
    for delta in deltas:
        for factor in pi_factors:
            pi = factor * delta
            bound = pi + 8 * delta
            for jittered in jitters:
                measured = max(
                    convergence_time(delta, pi, seed, jittered)
                    for seed in seeds
                )
                outcomes[(delta, pi, jittered)] = (measured, bound)
                rows.append([
                    delta, pi, "uniform" if jittered else "fixed",
                    measured, bound, measured <= bound,
                ])
    report(render_table(
        ["delta", "pi", "latency", f"measured worst ({len(seeds)} seeds)",
         "bound pi+8*delta", "within"],
        rows,
        title="E5  View convergence after heal vs the liveness bound "
              "Delta = pi + 8*delta (5 processors, 2|3 partition healed)",
    ))
    emit_metrics("liveness", {
        f"d{delta}.pi{pi}.{'uniform' if jittered else 'fixed'}"
        f".{metric}": value
        for (delta, pi, jittered), (measured, bound) in outcomes.items()
        for metric, value in (("measured", measured), ("bound", bound))
    })
    return outcomes


def test_benchmark_liveness(benchmark):
    outcomes = run_once(benchmark, run)
    for (delta, pi, _jittered), (measured, bound) in outcomes.items():
        assert measured <= bound, (
            f"convergence {measured} exceeded Delta={bound} "
            f"(delta={delta}, pi={pi})"
        )
        # sanity: convergence takes real time (probing is periodic)
        assert measured > 0


if __name__ == "__main__":
    bench_main("bench_liveness", run, smoke=SMOKE)
