"""E4 — claim C2: availability under partitions, by protocol.

The majority rule makes a logical object accessible exactly where a
weighted majority of its copies is in view.  This bench partitions a
5-processor, fully replicated cluster into every k | (5-k) split and
reports, per protocol, the fraction of processors that can read and
write after the views stabilize.

Expected shape: virtual partitions and the voting protocols keep the
majority side fully available for both reads and writes; ROWA can read
everywhere but write nowhere; weighted placement shifts the accessible
side to wherever the weight is.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.protocols import protocol_factory
from repro.workload.tables import render_table

from _shared import bench_main, emit_metrics, report, run_once

PROTOCOLS = ["virtual-partitions", "rowa", "quorum", "majority",
             "missing-writes"]
N = 5
SMOKE = {"splits": (2,), "protocols": ["virtual-partitions", "rowa"],
         "weighted": False}


def availability(protocol_name: str, majority_block) -> dict:
    cluster = Cluster(processors=N, seed=5,
                      protocol=protocol_factory(protocol_name))
    cluster.place("x", holders=list(range(1, N + 1)), initial=0)
    cluster.start()
    cluster.injector.partition_at(5.0, [majority_block])
    cluster.run(until=5.0 + cluster.config.liveness_bound + 5)
    reads = sum(cluster.protocol(p).available("x", write=False)
                for p in cluster.pids)
    writes = sum(cluster.protocol(p).available("x", write=True)
                 for p in cluster.pids)
    return {"read": reads / N, "write": writes / N}


def weighted_availability(protocol_name: str) -> dict:
    """A weight-2 copy lets a 2-processor side hold the majority."""
    cluster = Cluster(processors=N, seed=5,
                      protocol=protocol_factory(protocol_name))
    cluster.place("x", holders={1: 2, 2: 1, 3: 1, 4: 1, 5: 1}, initial=0)
    cluster.start()
    cluster.injector.partition_at(5.0, [{1, 2}])  # weight 3 of 6... not maj
    cluster.run(until=5.0 + cluster.config.liveness_bound + 5)
    return {
        "side12_write": cluster.protocol(1).available("x", write=True),
        "side345_write": cluster.protocol(3).available("x", write=True),
    }


def run(splits=(1, 2, 3, 4), protocols=PROTOCOLS,
        weighted: bool = True, workers=None) -> dict:
    # ``workers`` accepted for CLI uniformity; a no-op — each point
    # probes availability on a live partitioned cluster.
    del workers
    rows = []
    outcomes: dict = {}
    for k in splits:
        block = set(range(1, k + 1))
        for name in protocols:
            result = availability(name, block)
            outcomes[(k, name)] = result
            rows.append([f"{k}|{N - k}", name, result["read"],
                         result["write"]])
    report(render_table(
        ["split", "protocol", "read avail", "write avail"],
        rows,
        title=f"E4  Fraction of processors able to access x after a "
              f"partition (n={N}, full replication)",
    ))
    if weighted:
        weighted_results = {name: weighted_availability(name)
                            for name in ("virtual-partitions", "quorum")}
        wrows = [[name, w["side12_write"], w["side345_write"]]
                 for name, w in weighted_results.items()]
        report(render_table(
            ["protocol", "{1,2} can write", "{3,4,5} can write"],
            wrows,
            title="E4b Weighted copies (p1 holds weight 2 of 6): an even "
                  "3|3 weight split makes x unwritable everywhere",
        ))
        outcomes["weighted"] = weighted_results
    emit_metrics("availability", {
        f"split{k}.{name}.{mode}": outcomes[(k, name)][mode]
        for k in splits for name in protocols
        for mode in ("read", "write")
    })
    return outcomes


def test_benchmark_availability(benchmark):
    outcomes = run_once(benchmark, run)
    for k in (1, 2, 3, 4):
        majority_side = max(k, N - k) / N
        vp = outcomes[(k, "virtual-partitions")]
        # Exactly the majority side stays read- AND write-available:
        assert vp["read"] == majority_side
        assert vp["write"] == majority_side
        rowa = outcomes[(k, "rowa")]
        assert rowa["write"] == 0.0  # one unreachable copy kills writes
        assert rowa["read"] == 1.0   # any copy serves reads
        quorum = outcomes[(k, "quorum")]
        assert quorum["write"] == majority_side
    weighted = outcomes["weighted"]
    for name, w in weighted.items():
        assert not w["side12_write"] and not w["side345_write"], (
            f"{name}: a 3-of-6 weight split must block writes everywhere"
        )


if __name__ == "__main__":
    bench_main("bench_availability", run, smoke=SMOKE)
