"""E1 — Figure 1 / Example 1: the lost increment on a non-transitive graph.

Regenerates the paper's first counterexample as a measured run: under
the naive view-based majority protocol both increments of x commit and
one update is lost (serializable, not 1SR); under the virtual
partitions protocol, with identical connectivity, both increments
survive and the execution is 1SR.
"""

from __future__ import annotations

from repro.workload.scenarios import run_example1_naive, run_example1_vp
from repro.workload.tables import render_table

from _shared import bench_main, emit_metrics, report, run_once

SMOKE: dict = {}


def run(workers=None) -> dict:
    # ``workers`` accepted for CLI uniformity; a no-op — the bench is
    # two fixed scripted scenarios, not a spec sweep.
    del workers
    naive = run_example1_naive(seed=0)
    vp = run_example1_vp(seed=0)
    rows = [
        ["naive-view", len(naive.committed), len(naive.aborted),
         naive.cp_serializable, bool(naive.one_copy.ok),
         max(naive.final_values.values()), naive.lost_update],
        ["virtual-partitions", len(vp.committed), len(vp.aborted),
         vp.cp_serializable, bool(vp.one_copy.ok),
         max(vp.final_values.values()), vp.lost_update],
    ]
    report(render_table(
        ["protocol", "committed", "aborted", "CP-serializable",
         "one-copy SR", "final x", "lost update"],
        rows,
        title="E1  Example 1 (Fig. 1): two increments, A-B link cut, "
              "both reach C",
    ))
    emit_metrics("example1", {
        f"{label}.{metric}": value
        for label, outcome in (("naive", naive), ("vp", vp))
        for metric, value in (
            ("committed", len(outcome.committed)),
            ("aborted", len(outcome.aborted)),
            ("one_copy_ok", int(bool(outcome.one_copy.ok))),
            ("lost_update", int(outcome.lost_update)),
        )
    })
    return {"naive": naive, "vp": vp}


def test_benchmark_example1(benchmark):
    results = run_once(benchmark, run)
    naive, vp = results["naive"], results["vp"]
    # The paper's qualitative claims, as assertions:
    assert naive.lost_update and naive.one_copy.ok is False
    assert naive.cp_serializable  # serializable, yet wrong
    assert not vp.lost_update and vp.one_copy.ok is True


if __name__ == "__main__":
    bench_main("bench_example1", run, smoke=SMOKE)
