"""E11 (extension) — rule R2's parenthetical: retry reads elsewhere.

R2: "(If q does not respond, then the physical read can be retried at
another processor or the logical read can be aborted.)"  The protocol
supports both; this ablation quantifies the trade-off when the nearest
copy's holder has just crashed and the view has not caught up yet:

* retry OFF — the read aborts, the client re-runs the transaction
  after the view converges;
* retry ON — the read falls through to the next-nearest copy and
  usually succeeds on the first attempt.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.core.config import ProtocolConfig
from repro.net.latency import DistanceLatency, ring_distances
from repro.workload.tables import render_table

from _shared import bench_main, emit_metrics, report, run_once

TRIALS = 8
SMOKE = {"trials": 2}


def run_flavor(read_retry: bool, trials: int = TRIALS) -> dict:
    # Slow probing (pi=60) models a long detection window; a tight
    # access timeout (6 delta; there is no lock contention here) makes
    # the no-response verdict arrive well before the view catches up —
    # the regime where R2's retry-or-abort choice actually matters.
    config = ProtocolConfig(delta=1.0, pi=60.0, read_retry=read_retry,
                            access_timeout_deltas=6.0,
                            lock_timeout_deltas=4.0)
    latency = DistanceLatency(ring_distances([1, 2, 3, 4, 5]),
                              default=1.0, jitter=0.0)
    cluster = Cluster(processors=5, seed=23, latency=latency, config=config)
    cluster.place("x", holders=[2, 3, 4], initial="value")
    cluster.start()

    first_attempt_ok = 0
    eventually_ok = 0
    total_read_time = 0.0
    for trial in range(trials):
        # p2 is p1's nearest holder of x; crash it right before a read,
        # inside the detection window (the view still lists it).
        crash_at = cluster.sim.now + 10.0
        cluster.injector.crash_at(crash_at, 2)
        cluster.run(until=crash_at + 0.5)

        def read_body(txn):
            value = yield from txn.read("x")
            return value

        start = cluster.sim.now
        once = cluster.submit(1, read_body)
        cluster.sim.run(until=once)
        if once.value[0]:
            first_attempt_ok += 1
            eventually_ok += 1
        else:
            retried = cluster.submit(1, read_body, retries=10, backoff=6.0)
            cluster.sim.run(until=retried)
            if retried.value[0]:
                eventually_ok += 1
        total_read_time += cluster.sim.now - start
        # heal for the next trial
        recover_at = cluster.sim.now + 5.0
        cluster.injector.recover_at(recover_at, 2)
        cluster.run(until=recover_at + cluster.config.liveness_bound + 5)

    return {
        "first_attempt_ok": first_attempt_ok,
        "eventually_ok": eventually_ok,
        "mean_read_completion": total_read_time / trials,
    }


def run(trials: int = TRIALS, workers=None) -> dict:
    # ``workers`` accepted for CLI uniformity; a no-op — trials crash
    # and heal a live cluster between reads.
    del workers
    outcomes = {flag: run_flavor(flag, trials=trials)
                for flag in (False, True)}
    rows = [
        ["abort (retry off)", outcomes[False]["first_attempt_ok"],
         outcomes[False]["eventually_ok"],
         outcomes[False]["mean_read_completion"]],
        ["retry next copy (R2)", outcomes[True]["first_attempt_ok"],
         outcomes[True]["eventually_ok"],
         outcomes[True]["mean_read_completion"]],
    ]
    report(render_table(
        ["policy", f"1st-attempt ok (of {trials})",
         f"eventually ok (of {trials})", "mean read completion time"],
        rows,
        title="E11 Reads racing a crash of the nearest copy holder "
              "(view not yet updated)",
    ))
    emit_metrics("read_retry", {
        f"{'retry' if flag else 'abort'}.{metric}": outcome[metric]
        for flag, outcome in outcomes.items()
        for metric in ("first_attempt_ok", "eventually_ok",
                       "mean_read_completion")
    })
    return outcomes


def test_benchmark_read_retry(benchmark):
    outcomes = run_once(benchmark, run)
    off, on = outcomes[False], outcomes[True]
    # Retrying at the next copy rescues first attempts...
    assert on["first_attempt_ok"] > off["first_attempt_ok"]
    # ...and completes reads sooner on average.
    assert on["mean_read_completion"] < off["mean_read_completion"]
    # Both policies eventually serve every read (fault tolerance).
    assert on["eventually_ok"] == TRIALS
    assert off["eventually_ok"] == TRIALS


if __name__ == "__main__":
    bench_main("bench_read_retry", run, smoke=SMOKE)
