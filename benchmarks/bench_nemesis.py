"""E14 — robustness under adversarial nemesis campaigns, by protocol.

The campaign hunter's fault planner (directed cuts, delay surges, grey
loss, duplication storms, flapping, crashes, partitions) doubles as a
robustness benchmark: fan the same fixed-seed campaigns over each
protocol with the runtime invariant auditor and the 1SR checker armed,
and report how often the protocol is convicted and how much
availability (commit rate) it keeps while faults rage.

Expected shape: virtual partitions and quorum survive every campaign
with zero auditor/1SR violations — they buy that safety with aborts, so
their commit rate drops as the mix gets nastier.  The naive-view
strawman commits more (it never refuses stale views) and pays for it
with 1SR convictions.
"""

from __future__ import annotations

from repro.net.nemesis import NemesisMix
from repro.workload.hunt import HuntConfig, campaign_spec, plan_campaigns, verdict_of
from repro.workload.parallel import run_many
from repro.workload.tables import render_table

from _shared import bench_main, emit_metrics, report, run_once

PROTOCOLS = ["virtual-partitions", "quorum", "naive-view"]
MIXES = {
    # the hunter's default diet: every fault class, equal-ish weights
    "baseline": NemesisMix(),
    # mostly clean splits and flapping links — the paper's home turf
    "partition-heavy": NemesisMix(crash=0.5, cut=2.0, oneway=1.0,
                                  surge=0.5, grey=0.5, dup=0.25,
                                  flap=1.0, partition=3.0),
}
SMOKE = {"campaigns": 3, "protocols": ["virtual-partitions", "naive-view"],
         "mixes": ("baseline",)}


def campaign_outcomes(protocol: str, mix: NemesisMix, campaigns: int,
                      seed: int = 0, workers=None) -> dict:
    """Run ``campaigns`` fixed-seed nemesis campaigns against one
    protocol and aggregate the verdicts."""
    cfg = HuntConfig(protocol=protocol, campaigns=campaigns, seed=seed,
                     mix=mix, workers=workers)
    plans = plan_campaigns(cfg)
    specs = [campaign_spec(cfg, actions, s) for s, actions in plans]
    results = run_many(specs, workers=workers)
    convicted = sum(verdict_of(r) is not None for r in results)
    return {
        "campaigns": campaigns,
        "committed": sum(r.committed for r in results),
        "aborted": sum(r.aborted for r in results),
        "commit_rate": (sum(r.committed for r in results)
                        / max(1, sum(r.attempted for r in results))),
        "audit_violations": sum(len(r.audit_violations) for r in results),
        "unserializable": sum(r.one_copy_ok is False for r in results),
        "convicted": convicted,
    }


def run(campaigns: int = 24, protocols=PROTOCOLS, mixes=tuple(MIXES),
        seed: int = 0, workers=None) -> dict:
    rows = []
    outcomes: dict = {}
    for mix_name in mixes:
        mix = MIXES[mix_name]
        for name in protocols:
            result = campaign_outcomes(name, mix, campaigns, seed=seed,
                                       workers=workers)
            outcomes[(mix_name, name)] = result
            rows.append([
                mix_name, name, result["commit_rate"],
                result["aborted"] / campaigns,
                result["audit_violations"], result["unserializable"],
                f"{result['convicted']}/{campaigns}",
            ])
    report(render_table(
        ["mix", "protocol", "commit rate", "aborts/camp",
         "audit viol", "not-1SR", "convicted"],
        rows,
        title=f"E14 Safety and availability under {campaigns} randomized "
              f"nemesis campaigns (seed {seed})",
    ))
    emit_metrics("nemesis", {
        f"{mix_name}.{name}.{key}": float(outcomes[(mix_name, name)][key])
        for mix_name, name in outcomes
        for key in ("commit_rate", "convicted", "audit_violations")
    })
    return outcomes


def check(outcomes: dict) -> None:
    """Deterministic assertions only: verdict counts for a fixed seed."""
    for (mix_name, name), result in outcomes.items():
        if name in ("virtual-partitions", "quorum"):
            assert result["convicted"] == 0, (
                f"{name} convicted under {mix_name}: {result}")
            assert result["audit_violations"] == 0
        assert result["committed"] > 0, f"{name}/{mix_name} committed nothing"
    naive = outcomes.get(("baseline", "naive-view"))
    if naive is not None:
        assert naive["convicted"] > 0, (
            "the naive-view canary must be convicted under the baseline mix")


def test_benchmark_nemesis(benchmark):
    outcomes = run_once(benchmark, run)
    check(outcomes)


if __name__ == "__main__":
    # --check runs the FULL campaign set (check_params omitted): the
    # verdict-count assertions are calibrated to the full fixed-seed run.
    bench_main("bench_nemesis", run, check, smoke=SMOKE)
