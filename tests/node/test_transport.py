"""Unit tests for the scatter/gather fan-out primitive."""

import random

from repro.net import CommGraph, FixedLatency, Network
from repro.node import Processor
from repro.sim import Simulator


def build(n=4):
    sim = Simulator()
    graph = CommGraph(range(1, n + 1))
    net = Network(sim, graph, FixedLatency(1.0), random.Random(1))
    procs = {p: Processor(p, sim, net) for p in graph.nodes}
    return sim, graph, net, procs


def echo_server(proc, kind="echo", delay=0.0):
    def server():
        while True:
            request = yield proc.receive(kind)
            if delay:
                yield proc.sim.timeout(delay)
            proc.reply(request, f"{kind}-reply",
                       {"pid": proc.pid, "n": request.payload["n"]})
    return server


def test_scatter_gather_collects_every_reply():
    sim, _, _, procs = build()
    for p in (2, 3, 4):
        sim.process(echo_server(procs[p])())

    def caller():
        results = yield from procs[1].scatter_gather(
            [2, 3, 4], "echo", lambda server: {"n": server * 10},
            timeout=5.0)
        return results

    proc = sim.process(caller())
    sim.run()
    assert proc.value == {2: {"pid": 2, "n": 20},
                          3: {"pid": 3, "n": 30},
                          4: {"pid": 4, "n": 40}}
    stats = procs[1].transport
    assert stats.fanouts == 1 and stats.rpcs == 3
    assert stats.no_responses == 0 and stats.early_exits == 0
    assert stats.fanout_latencies == [2.0]  # one round trip at delay 1.0


def test_silence_maps_to_none_and_is_counted():
    sim, graph, _, procs = build()
    graph.cut_link(1, 3)
    for p in (2, 4):
        sim.process(echo_server(procs[p])())

    def caller():
        results = yield from procs[1].scatter_gather(
            [2, 3, 4], "echo", lambda server: {"n": server}, timeout=3.0)
        return results

    proc = sim.process(caller())
    sim.run()
    assert proc.value[3] is None
    assert proc.value[2] == {"pid": 2, "n": 2}
    assert proc.value[4] == {"pid": 4, "n": 4}
    assert procs[1].transport.no_responses == 1
    # silence bounds the gather at the RPC timeout, not forever
    assert procs[1].transport.fanout_latencies == [3.0]


def test_quorum_early_exit_kills_the_stragglers():
    sim, _, _, procs = build()
    sim.process(echo_server(procs[2])())
    sim.process(echo_server(procs[3])())
    sim.process(echo_server(procs[4], delay=50.0)())

    def caller():
        results = yield from procs[1].quorum_call(
            [2, 3, 4], "echo", lambda server: {"n": server}, timeout=100.0,
            quorum=lambda partial: len(partial) >= 2)
        return (results, sim.now)

    proc = sim.process(caller())
    sim.run()
    results, finished_at = proc.value
    assert set(results) == {2, 3}
    assert finished_at == 2.0  # did not wait for the straggler
    assert procs[1].transport.early_exits == 1
    assert procs[1].transport.fanout_latencies == [2.0]


def test_two_phase_scatter_overlaps_local_work():
    sim, _, _, procs = build()
    for p in (2, 3):
        sim.process(echo_server(procs[p])())

    def caller():
        call = procs[1].scatter([2, 3], "echo",
                                lambda server: {"n": server}, timeout=5.0)
        yield sim.timeout(1.5)  # local work while requests are in flight
        results = yield from call.gather()
        return (sorted(results), sim.now)

    proc = sim.process(caller())
    sim.run()
    # requests left at scatter() time: the replies were back at t=2.0,
    # so gathering after 1.5 of local work still finishes at 2.0
    assert proc.value == ([2, 3], 2.0)


def test_empty_target_set_gathers_immediately():
    sim, _, _, procs = build()

    def caller():
        results = yield from procs[1].scatter_gather(
            [], "echo", lambda server: {}, timeout=5.0)
        return (results, sim.now)

    proc = sim.process(caller())
    sim.run()
    assert proc.value == ({}, 0.0)
    assert procs[1].transport.fanout_latencies == [0.0]


def test_broadcast_collect_filters_and_respects_window():
    sim, _, _, procs = build()

    def acker(proc, value):
        def server():
            message = yield proc.receive("ping")
            proc.send(message.src, "pong", {"v": value})
        return server

    sim.process(acker(procs[2], "yes")())
    sim.process(acker(procs[3], "no")())
    # processor 4 never answers

    def caller():
        collected = yield from procs[1].broadcast_collect(
            [2, 3, 4], "ping", {}, reply_kind="pong", window=5.0,
            accept=lambda m: m.payload["v"] == "yes")
        return ([m.src for m in collected], sim.now)

    proc = sim.process(caller())
    sim.run()
    # the window runs to completion even with replies in hand:
    # collection is time-bounded, not count-bounded
    assert proc.value == ([2], 5.0)
    assert procs[1].transport.broadcasts == 1


def test_late_reply_is_counted_and_traced():
    from repro.node.transport import NoResponse
    from repro.obs.trace import Tracer

    sim, _, _, procs = build()
    tracer = Tracer(sim)
    procs[1].tracer = tracer
    sim.process(echo_server(procs[2], delay=5.0)())

    def caller():
        try:
            yield from procs[1].rpc(2, "echo", {"n": 1}, timeout=2.0)
        except NoResponse:
            return "timed-out"
        return "answered"

    proc = sim.process(caller())
    sim.run()
    assert proc.value == "timed-out"
    # the reply landed at t=7, long after the waiter gave up at t=2
    assert procs[1].transport.late_replies == 1
    assert procs[1]._reply_waiters == {}
    late = [e for e in tracer.events if e.etype == "msg.late-reply"]
    assert len(late) == 1
    assert late[0].pid == 1
    assert late[0].fields["src"] == 2
    assert late[0].fields["kind"] == "echo-reply"


def test_quorum_kill_leaves_no_reply_waiters():
    """Early-exit cleanup: killing straggler RPC workers must run their
    ``finally`` blocks, deregistering every reply waiter — and the
    straggler's eventual reply is dropped as a late reply, not an
    error."""
    sim, _, _, procs = build()
    sim.process(echo_server(procs[2])())
    sim.process(echo_server(procs[3])())
    sim.process(echo_server(procs[4], delay=50.0)())

    def caller():
        results = yield from procs[1].quorum_call(
            [2, 3, 4], "echo", lambda server: {"n": server}, timeout=100.0,
            quorum=lambda partial: len(partial) >= 2)
        return (set(results), procs[1]._reply_waiters.copy(), sim.now)

    proc = sim.process(caller())
    sim.run()  # runs past t=52, when p4's reply finally arrives
    results, waiters_at_exit, finished_at = proc.value
    assert results == {2, 3} and finished_at == 2.0
    assert waiters_at_exit == {}  # killed workers cleaned up after themselves
    assert procs[1]._reply_waiters == {}
    assert procs[1].transport.late_replies == 1  # p4's orphaned reply
