"""Edge-case tests: RPC and mailbox behaviour across crashes."""

import random

from repro.net import CommGraph, FixedLatency, Network
from repro.node import NoResponse, Processor
from repro.sim import Simulator


def build(n=3):
    sim = Simulator()
    graph = CommGraph(range(1, n + 1))
    net = Network(sim, graph, FixedLatency(1.0), random.Random(1))
    procs = {p: Processor(p, sim, net) for p in graph.nodes}
    return sim, graph, net, procs


def test_rpc_to_crashed_server_times_out():
    sim, graph, _, procs = build()
    graph.crash_node(2)
    procs[2].crash()

    def client():
        try:
            yield from procs[1].rpc(2, "ask", {}, timeout=4.0)
        except NoResponse:
            return sim.now

    proc = sim.process(client())
    sim.run()
    assert proc.value == 4.0


def test_server_crash_after_request_before_reply():
    sim, graph, _, procs = build()

    def server():
        message = yield procs[2].receive("ask")
        yield sim.timeout(5.0)  # crash interrupts this wait
        procs[2].reply(message, "ask-reply")

    outcomes = []

    def client():
        try:
            yield from procs[1].rpc(2, "ask", {}, timeout=10.0)
            outcomes.append("replied")
        except NoResponse:
            outcomes.append("no-response")

    sim.process(server())
    sim.process(client())
    sim.timeout(2.0).add_callback(lambda e: (graph.crash_node(2),
                                             procs[2].crash()))
    sim.run()
    assert outcomes == ["no-response"]


def test_requester_crash_drops_pending_reply():
    sim, graph, _, procs = build()

    def server():
        message = yield procs[2].receive("ask")
        yield sim.timeout(3.0)
        procs[2].reply(message, "ask-reply")

    state = []

    def client():
        try:
            response = yield from procs[1].rpc(2, "ask", {}, timeout=20.0)
            state.append(("got", response))
        except NoResponse:
            state.append(("timeout", None))

    sim.process(server())
    client_proc = sim.process(client())
    # p1 crashes while the reply is on its way back.
    sim.timeout(2.5).add_callback(lambda e: (graph.crash_node(1),
                                             procs[1].crash()))
    sim.run(until=30.0)
    # The reply was dropped (p1 was down); no mailbox pollution on p1.
    assert all(len(procs[1].mailbox(k)) == 0
               for k in ("ask-reply", "ask"))


def test_recovered_processor_serves_again():
    sim, graph, _, procs = build()

    def echo_task():
        while True:
            message = yield procs[2].receive("echo")
            procs[2].reply(message, "echo-reply",
                           {"text": message.payload["text"]})

    procs[2].add_task("echo", echo_task)
    procs[2].start()

    graph.crash_node(2)
    procs[2].crash()
    sim.run(until=5.0)
    graph.recover_node(2)
    procs[2].recover()

    def client():
        response = yield from procs[1].rpc(2, "echo", {"text": "back"},
                                           timeout=5.0)
        return response.payload["text"]

    proc = sim.process(client())
    sim.run()
    assert proc.value == "back"


def test_messages_queued_while_down_are_not_delivered_after_recovery():
    sim, graph, _, procs = build()
    graph.crash_node(2)
    procs[2].crash()
    procs[1].send(2, "note", {"n": 1})
    sim.run(until=5.0)
    graph.recover_node(2)
    procs[2].recover()
    sim.run(until=10.0)
    assert len(procs[2].mailbox("note")) == 0, (
        "messages sent while a processor is down are lost, not queued"
    )


def test_two_rpcs_in_flight_matched_correctly():
    sim, _, _, procs = build()

    def server():
        while True:
            message = yield procs[2].receive("ask")
            procs[2].reply(message, "ask-reply",
                           {"echo": message.payload["n"]})

    def client(n, delay):
        yield sim.timeout(delay)
        response = yield from procs[1].rpc(2, "ask", {"n": n}, timeout=10.0)
        return response.payload["echo"]

    sim.process(server())
    first = sim.process(client(1, 0.0))
    second = sim.process(client(2, 0.1))
    sim.run()
    assert first.value == 1
    assert second.value == 2
