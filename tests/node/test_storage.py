"""Unit tests for the durable copy store."""

import pytest

from repro.node import CopyStore, DurableCell, LogEntry


def test_place_and_read():
    store = CopyStore(1)
    store.place("x", initial=0, date=(0, 0))
    assert store.read("x") == (0, (0, 0))
    assert store.holds("x")
    assert store.local_objects == {"x"}


def test_double_place_rejected():
    store = CopyStore(1)
    store.place("x")
    with pytest.raises(KeyError):
        store.place("x")


def test_missing_copy_raises():
    store = CopyStore(1)
    with pytest.raises(KeyError):
        store.read("ghost")


def test_write_updates_value_and_date():
    store = CopyStore(1)
    store.place("x", initial=0, date=(0, 0))
    store.write("x", 42, (1, 3))
    assert store.read("x") == (42, (1, 3))
    assert store.date("x") == (1, 3)


def test_access_counters():
    store = CopyStore(1)
    store.place("x", initial=0, date=(0, 0))
    store.read("x")
    store.read("x")
    store.write("x", 1, (1, 1))
    assert store.reads["x"] == 2
    assert store.writes["x"] == 1
    # peek does not count
    store.peek("x")
    assert store.reads["x"] == 2


def test_install_does_not_count_as_transaction_write():
    store = CopyStore(1)
    store.place("x", initial=0, date=(0, 0))
    store.install("x", 99, (2, 1))
    assert store.writes.get("x", 0) == 0
    assert store.peek("x") == (99, (2, 1))


def test_log_since_returns_missed_writes_in_order():
    store = CopyStore(1)
    store.place("x", initial=0, date=(0, 0))
    store.write("x", 1, (1, 1))
    store.write("x", 2, (2, 1))
    store.write("x", 3, (3, 1))
    missed = store.log_since("x", (1, 1))
    assert [(e.date, e.value) for e in missed] == [((2, 1), 2), ((3, 1), 3)]


def test_log_since_none_returns_full_history():
    store = CopyStore(1)
    store.place("x", initial=0, date=(0, 0))
    store.write("x", 1, (1, 1))
    assert len(store.log_since("x", None)) == 2  # initial + write


def test_apply_log_catches_up_stale_copy():
    fresh = CopyStore(1)
    fresh.place("x", initial=0, date=(0, 0))
    fresh.write("x", 10, (1, 1))
    fresh.write("x", 20, (2, 1))

    stale = CopyStore(2)
    stale.place("x", initial=0, date=(0, 0))
    applied = stale.apply_log("x", fresh.log_since("x", (0, 0)))
    assert applied == 2
    assert stale.peek("x") == (20, (2, 1))


def test_apply_log_skips_already_applied_entries():
    store = CopyStore(1)
    store.place("x", initial=5, date=(3, 1))
    applied = store.apply_log("x", [LogEntry((1, 1), 1), LogEntry((2, 1), 2)])
    assert applied == 0
    assert store.peek("x") == (5, (3, 1))


def test_object_size_for_transfer_costs():
    store = CopyStore(1)
    store.place("big", initial=b"...", date=(0, 0), size=1000)
    assert store.size("big") == 1000
    with pytest.raises(ValueError):
        store.place("bad", size=0)


def test_durable_cell_roundtrip():
    cell = DurableCell((0, 1))
    assert cell.value == (0, 1)
    cell.value = (5, 2)
    assert cell.value == (5, 2)
