"""The storage engine is a faithful CopyStore facade — plus a WAL.

Two layers of pinning:

* equivalence — every CopyStore behaviour (place / read / write /
  install / log_since / apply_log, including the ``date=None`` edge
  cases) is identical through the engine with the default policy;
* engine-only behaviour — WAL accounting, checkpoint/rebuild
  round-trips, compaction floors and :class:`LogTruncated`, durable
  cells, and the journalled decision log.
"""

import pytest

from repro.node.storage import (
    CopyStore,
    LogEntry,
    LogTruncated,
    StorageEngine,
    StoragePolicy,
)
from repro.node.storage.checkpoint import NO_FLOOR


def drive(store):
    """One scripted mixed workload, run against either implementation."""
    store.place("x", initial=0, date=None, size=10, version="v0")
    store.place("y", initial="seed", date=(1, 1), size=3, version="v1")
    out = []
    out.append(store.read("x"))
    store.write("x", 11, (2, 1), "v2")
    store.write("x", 12, (2, 2), "v3")
    out.append(store.read("x"))
    out.append(store.peek("y"))
    store.install("y", "recovered", (3, 1), "v4")
    out.append((store.date("y"), store.version("y"), store.size("y")))
    # apply_log: stale entry ignored, newer applied, None-dated ignored
    applied = store.apply_log("y", [
        LogEntry((2, 9), "stale", "v-old"),
        LogEntry(None, "undated", "v-none"),
        LogEntry((4, 1), "newest", "v5"),
    ])
    out.append(applied)
    out.append(store.log_since("x", None))
    out.append(store.log_since("x", (2, 1)))
    out.append(store.log_since("y", (3, 1)))
    out.append((dict(store.reads), dict(store.writes)))
    out.append((store.holds("x"), store.holds("nope")))
    out.append(sorted(store.local_objects))
    return out


def test_engine_facade_equivalent_to_copystore():
    assert drive(CopyStore(1)) == drive(StorageEngine(1))


def test_facade_errors_match():
    plain, engine = CopyStore(1), StorageEngine(1)
    for store in (plain, engine):
        store.place("x", initial=0)
        with pytest.raises(KeyError):
            store.place("x", initial=1)  # double placement
        with pytest.raises(KeyError):
            store.read("missing")
        with pytest.raises(ValueError):
            store.place("tiny", size=0)


def test_every_mutation_is_journalled():
    engine = StorageEngine(1)
    engine.place("x", initial=0)
    engine.write("x", 1, (1, 1), "v1")
    engine.install("x", 2, (2, 1), "v2")
    engine.apply_log("x", [LogEntry((3, 1), 3, "v3")])
    kinds = [record.kind for record in engine.wal]
    assert kinds == ["place", "write", "install", "apply"]
    assert engine.stats.wal_appends == 4
    assert engine.stats.forced_syncs == 0  # none of these force
    # reads journal nothing
    engine.read("x")
    assert engine.stats.wal_appends == 4


def test_force_write_points_are_counted():
    engine = StorageEngine(1)
    engine.record_prepare("t1", objects={"x"})
    engine.record_decision("t1", "commit")
    engine.record_decision("t2", "undecided", forced=False)
    cell = engine.durable_cell("max-id", 0)
    cell.value = 7  # a max-id bump is forced
    assert engine.stats.forced_syncs == 3  # prepare, commit, cell bump
    assert engine.stats.wal_appends == 5   # + undecided + cell creation
    assert engine.decisions == {"t1": "commit", "t2": "undecided"}


def test_durable_cell_reacquisition_is_idempotent():
    engine = StorageEngine(1)
    cell = engine.durable_cell("max-id", 10)
    cell.value = 42
    again = engine.durable_cell("max-id", 0)
    assert again is cell
    assert again.value == 42  # live value wins over the new initial


def test_checkpoint_truncates_wal_and_rebuild_roundtrips():
    engine = StorageEngine(1)
    engine.place("x", initial=0, size=5)
    engine.write("x", 1, (1, 1), "v1")
    engine.durable_cell("max-id", (0, 1)).value = (1, 1)
    engine.record_decision("t1", "commit")
    engine.checkpoint()
    assert len(engine.wal) == 0  # prefix captured by the snapshot
    engine.write("x", 2, (2, 1), "v2")   # the replay tail
    engine.record_decision("t2", "abort")
    rebuilt = engine.rebuilt()
    assert rebuilt.durable_snapshot() == engine.durable_snapshot()
    assert rebuilt.stats.replayed_records == 2
    assert rebuilt.stats.replayed_bytes > 0
    assert rebuilt.durable_cell("max-id").value == (1, 1)
    assert rebuilt.decisions == {"t1": "commit", "t2": "abort"}


def test_rebuild_from_empty_checkpoint_is_pure_replay():
    engine = StorageEngine(1)
    engine.place("x", initial="a", date=None, version="v0")
    engine.write("x", "b", (1, 1), "v1")
    rebuilt = engine.rebuilt()
    assert rebuilt.durable_snapshot() == engine.durable_snapshot()
    assert rebuilt.stats.replayed_records == 2


def test_replay_does_not_recount_transaction_writes():
    engine = StorageEngine(1)
    engine.place("x", initial=0)
    engine.write("x", 1, (1, 1))
    rebuilt = engine.rebuilt()
    # the materialized copy (incl. its log) matches, but write counters
    # are observability, not durable state — replay must not re-count
    assert rebuilt.writes == {}
    assert rebuilt.peek("x") == engine.peek("x")
    assert rebuilt.log_since("x", None) == engine.log_since("x", None)


def test_compaction_sets_floor_and_refuses_deep_log_reads():
    engine = StorageEngine(1, StoragePolicy(log_retain=2))
    engine.place("x", initial=0)           # seed entry, date=None
    for n in range(1, 5):
        engine.write("x", n, (n, 1), f"v{n}")
    assert engine.retained_entries() == 5
    engine.checkpoint()                    # compacts to the newest 2
    assert engine.retained_entries() == 2
    assert engine.stats.compacted_entries == 3
    assert engine.compaction_floor("x") == (2, 1)
    # at/above the floor: answered exactly
    assert [e.value for e in engine.log_since("x", (2, 1))] == [3, 4]
    assert [e.value for e in engine.log_since("x", (3, 1))] == [4]
    # below the floor (or the full history): refused, not partial
    with pytest.raises(LogTruncated):
        engine.log_since("x", (1, 1))
    with pytest.raises(LogTruncated):
        engine.log_since("x", None)
    assert engine.stats.truncated_reads == 2


def test_none_dated_floor_still_answers_dated_queries():
    engine = StorageEngine(1, StoragePolicy(log_retain=2))
    engine.place("x", initial=0)
    engine.write("x", 1, (1, 1), "v1")
    engine.write("x", 2, (2, 1), "v2")
    engine.checkpoint()  # discards only the None-dated seed entry
    assert engine.compaction_floor("x") is None
    # a None-dated entry is never part of a dated answer, so any dated
    # ``after`` is still served exactly...
    assert [e.value for e in engine.log_since("x", (0, 0))] == [1, 2]
    # ...but the full history is gone
    with pytest.raises(LogTruncated):
        engine.log_since("x", None)


def test_compaction_floor_survives_rebuild():
    engine = StorageEngine(1, StoragePolicy(log_retain=1))
    engine.place("x", initial=0)
    for n in range(1, 4):
        engine.write("x", n, (n, 1))
    engine.checkpoint()
    engine.write("x", 9, (9, 1))  # tail past the checkpoint
    rebuilt = engine.rebuilt()
    assert rebuilt.compaction_floor("x") == (2, 1)
    with pytest.raises(LogTruncated):
        rebuilt.log_since("x", (1, 1))
    assert rebuilt.durable_snapshot() == engine.durable_snapshot()


def test_auto_checkpoint_fires_by_append_count():
    engine = StorageEngine(1, StoragePolicy(checkpoint_every=3))
    engine.place("x", initial=0)
    engine.write("x", 1, (1, 1))
    assert engine.stats.checkpoints == 0
    engine.write("x", 2, (2, 1))  # third append triggers
    assert engine.stats.checkpoints == 1
    assert len(engine.wal) == 0
    assert engine.last_checkpoint.lsn == 3


def test_uncompacted_engine_has_no_floor():
    engine = StorageEngine(1)
    engine.place("x", initial=0)
    engine.write("x", 1, (1, 1))
    engine.checkpoint()  # default policy: no compaction
    assert engine.compaction_floor("x") is NO_FLOOR
    assert len(engine.log_since("x", None)) == 2
