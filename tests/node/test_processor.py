"""Unit tests for the processor runtime."""

import random

import pytest

from repro.net import CommGraph, FixedLatency, Network
from repro.node import NoResponse, Processor
from repro.sim import Simulator


def build(n=3):
    sim = Simulator()
    graph = CommGraph(range(1, n + 1))
    net = Network(sim, graph, FixedLatency(1.0), random.Random(1))
    procs = {p: Processor(p, sim, net) for p in graph.nodes}
    return sim, graph, net, procs


def test_send_and_receive_by_kind():
    sim, _, _, procs = build()
    got = []

    def listener():
        message = yield procs[2].receive("ping")
        got.append((message.src, message.payload["n"], sim.now))

    sim.process(listener())
    procs[1].send(2, "ping", {"n": 7})
    sim.run()
    assert got == [(1, 7, 1.0)]


def test_mailboxes_separate_kinds():
    sim, _, _, procs = build()
    got = []

    def listener():
        message = yield procs[2].receive("beta")
        got.append(message.kind)

    sim.process(listener())
    procs[1].send(2, "alpha")
    procs[1].send(2, "beta")
    sim.run()
    assert got == ["beta"]
    assert [m.kind for m in procs[2].mailbox("alpha").peek_all()] == ["alpha"]


def test_rpc_roundtrip():
    sim, _, _, procs = build()

    def server():
        while True:
            request = yield procs[2].receive("echo")
            procs[2].reply(request, "echo-reply", {"text": request.payload["text"]})

    def client():
        response = yield from procs[1].rpc(2, "echo", {"text": "hi"}, timeout=5.0)
        return (response.payload["text"], sim.now)

    sim.process(server())
    proc = sim.process(client())
    sim.run()
    assert proc.value == ("hi", 2.0)  # 1.0 each way


def test_rpc_no_response_raises():
    sim, graph, _, procs = build()
    graph.cut_link(1, 2)

    def client():
        try:
            yield from procs[1].rpc(2, "echo", {}, timeout=3.0)
        except NoResponse as exc:
            return (exc.dst, sim.now)

    proc = sim.process(client())
    sim.run()
    assert proc.value == (2, 3.0)


def test_late_reply_after_timeout_is_dropped():
    sim, _, _, procs = build()

    def slow_server():
        request = yield procs[2].receive("ask")
        yield sim.timeout(10.0)  # reply far too late
        procs[2].reply(request, "ask-reply")

    outcomes = []

    def client():
        try:
            yield from procs[1].rpc(2, "ask", {}, timeout=2.0)
        except NoResponse:
            outcomes.append("timeout")
        # The late reply must not land in any mailbox afterwards.

    sim.process(slow_server())
    sim.process(client())
    sim.run()
    assert outcomes == ["timeout"]
    assert len(procs[1].mailbox("ask-reply")) == 0


def test_crash_kills_tasks_and_clears_mailboxes():
    sim, graph, _, procs = build()
    ticks = []

    def ticker():
        while True:
            yield sim.timeout(1.0)
            ticks.append(sim.now)

    procs[2].add_task("ticker", ticker)
    procs[2].start()
    procs[1].send(2, "ping")
    sim.run(until=3.5)
    graph.crash_node(2)
    procs[2].crash()
    count_at_crash = len(ticks)
    sim.run(until=10.0)
    assert len(ticks) == count_at_crash
    assert len(procs[2].mailbox("ping")) == 0


def test_recover_respawns_tasks_and_runs_hooks():
    sim, graph, _, procs = build()
    ticks = []
    hooks = []

    def ticker():
        while True:
            yield sim.timeout(1.0)
            ticks.append(sim.now)

    procs[2].add_task("ticker", ticker)
    procs[2].on_crash(lambda: hooks.append("crash"))
    procs[2].on_recover(lambda: hooks.append("recover"))
    procs[2].start()
    sim.run(until=2.5)
    procs[2].crash()
    sim.run(until=5.0)
    procs[2].recover()
    sim.run(until=7.5)
    assert hooks == ["crash", "recover"]
    assert any(t > 5.0 for t in ticks)
    assert all(not (2.5 < t <= 5.0) for t in ticks)


def test_crashed_processor_drops_deliveries():
    sim, graph, _, procs = build()
    procs[2].crash()
    procs[1].send(2, "ping")
    sim.run()
    assert len(procs[2].mailbox("ping")) == 0


def test_messages_to_self_are_delivered():
    sim, _, _, procs = build()
    got = []

    def listener():
        message = yield procs[1].receive("note")
        got.append(message.src)

    sim.process(listener())
    procs[1].send(1, "note")
    sim.run()
    assert got == [1]


def test_duplicate_task_name_rejected():
    sim, _, _, procs = build()
    procs[1].add_task("t", lambda: iter(()))
    with pytest.raises(KeyError):
        procs[1].add_task("t", lambda: iter(()))


def test_store_survives_crash():
    sim, _, _, procs = build()
    procs[1].store.place("x", initial=42, date=(1, 1))
    procs[1].crash()
    procs[1].recover()
    assert procs[1].store.read("x") == (42, (1, 1))
