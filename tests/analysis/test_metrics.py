"""Unit tests for history measurement utilities."""

from repro.analysis.history import INITIAL_VERSION, History
from repro.analysis.metrics import (
    abort_stats,
    convergence_time,
    membership_timeline,
    operation_latencies,
    partition_lifetimes,
    stale_reads,
)


def test_convergence_time_to_highest_partition():
    history = History()
    history.record_join(time=10.0, pid=1, vpid=(2, 1), view={1, 2})
    history.record_join(time=12.0, pid=2, vpid=(2, 1), view={1, 2})
    history.record_join(time=15.0, pid=1, vpid=(3, 1), view={1, 2})
    history.record_join(time=18.0, pid=2, vpid=(3, 1), view={1, 2})
    assert convergence_time(history, after=10.0) == 8.0
    assert convergence_time(history, after=16.0) == 2.0
    assert convergence_time(history, after=100.0) is None


def test_membership_timeline_sorted():
    history = History()
    history.record_join(time=5.0, pid=2, vpid="v1", view={2})
    history.record_depart(time=3.0, pid=1, vpid="v0")
    timeline = membership_timeline(history)
    assert timeline[0] == (3.0, 1, "depart", "v0")
    assert timeline[1] == (5.0, 2, "join", "v1")


def test_partition_lifetimes():
    history = History()
    history.record_join(time=1.0, pid=1, vpid="v1", view={1, 2})
    history.record_join(time=2.0, pid=2, vpid="v1", view={1, 2})
    history.record_depart(time=9.0, pid=1, vpid="v1")
    lifetimes = partition_lifetimes(history)
    assert lifetimes["v1"] == (1.0, 9.0)


def _committed(history, txn, begin, end, ops):
    history.begin_txn(txn, origin=1, time=begin)
    for time, kind, obj, version in ops:
        history.record_logical(time=time, txn=txn, kind=kind, obj=obj,
                               value=None, version=version)
    history.commit_txn(txn, time=end)


def test_stale_reads_detected():
    history = History()
    # writer commits v1 at t=10
    _committed(history, "w1", 0.0, 10.0,
               [(5.0, "w", "x", ("w1", 1))])
    # a reader at t=20 still returns the INITIAL version: stale by 10
    _committed(history, "r1", 18.0, 22.0,
               [(20.0, "r", "x", INITIAL_VERSION)])
    # a reader returning the current version is not stale
    _committed(history, "r2", 24.0, 26.0,
               [(25.0, "r", "x", ("w1", 1))])
    found = stale_reads(history)
    assert len(found) == 1
    stale = found[0]
    assert stale.txn == "r1" and stale.obj == "x"
    assert stale.staleness == 10.0


def test_stale_reads_ignores_reads_before_the_write():
    history = History()
    _committed(history, "r1", 0.0, 2.0,
               [(1.0, "r", "x", INITIAL_VERSION)])
    _committed(history, "w1", 3.0, 5.0,
               [(4.0, "w", "x", ("w1", 1))])
    assert stale_reads(history) == []


def test_abort_stats():
    history = History()
    history.begin_txn("t1", origin=1, time=0.0)
    history.commit_txn("t1", time=1.0)
    for index, reason in enumerate(["lock-timeout", "lock-timeout",
                                    "inaccessible"]):
        txn = ("a", index)
        history.begin_txn(txn, origin=1, time=0.0)
        history.abort_txn(txn, time=1.0, reason=reason)
    stats = abort_stats(history)
    assert stats["aborted"] == 3 and stats["committed"] == 1
    assert stats["abort_rate"] == 0.75
    assert stats["reasons"]["lock-timeout"] == 2


def test_operation_latencies_split_by_kind():
    history = History()
    _committed(history, "ro", 0.0, 4.0, [(1.0, "r", "x", INITIAL_VERSION)])
    _committed(history, "up", 0.0, 9.0, [(1.0, "w", "x", ("up", 1))])
    latencies = operation_latencies(history)
    assert latencies["read-only"] == [4.0]
    assert latencies["update"] == [9.0]
