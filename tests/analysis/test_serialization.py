"""Unit tests for the CP-serializability checker."""

from repro.analysis.history import History
from repro.analysis.serialization import (
    conflict_graph,
    find_cycle,
    is_cp_serializable,
    serial_order,
)


def _committed_txn(history, txn, ops):
    """ops: list of (time, kind, obj, copy_pid)."""
    history.begin_txn(txn, origin=1, time=min(t for t, _, _, _ in ops))
    for time, kind, obj, copy_pid in ops:
        history.record_physical(time=time, txn=txn, kind=kind, obj=obj,
                                copy_pid=copy_pid, value=None, version=None,
                                vpid=None)
    history.commit_txn(txn, time=max(t for t, _, _, _ in ops) + 1)


def test_empty_history_is_serializable():
    assert is_cp_serializable(History())
    assert serial_order(History()) == []


def test_sequential_conflicting_txns_are_serializable():
    history = History()
    _committed_txn(history, "t1", [(1.0, "w", "x", 1)])
    _committed_txn(history, "t2", [(5.0, "r", "x", 1)])
    assert is_cp_serializable(history)
    assert serial_order(history) == ["t1", "t2"]


def test_classic_rw_cycle_detected():
    history = History()
    # t1 reads x then writes y; t2 reads y (before t1's write) then
    # writes x (after t1's read): conflict edges t1->t2 and t2->t1.
    history.begin_txn("t1", origin=1, time=0.0)
    history.begin_txn("t2", origin=2, time=0.0)
    history.record_physical(time=1.0, txn="t1", kind="r", obj="x",
                            copy_pid=1, value=None, version=None, vpid=None)
    history.record_physical(time=2.0, txn="t2", kind="r", obj="y",
                            copy_pid=1, value=None, version=None, vpid=None)
    history.record_physical(time=3.0, txn="t1", kind="w", obj="y",
                            copy_pid=1, value=None, version=None, vpid=None)
    history.record_physical(time=4.0, txn="t2", kind="w", obj="x",
                            copy_pid=1, value=None, version=None, vpid=None)
    history.commit_txn("t1", time=5.0)
    history.commit_txn("t2", time=5.0)
    assert not is_cp_serializable(history)
    cycle = find_cycle(conflict_graph(history))
    assert cycle is not None
    assert set(cycle) >= {"t1", "t2"}


def test_aborted_txns_are_excluded():
    history = History()
    history.begin_txn("t1", origin=1, time=0.0)
    history.begin_txn("t2", origin=2, time=0.0)
    history.record_physical(time=1.0, txn="t1", kind="r", obj="x",
                            copy_pid=1, value=None, version=None, vpid=None)
    history.record_physical(time=2.0, txn="t2", kind="r", obj="y",
                            copy_pid=1, value=None, version=None, vpid=None)
    history.record_physical(time=3.0, txn="t1", kind="w", obj="y",
                            copy_pid=1, value=None, version=None, vpid=None)
    history.record_physical(time=4.0, txn="t2", kind="w", obj="x",
                            copy_pid=1, value=None, version=None, vpid=None)
    history.commit_txn("t1", time=5.0)
    history.abort_txn("t2", time=5.0)
    assert is_cp_serializable(history)


def test_reads_do_not_conflict():
    history = History()
    _committed_txn(history, "t1", [(1.0, "r", "x", 1)])
    _committed_txn(history, "t2", [(2.0, "r", "x", 1)])
    graph = conflict_graph(history)
    assert graph == {"t1": set(), "t2": set()}


def test_different_copies_do_not_conflict():
    history = History()
    _committed_txn(history, "t1", [(1.0, "w", "x", 1)])
    _committed_txn(history, "t2", [(2.0, "w", "x", 2)])
    graph = conflict_graph(history)
    assert graph["t1"] == set() and graph["t2"] == set()


def test_serial_order_respects_edges():
    history = History()
    _committed_txn(history, "t3", [(5.0, "w", "x", 1)])
    _committed_txn(history, "t1", [(1.0, "w", "x", 1)])
    _committed_txn(history, "t2", [(3.0, "r", "x", 1)])
    order = serial_order(history)
    assert order.index("t1") < order.index("t2") < order.index("t3")


def test_serial_order_raises_on_cycle():
    import pytest

    history = History()
    history.begin_txn("t1", origin=1, time=0.0)
    history.begin_txn("t2", origin=2, time=0.0)
    for time, txn, obj in [(1.0, "t1", "x"), (2.0, "t2", "x"),
                           (3.0, "t2", "y"), (4.0, "t1", "y")]:
        history.record_physical(time=time, txn=txn, kind="w", obj=obj,
                                copy_pid=1, value=None, version=None,
                                vpid=None)
    history.commit_txn("t1", time=5.0)
    history.commit_txn("t2", time=5.0)
    with pytest.raises(ValueError):
        serial_order(history)
