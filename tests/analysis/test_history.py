"""Unit tests for the history recorder."""

import pytest

from repro.analysis.history import INITIAL_VERSION, History


@pytest.fixture()
def history():
    return History()


def test_txn_lifecycle(history):
    history.begin_txn("t1", origin=1, time=0.0)
    history.commit_txn("t1", time=5.0)
    record = history.txns["t1"]
    assert record.status == "committed"
    assert record.end_time == 5.0
    assert history.committed()[0].txn == "t1"


def test_abort_records_reason(history):
    history.begin_txn("t1", origin=1, time=0.0)
    history.abort_txn("t1", time=3.0, reason="lock-timeout")
    assert history.aborted()[0].abort_reason == "lock-timeout"
    assert history.committed() == []


def test_double_begin_rejected(history):
    history.begin_txn("t1", origin=1, time=0.0)
    with pytest.raises(KeyError):
        history.begin_txn("t1", origin=2, time=1.0)


def test_finish_twice_rejected(history):
    history.begin_txn("t1", origin=1, time=0.0)
    history.commit_txn("t1", time=1.0)
    with pytest.raises(ValueError):
        history.abort_txn("t1", time=2.0)


def test_unknown_txn_rejected(history):
    with pytest.raises(KeyError):
        history.commit_txn("ghost", time=1.0)


def test_physical_ops_attach_to_txn(history):
    history.begin_txn("t1", origin=1, time=0.0)
    history.record_physical(time=1.0, txn="t1", kind="r", obj="x",
                            copy_pid=2, value=0, version=INITIAL_VERSION,
                            vpid="v1")
    history.record_physical(time=2.0, txn="t1", kind="w", obj="x",
                            copy_pid=2, value=1, version=("t1", 1),
                            vpid="v1")
    record = history.txns["t1"]
    assert len(record.physical_ops) == 2
    assert record.vpids == {"v1"}
    assert len(history.ops_on_copy("x", 2)) == 2
    assert history.ops_on_copy("x", 3) == []


def test_logical_ops_and_read_write_sets(history):
    history.begin_txn("t1", origin=1, time=0.0)
    history.record_logical(time=1.0, txn="t1", kind="r", obj="x",
                           value=0, version=INITIAL_VERSION)
    history.record_logical(time=2.0, txn="t1", kind="w", obj="y",
                           value=9, version=("t1", 1))
    record = history.txns["t1"]
    assert record.read_set == {"x"}
    assert record.write_set == {"y"}


def test_invalid_kind_rejected(history):
    history.begin_txn("t1", origin=1, time=0.0)
    with pytest.raises(ValueError):
        history.record_physical(time=1.0, txn="t1", kind="x", obj="x",
                                copy_pid=1, value=0, version=None, vpid=None)
    with pytest.raises(ValueError):
        history.record_logical(time=1.0, txn="t1", kind="q", obj="x",
                               value=0, version=None)


def test_view_of_is_unique_per_partition(history):
    history.record_join(time=1.0, pid=1, vpid="v1", view={1, 2})
    history.record_join(time=2.0, pid=2, vpid="v1", view={1, 2})
    assert history.view_of("v1") == frozenset({1, 2})
    assert history.members_of("v1") == {1, 2}
    with pytest.raises(KeyError):
        history.view_of("ghost")


def test_view_of_detects_s1_violation(history):
    history.record_join(time=1.0, pid=1, vpid="v1", view={1})
    history.record_join(time=2.0, pid=2, vpid="v1", view={1, 2})
    with pytest.raises(AssertionError):
        history.view_of("v1")


def test_conflicts_with():
    from repro.analysis.history import PhysicalOp
    read = PhysicalOp(1.0, "t1", "r", "x", 2, 0, None, None)
    write = PhysicalOp(2.0, "t2", "w", "x", 2, 1, None, None)
    other_copy = PhysicalOp(2.0, "t2", "w", "x", 3, 1, None, None)
    same_txn = PhysicalOp(2.0, "t1", "w", "x", 2, 1, None, None)
    read2 = PhysicalOp(3.0, "t2", "r", "x", 2, 0, None, None)
    assert read.conflicts_with(write)
    assert not read.conflicts_with(other_copy)
    assert not read.conflicts_with(same_txn)
    assert not read.conflicts_with(read2)
