"""Unit tests for the one-copy serializability checker."""

import pytest

from repro.analysis.history import INITIAL_VERSION, History
from repro.analysis.one_copy import (
    InconclusiveCheck,
    check_one_copy,
    is_one_copy_serializable,
)


def build(txns):
    """txns: list of (txn_id, [(kind, obj, version)]) committed in order."""
    history = History()
    time = 0.0
    for txn, ops in txns:
        history.begin_txn(txn, origin=1, time=time)
        for kind, obj, version in ops:
            time += 1.0
            history.record_logical(time=time, txn=txn, kind=kind, obj=obj,
                                   value=None, version=version)
        time += 1.0
        history.commit_txn(txn, time=time)
    return history


def test_empty_history_is_1sr():
    result = check_one_copy(History())
    assert result.ok is True
    assert result.witness == []


def test_simple_chain_is_1sr():
    v1 = ("t1", 1)
    history = build([
        ("t1", [("r", "x", INITIAL_VERSION), ("w", "x", v1)]),
        ("t2", [("r", "x", v1)]),
    ])
    result = check_one_copy(history)
    assert result.ok is True
    assert result.witness.index("t1") < result.witness.index("t2")


def test_lost_update_is_not_1sr():
    """Example 1's shape: both increments read the initial version."""
    history = build([
        ("t1", [("r", "x", INITIAL_VERSION), ("w", "x", ("t1", 1))]),
        ("t2", [("r", "x", INITIAL_VERSION), ("w", "x", ("t2", 1))]),
    ])
    result = check_one_copy(history)
    assert result.ok is False
    assert result.violation


def test_reads_from_cycle_is_not_1sr():
    """Example 2's shape: T_A→T_B→T_C→T_D→T_A via initial reads."""
    history = build([
        ("tA", [("r", "b", INITIAL_VERSION), ("w", "a", ("tA", 1))]),
        ("tB", [("r", "c", INITIAL_VERSION), ("w", "b", ("tB", 1))]),
        ("tC", [("r", "d", INITIAL_VERSION), ("w", "c", ("tC", 1))]),
        ("tD", [("r", "a", INITIAL_VERSION), ("w", "d", ("tD", 1))]),
    ])
    assert check_one_copy(history).ok is False


def test_out_of_commit_order_witness_found():
    """1SR can hold even when no real-time order works: stale reads in a
    minority partition serialize the reader *before* the writer."""
    v1 = ("t1", 1)
    history = build([
        ("t1", [("w", "x", v1)]),
        # t2 commits later in real time but read the pre-t1 value:
        ("t2", [("r", "x", INITIAL_VERSION)]),
    ])
    result = check_one_copy(history)
    assert result.ok is True
    assert result.witness.index("t2") < result.witness.index("t1")


def test_read_own_write():
    history = build([
        ("t1", [("w", "x", ("t1", 1)), ("r", "x", ("t1", 1))]),
    ])
    assert check_one_copy(history).ok is True


def test_read_own_write_then_overwrite():
    history = build([
        ("t1", [("w", "x", ("t1", 1)), ("r", "x", ("t1", 1)),
                ("w", "x", ("t1", 2))]),
        ("t2", [("r", "x", ("t1", 2))]),
    ])
    assert check_one_copy(history).ok is True


def test_dirty_read_from_aborted_txn_rejected():
    history = History()
    history.begin_txn("t1", origin=1, time=0.0)
    history.record_logical(time=1.0, txn="t1", kind="w", obj="x",
                           value=1, version=("t1", 1))
    history.abort_txn("t1", time=2.0)
    history.begin_txn("t2", origin=1, time=3.0)
    history.record_logical(time=4.0, txn="t2", kind="r", obj="x",
                           value=1, version=("t1", 1))
    history.commit_txn("t2", time=5.0)
    result = check_one_copy(history)
    assert result.ok is False
    assert "non-committed" in result.violation


def test_aborted_txns_ignored():
    history = History()
    history.begin_txn("t1", origin=1, time=0.0)
    history.record_logical(time=1.0, txn="t1", kind="w", obj="x",
                           value=1, version=("t1", 1))
    history.abort_txn("t1", time=2.0)
    assert check_one_copy(history).ok is True


def test_interleaved_objects_need_search():
    """A case where commit order fails but a reordering exists."""
    history = build([
        ("t1", [("w", "x", ("t1", 1))]),
        ("t2", [("w", "y", ("t2", 1))]),
        ("t3", [("r", "x", INITIAL_VERSION), ("r", "y", ("t2", 1))]),
    ])
    result = check_one_copy(history)
    assert result.ok is True
    witness = result.witness
    assert witness.index("t3") < witness.index("t1")
    assert witness.index("t2") < witness.index("t3")


def test_inconclusive_raises_in_boolean_form():
    # 20 pairwise-antagonistic transactions exceed the exact budget when
    # every candidate order fails.
    txns = []
    for i in range(20):
        txns.append((f"t{i}", [("r", "x", INITIAL_VERSION),
                               ("w", "x", (f"t{i}", 1))]))
    history = build(txns)
    result = check_one_copy(history, exact_limit=5)
    assert result.ok is None
    with pytest.raises(InconclusiveCheck):
        is_one_copy_serializable(history, exact_limit=5)


def test_exact_search_definitively_rejects():
    history = build([
        ("t1", [("r", "x", INITIAL_VERSION), ("w", "x", ("t1", 1))]),
        ("t2", [("r", "x", INITIAL_VERSION), ("w", "x", ("t2", 1))]),
    ])
    assert is_one_copy_serializable(history) is False


def test_boolean_form_true():
    history = build([("t1", [("w", "x", ("t1", 1))])])
    assert is_one_copy_serializable(history) is True
