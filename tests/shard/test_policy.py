"""Unit tests for the placement policies."""

import pytest

from repro.shard.policy import (
    POLICIES,
    HashRingPolicy,
    LocalityPolicy,
    RandomKPolicy,
    WeightedHomePolicy,
    make_policy,
)

OBJECTS = [f"o{i}" for i in range(200)]
PIDS = list(range(1, 21))


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_assign_is_deterministic(name):
    a = make_policy(name, degree=3, seed=5).assign(OBJECTS, PIDS)
    b = make_policy(name, degree=3, seed=5).assign(OBJECTS, PIDS)
    assert a == b


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_degree_respected(name):
    assignments = make_policy(name, degree=3).assign(OBJECTS, PIDS)
    assert set(assignments) == set(OBJECTS)
    for obj, weights in assignments.items():
        assert len(weights) == 3, obj
        assert set(weights) <= set(PIDS)
        assert all(w >= 1 for w in weights.values())


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_every_processor_gets_some_primaries(name):
    """No policy may starve a processor: with 10x more objects than
    nodes, every node should be the primary (first key) of a few."""
    assignments = make_policy(name, degree=3).assign(OBJECTS, PIDS)
    primaries = {next(iter(weights)) for weights in assignments.values()}
    assert primaries == set(PIDS)


def test_validation_errors():
    with pytest.raises(ValueError, match="degree"):
        make_policy("hash-ring", degree=0)
    with pytest.raises(ValueError, match="empty cluster"):
        make_policy("hash-ring").assign(OBJECTS, [])
    with pytest.raises(ValueError, match="exceeds"):
        make_policy("hash-ring", degree=5).assign(OBJECTS, [1, 2, 3])
    with pytest.raises(KeyError, match="unknown placement policy"):
        make_policy("round-robin")
    with pytest.raises(ValueError, match="vnodes"):
        HashRingPolicy(vnodes=0)
    with pytest.raises(ValueError, match="zone_size"):
        LocalityPolicy(zone_size=0)


def test_hash_ring_elasticity():
    """Adding one processor must move only a fraction of the objects —
    the consistent-hashing argument for cheap cluster growth."""
    before = HashRingPolicy(degree=3).assign(OBJECTS, PIDS)
    after = HashRingPolicy(degree=3).assign(OBJECTS, PIDS + [21])
    moved = sum(before[obj] != after[obj] for obj in OBJECTS)
    assert 0 < moved < 0.5 * len(OBJECTS)


def test_random_k_is_insensitive_to_declaration_order():
    policy = RandomKPolicy(degree=3, seed=9)
    forward = policy.assign(OBJECTS, PIDS)
    backward = RandomKPolicy(degree=3, seed=9).assign(OBJECTS[::-1], PIDS)
    assert forward == backward


def test_random_k_varies_with_seed():
    one = RandomKPolicy(degree=3, seed=1).assign(OBJECTS, PIDS)
    two = RandomKPolicy(degree=3, seed=2).assign(OBJECTS, PIDS)
    assert one != two


def test_weighted_home_reproduces_example2():
    """With 4 processors and degree 2 the policy is exactly the paper's
    a²b / b²c / c²d / d²a placement."""
    assignments = WeightedHomePolicy(degree=2).assign(
        ["a", "b", "c", "d"], [1, 2, 3, 4])
    assert assignments == {
        "a": {1: 2, 2: 1},
        "b": {2: 2, 3: 1},
        "c": {3: 2, 4: 1},
        "d": {4: 2, 1: 1},
    }


def test_weighted_home_majority_shape():
    """Home copy alone outweighs all light copies together."""
    assignments = WeightedHomePolicy(degree=4).assign(OBJECTS, PIDS)
    for weights in assignments.values():
        home = next(iter(weights))
        total = sum(weights.values())
        assert total == 2 * 4 - 1
        assert 2 * weights[home] > total
        assert 2 * (total - weights[home]) < total


def test_weighted_home_primary_first():
    assignments = WeightedHomePolicy(degree=3).assign(OBJECTS, PIDS)
    for weights in assignments.values():
        first = next(iter(weights))
        assert weights[first] == 3


def test_locality_fills_home_zone_first():
    policy = LocalityPolicy(degree=3, zone_size=5)
    assignments = policy.assign(OBJECTS, PIDS)
    for index, obj in enumerate(OBJECTS):
        home = PIDS[index % len(PIDS)]
        holders = set(assignments[obj])
        assert home in holders
        zone_start = ((home - 1) // 5) * 5 + 1
        zone = set(range(zone_start, zone_start + 5))
        assert holders <= zone  # degree 3 fits inside a 5-wide zone


def test_locality_spills_past_small_zone():
    policy = LocalityPolicy(degree=4, zone_size=2)
    assignments = policy.assign(["x"], [1, 2, 3, 4, 5])
    assert len(assignments["x"]) == 4


def test_make_policy_passes_kwargs():
    policy = make_policy("hash-ring", degree=2, vnodes=8)
    assert isinstance(policy, HashRingPolicy) and policy.vnodes == 8
