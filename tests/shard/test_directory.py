"""Unit tests for the directory layer."""

import pytest

from repro.core.views import CopyPlacement
from repro.shard.directory import (
    CachedDirectory,
    LocalDirectory,
    make_directory,
)


@pytest.fixture()
def placement():
    p = CopyPlacement()
    p.place("x", holders=[1, 2, 3])
    p.place("a", holders={1: 2, 4: 1})
    p.place("solo", holders=[2])
    return p


def test_local_directory_matches_placement(placement):
    directory = LocalDirectory(placement)
    for obj in ("x", "a", "solo"):
        assert directory.copies(obj) == placement.copies(obj)
        for view in ({1}, {1, 2}, {1, 2, 3, 4}):
            assert directory.accessible(obj, view) == \
                placement.accessible(obj, view)


def test_local_directory_read_candidates_order(placement):
    directory = LocalDirectory(placement)
    distance = {1: 0.0, 2: 0.4, 3: 0.2}.__getitem__
    assert directory.read_candidates("x", {1, 2, 3}, distance) == \
        placement.holders_by_distance("x", {1, 2, 3}, distance)


def test_write_targets_are_view_restricted_and_sorted(placement):
    directory = LocalDirectory(placement)
    assert directory.write_targets("x", {3, 1, 9}) == [1, 3]
    assert directory.write_targets("solo", {1, 3}) == []


def test_local_directory_always_hits(placement):
    directory = LocalDirectory(placement)
    directory.entry("x")
    directory.read_candidates("x", {1, 2}, lambda _p: 0.0)
    assert directory.stats.lookups == 2
    assert directory.stats.hits == 2
    assert directory.stats.misses == directory.stats.evictions == 0


def test_cached_directory_counts_misses_hits_and_evictions(placement):
    directory = CachedDirectory(placement, capacity=2)
    directory.entry("x")          # miss
    directory.entry("x")          # hit
    directory.entry("a")          # miss
    directory.entry("solo")       # miss -> evicts x (LRU)
    directory.entry("x")          # miss again
    stats = directory.stats
    assert stats.lookups == 5
    assert stats.hits == 1
    assert stats.misses == 4
    assert stats.evictions == 2


def test_cached_directory_lru_refresh_on_hit(placement):
    directory = CachedDirectory(placement, capacity=2)
    directory.entry("x")
    directory.entry("a")
    directory.entry("x")          # refresh: "a" is now the LRU entry
    directory.entry("solo")       # evicts "a", not "x"
    assert directory.stats.evictions == 1
    directory.entry("x")          # still cached
    assert directory.stats.hits == 2


def test_cached_directory_serves_correct_entries(placement):
    directory = CachedDirectory(placement, capacity=1)
    for obj in ("x", "a", "solo", "a", "x"):
        assert dict(directory.entry(obj)) == dict(placement.weights(obj))
        for view in ({1}, {1, 2, 3, 4}):
            assert directory.accessible(obj, view) == \
                placement.accessible(obj, view)


def test_cached_directory_capacity_validation(placement):
    with pytest.raises(ValueError, match="capacity"):
        CachedDirectory(placement, capacity=0)


def test_unknown_object_propagates(placement):
    for directory in (LocalDirectory(placement),
                      CachedDirectory(placement)):
        with pytest.raises(KeyError, match="ghost"):
            directory.entry("ghost")


def test_make_directory(placement):
    local = make_directory("local")(1, placement)
    assert isinstance(local, LocalDirectory)
    cached = make_directory("cached", 7)(2, placement)
    assert isinstance(cached, CachedDirectory) and cached.capacity == 7
    with pytest.raises(KeyError, match="unknown directory"):
        make_directory("global")


# -- placement epochs & invalidation (online resharding) ---------------------


def test_local_directory_route_epoch_is_live(placement):
    directory = LocalDirectory(placement)
    assert directory.route_epoch("x") == 0
    placement.begin_migration("x", [4])
    placement.commit_migration("x")
    assert directory.route_epoch("x") == 1
    assert directory.invalidate("x") is False    # nothing cached, no-op


def test_cached_directory_epoch_invalidates_stale_entry(placement):
    directory = CachedDirectory(placement, capacity=4)
    assert dict(directory.entry("x")) == {1: 1, 2: 1, 3: 1}
    assert directory.route_epoch("x") == 0

    placement.begin_migration("x", [4])
    placement.commit_migration("x")
    # the cached route is now a stale epoch: reported as-is (the access
    # path stamps it so servers can reject), refetched on next lookup
    assert directory.route_epoch("x") == 0
    assert dict(directory.entry("x")) == {4: 1}
    assert directory.route_epoch("x") == 1
    assert directory.stats.invalidations == 1
    assert directory.stats.misses == 2


def test_cached_directory_explicit_invalidate(placement):
    directory = CachedDirectory(placement, capacity=4)
    directory.entry("x")
    assert directory.invalidate("x") is True
    assert directory.invalidate("x") is False    # already gone
    assert directory.stats.invalidations == 1
    directory.entry("x")
    assert directory.stats.misses == 2


def test_cached_directory_uncached_route_epoch_is_live(placement):
    directory = CachedDirectory(placement, capacity=4)
    placement.begin_migration("x", [4])
    placement.commit_migration("x")
    assert directory.route_epoch("x") == 1
