"""Integration: sharded topologies end-to-end through the cluster,
the directory, and the experiment runner."""

import dataclasses

import pytest

from repro import Cluster
from repro.shard import HomeFirstPools, object_names, primary_of
from repro.shard.policy import make_policy
from repro.workload.generator import WorkloadSpec
from repro.workload.runner import ExperimentSpec, run_experiment


def test_cluster_shard_places_every_object():
    cluster = Cluster(processors=8, seed=1)
    cluster.shard("hash-ring", object_names(40), degree=3, initial=0)
    assert len(cluster.placement.objects) == 40
    for obj in cluster.placement.objects:
        holders = cluster.placement.copies(obj)
        assert len(holders) == 3
        for pid in holders:
            value, _date = cluster.processors[pid].store.peek(obj)
            assert value == 0


def test_cluster_place_rejects_non_members():
    cluster = Cluster(processors=3, seed=1)
    with pytest.raises(ValueError, match="not cluster members"):
        cluster.place("x", holders=[1, 2, 9])


def test_cluster_place_many_is_all_or_nothing():
    cluster = Cluster(processors=3, seed=1)
    with pytest.raises(ValueError, match="invalid placement"):
        cluster.place_many({"good": [1, 2], "bad": [99]})
    assert cluster.placement.objects == set()  # nothing half-installed


def test_cross_shard_transaction_commits():
    """A transaction spanning two disjoint shards routes through the
    directory and commits via 2PC across both holder sets."""
    cluster = Cluster(processors=6, seed=2)
    cluster.place_many({"left": [1, 2], "right": [4, 5]}, initial=0)
    cluster.start()

    def body(txn):
        value = yield from txn.read("left")
        yield from txn.write("right", value + 1)
        return value

    outcome = cluster.submit(1, body)
    cluster.run(until=80.0)
    committed, value = outcome.value
    assert committed and value == 0
    for pid in (4, 5):
        stored, _date = cluster.processors[pid].store.peek("right")
        assert stored == 1
    assert cluster.check_one_copy_serializable()
    routed = sum(p.transport.routed_fanouts
                 for p in cluster.processors.values())
    assert routed >= 1  # the write went through the directory


def _spec(**overrides):
    base = dict(
        processors=8, objects=64, copies_per_object=3, seed=5,
        duration=200.0, clients=1, txns_per_client=5, check=True,
        audit=True, placement="hash-ring",
        workload=WorkloadSpec(zipf_s=1.1, ops_per_txn=2),
        objects_for=HomeFirstPools("hash-ring", 8, 64, 3, seed=5),
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def test_sharded_experiment_is_clean():
    result = run_experiment(_spec())
    assert result.committed == 40
    assert result.one_copy_ok is True
    assert result.audit_violations == ()
    snapshot = result.registry.snapshot()
    assert snapshot["counters"]["directory.lookups"] > 0
    assert snapshot["counters"]["transport.routed_fanouts"] > 0


def test_cached_directory_is_timing_transparent():
    """A bounded directory cache must only change the lookup *counters*,
    never the simulated execution: misses consult the authority at zero
    model time, so the run is event-for-event identical."""
    local = run_experiment(_spec(directory=None))
    cached = run_experiment(_spec(directory="cached",
                                  directory_capacity=8))
    assert cached.committed == local.committed
    assert cached.aborted == local.aborted
    assert cached.network == local.network
    assert cached.events_dispatched == local.events_dispatched
    assert dataclasses.asdict(cached.metrics) == \
        dataclasses.asdict(local.metrics)
    misses = cached.registry.snapshot()["counters"]["directory.misses"]
    assert misses > 0  # the cache was genuinely exercised


def test_home_first_pools_orders_home_objects_first():
    pools = HomeFirstPools("weighted-home", processors=5, objects=50,
                           degree=3, seed=0)
    names = object_names(50)
    assignments = make_policy("weighted-home", degree=3).assign(
        names, [1, 2, 3, 4, 5])
    for pid in range(1, 6):
        pool = pools(pid, client=0)
        assert sorted(pool) == sorted(names)  # full keyspace, reordered
        home_count = sum(primary_of(assignments[obj]) == pid
                         for obj in names)
        assert all(primary_of(assignments[obj]) == pid
                   for obj in pool[:home_count])


def test_home_first_pools_survives_pickling():
    import pickle

    pools = HomeFirstPools("hash-ring", 4, 20, 2, seed=3)
    clone = pickle.loads(pickle.dumps(pools))
    assert clone(2, 0) == pools(2, 0)
