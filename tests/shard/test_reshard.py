"""Online resharding: the migration engine, end to end.

Unit coverage of :class:`ReshardAction` (the picklable schedule record
hunter artifacts carry) and engine validation, plus three small
simulations: a guarded migration that must stay auditor-clean and 1SR,
the deliberately unguarded flip the auditor must convict, and a
coordinator crash mid-migration that must resume from the WAL journal
and finish the campaign.
"""

import pytest

from repro.shard import ReshardAction, ReshardEngine, make_policy
from repro.workload import ExperimentSpec, run_experiment

pytestmark = pytest.mark.filterwarnings("error")


def reshard_spec(seed=3, guarded=True, failures=None, duration=140.0):
    """8 processors, two of them held out and joined live at t=40."""
    return ExperimentSpec(
        protocol="virtual-partitions",
        processors=8, objects=20, copies_per_object=3,
        placement="hash-ring", directory="cached", seed=seed,
        duration=duration, check=True, audit=True,
        failures=failures,
        reshard=(ReshardAction(time=40.0, add=(7, 8), guarded=guarded),),
    )


def engine_stats(result):
    return result.cluster.reshard_engine.stats


# -- schedule records --------------------------------------------------------


def test_reshard_action_dict_round_trip():
    action = ReshardAction(time=40.0, add=(7, 8), guarded=False,
                           coordinator=2)
    assert ReshardAction.from_dict(action.to_dict()) == action


def test_reshard_action_from_dict_defaults():
    # artifacts written by older planners may omit the optional fields
    action = ReshardAction.from_dict({"time": 12.5, "add": [3]})
    assert action == ReshardAction(time=12.5, add=(3,))
    assert action.guarded is True and action.coordinator is None


def test_reshard_requires_placement_policy():
    spec = ExperimentSpec(
        protocol="virtual-partitions", processors=5, objects=5,
        seed=0, duration=50.0,
        reshard=(ReshardAction(time=10.0, add=(5,)),),
    )
    with pytest.raises(ValueError, match="placement policy"):
        run_experiment(spec)


def test_engine_rejects_stranger_and_engulfing_adds():
    from repro.cluster import Cluster
    from repro.shard import object_names

    cluster = Cluster(processors=3)
    policy = make_policy("hash-ring", degree=2, seed=0)
    names = object_names(4)
    with pytest.raises(ValueError, match="not cluster members"):
        ReshardEngine(cluster, policy, names,
                      [ReshardAction(time=1.0, add=(9,))])
    with pytest.raises(ValueError, match="spare capacity"):
        ReshardEngine(cluster, policy, names,
                      [ReshardAction(time=1.0, add=(1, 2, 3))])


# -- simulations -------------------------------------------------------------


def test_guarded_reshard_stays_clean_and_serializable():
    result = run_experiment(reshard_spec())
    assert result.one_copy_ok is True
    assert result.audit_violations == ()
    stats = engine_stats(result)
    assert stats.campaigns_completed == 1
    assert stats.objects_moved > 0
    assert stats.objects_moved + stats.objects_unchanged == 20
    assert stats.flips == stats.objects_moved
    # install/retire traffic matches the movement
    assert result.metrics.reshard_installs > 0
    assert result.metrics.reshard_retires > 0


def test_unguarded_flip_is_convicted_by_the_auditor():
    result = run_experiment(reshard_spec(guarded=False))
    kinds = {v["invariant"] for v in result.audit_violations}
    assert "orphan-copy" in kinds or "placement-epoch" in kinds


def test_coordinator_crash_resumes_from_journal():
    def crash_coordinator(cluster):
        # pid 1 drives the migration (lowest base pid); kill it right
        # after the campaign starts, bring it back much later
        cluster.injector.crash_at(41.0, 1)
        cluster.injector.recover_at(70.0, 1)

    result = run_experiment(reshard_spec(failures=crash_coordinator,
                                         duration=200.0))
    assert result.one_copy_ok is True
    assert result.audit_violations == ()
    stats = engine_stats(result)
    assert stats.resumes >= 1
    assert stats.campaigns_completed == 1
    assert stats.objects_moved + stats.objects_unchanged == 20
