"""Property-based tests for the protocol's algebraic foundations."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.ids import VpId
from repro.core.views import CopyPlacement

vp_ids = st.builds(VpId, st.integers(min_value=0, max_value=50),
                   st.integers(min_value=1, max_value=9))


@given(vp_ids, vp_ids)
def test_vpid_trichotomy(a, b):
    assert (a < b) + (b < a) + (a == b) == 1


@given(vp_ids, vp_ids, vp_ids)
def test_vpid_transitivity(a, b, c):
    if a < b and b < c:
        assert a < c


@given(vp_ids, st.integers(min_value=1, max_value=9))
def test_successor_strictly_increases(vpid, pid):
    successor = vpid.successor(pid)
    assert vpid < successor
    assert successor.pid == pid


@given(st.lists(vp_ids, min_size=1, max_size=20))
def test_max_of_successors_is_unique_winner(ids):
    """Among any set of concurrently minted successors of seen ids,
    exactly one is the maximum — the basis of creation arbitration."""
    minted = [vpid.successor(pid) for vpid in ids
              for pid in range(1, 4)]
    top = max(minted)
    assert sum(1 for m in minted if m == top) == 1 or \
        minted.count(top) == len([m for m in minted if m == top])
    # the winner beats every original id, so monitors accept it
    assert all(top > original for original in ids)


placements = st.dictionaries(
    st.integers(min_value=1, max_value=8),      # pid
    st.integers(min_value=1, max_value=4),      # weight
    min_size=1, max_size=8,
)
views = st.sets(st.integers(min_value=1, max_value=10), max_size=10)


@given(placements, views, views)
def test_two_majorities_always_share_a_copy(weights, view_a, view_b):
    """The heart of rule R1's safety: two views that each hold a
    weighted majority of an object's copies intersect on a holder, so
    two partitions can never both write the object."""
    placement = CopyPlacement()
    placement.place("x", holders=weights)
    if placement.accessible("x", view_a) and placement.accessible("x", view_b):
        holders = placement.copies("x")
        assert (view_a & holders) & (view_b & holders), (
            f"disjoint majorities: {view_a}, {view_b} over {weights}"
        )


@given(placements, views, st.sets(st.integers(min_value=1, max_value=10),
                                  max_size=4))
def test_accessibility_is_monotone_in_the_view(weights, view, extra):
    """Growing a view never loses access (R1 is monotone)."""
    placement = CopyPlacement()
    placement.place("x", holders=weights)
    if placement.accessible("x", view):
        assert placement.accessible("x", view | extra)


@given(placements)
def test_disjoint_views_cannot_both_have_majority(weights):
    """Partition-disjoint views: at most one side is a majority."""
    placement = CopyPlacement()
    placement.place("x", holders=weights)
    holders = sorted(placement.copies("x"))
    for cut in range(len(holders) + 1):
        side_a, side_b = set(holders[:cut]), set(holders[cut:])
        both = (placement.accessible("x", side_a)
                and placement.accessible("x", side_b))
        assert not both


@given(placements, st.integers(min_value=1, max_value=10))
def test_holders_by_distance_is_a_permutation_of_in_view_holders(
        weights, seed):
    import random

    placement = CopyPlacement()
    placement.place("x", holders=weights)
    rng = random.Random(seed)
    view = {p for p in range(1, 11) if rng.random() < 0.7}
    distance = {p: rng.random() for p in range(1, 11)}
    ordered = placement.holders_by_distance("x", view, distance.__getitem__)
    assert set(ordered) == placement.copies("x") & view
    assert all(distance[a] <= distance[b]
               for a, b in zip(ordered, ordered[1:]))
