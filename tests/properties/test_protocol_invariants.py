"""Randomized end-to-end audits: S1, S3 and 1SR under arbitrary failures.

Hypothesis drives random failure schedules and workloads through full
cluster runs and audits the recorded history against the paper's
required properties.  Fewer examples than unit tests (each example is a
whole simulation), but each is an adversarial end-to-end argument.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.analysis.one_copy import check_one_copy


def run_random_cluster(seed: int, n: int, event_count: int,
                       txn_count: int) -> Cluster:
    cluster = Cluster(processors=n, seed=seed)
    for index in range(3):
        holders = [(index + k) % n + 1 for k in range(min(3, n))]
        cluster.place(f"o{index}", holders=holders, initial=0)
    cluster.start()

    rng = random.Random(seed)
    pids = list(cluster.pids)
    down: set[int] = set()
    t = 5.0
    for _ in range(event_count):
        action = rng.randrange(4)
        if action == 0 and len(down) < n - 1:
            victim = rng.choice([p for p in pids if p not in down])
            cluster.injector.crash_at(t, victim)
            down.add(victim)
        elif action == 1 and down:
            lucky = rng.choice(sorted(down))
            cluster.injector.recover_at(t, lucky)
            down.discard(lucky)
        elif action == 2:
            split = rng.randrange(1, n)
            cluster.injector.partition_at(t, [set(pids[:split])])
        else:
            cluster.injector.heal_all_at(t)
        t += rng.uniform(10.0, 40.0)

    def body(txn):
        obj = f"o{rng.randrange(3)}"
        value = yield from txn.read(obj)
        yield from txn.write(obj, (value or 0) + 1)
        return value

    for index in range(txn_count):
        pid = pids[index % len(pids)]
        outcome = cluster.submit(pid, body, retries=3, backoff=7.0)
        cluster.sim.run(until=outcome)
    # let recoveries settle
    for pid in sorted(down):
        cluster.injector.recover_at(cluster.sim.now + 1.0, pid)
    cluster.run(until=cluster.sim.now + 2 * cluster.config.liveness_bound)
    return cluster


# derandomize=True: every run (locally and in CI) audits the same
# deterministic example sequence, so a red build always reproduces.
# Fresh adversarial draws belong in longer offline sweeps — see the
# regression pins in tests/integration/test_in_doubt_regressions.py
# for seeds such sweeps have caught.
@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None, derandomize=True)
def test_s1_s3_and_1sr_hold_under_random_failures(seed):
    cluster = run_random_cluster(seed, n=4, event_count=5, txn_count=5)
    history = cluster.history

    # S1: every partition committed exactly one view.
    for vpid in history.partitions_seen():
        history.view_of(vpid)  # raises AssertionError on S1 violation

    # S3: depart(p, v) happens-before the first join of any w with
    # v ≺ w and p ∈ view(w).
    departs = {}
    for time, pid, vpid in history.departs:
        departs.setdefault((pid, vpid), time)
    joins_by_vp = {}
    for time, pid, vpid, view in history.joins:
        joins_by_vp.setdefault(vpid, []).append((time, pid, view))
    for vpid, joins in joins_by_vp.items():
        first_join = min(time for time, _, _ in joins)
        view = joins[0][2]
        for other in joins_by_vp:
            if other < vpid:
                for pid in history.members_of(other) & set(view):
                    depart_time = departs.get((pid, other))
                    assert depart_time is not None
                    assert depart_time <= first_join

    # The correctness criterion itself.
    verdict = check_one_copy(history, exact_limit=12)
    assert verdict.ok is not False, verdict.violation


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None, derandomize=True)
def test_committed_counter_increments_never_lost(seed):
    """Under random failures, the replicated counter's final value (on
    the surviving majority) equals the number of committed increments —
    no update is ever lost or double-applied."""
    cluster = run_random_cluster(seed, n=4, event_count=4, txn_count=6)
    committed_by_obj = {}
    for record in cluster.history.committed():
        for op in record.logical_ops:
            if op.kind == "w":
                committed_by_obj[op.obj] = committed_by_obj.get(op.obj, 0) + 1
    for obj, count in committed_by_obj.items():
        readable = [
            cluster.processor(p).store.peek(obj)[0]
            for p in cluster.placement.copies(obj)
            if cluster.protocol(p).available(obj, write=False)
            and obj not in cluster.protocol(p).state.locked
        ]
        assert count in readable or not readable, (
            f"{obj}: committed {count} increments, copies read {readable}"
        )
