"""Property-based tests for the one-copy serializability checker.

The checker is itself part of the evidence (every scenario's verdict
flows through it), so it is tested generatively: genuinely serial
executions must always be accepted, lost-update patterns must always be
rejected, and accepted witnesses must replay cleanly.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.history import INITIAL_VERSION, History
from repro.analysis.one_copy import _replay, check_one_copy


def serial_history(seed: int, txn_count: int, obj_count: int) -> History:
    """Build a history by *actually executing* transactions serially
    against a one-copy database — 1SR by construction."""
    rng = random.Random(seed)
    objects = [f"o{i}" for i in range(obj_count)]
    state = {obj: INITIAL_VERSION for obj in objects}
    history = History()
    time = 0.0
    for index in range(txn_count):
        txn = ("t", index)
        history.begin_txn(txn, origin=1, time=time)
        overlay = {}
        for _ in range(rng.randint(1, 4)):
            time += 1.0
            obj = rng.choice(objects)
            if rng.random() < 0.5:
                version = overlay.get(obj, state[obj])
                history.record_logical(time=time, txn=txn, kind="r",
                                       obj=obj, value=None, version=version)
            else:
                version = (txn, len(overlay) + 1)
                overlay[obj] = version
                history.record_logical(time=time, txn=txn, kind="w",
                                       obj=obj, value=None, version=version)
        state.update(overlay)
        time += 1.0
        history.commit_txn(txn, time=time)
    return history


@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_serial_executions_are_always_accepted(seed, txns, objs):
    history = serial_history(seed, txns, objs)
    result = check_one_copy(history)
    assert result.ok is True
    # The witness the checker returns must itself replay cleanly.
    by_txn = {record.txn: record for record in history.committed()}
    assert _replay([by_txn[t] for t in result.witness]) is None


@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=0, max_value=5))
@settings(max_examples=25, deadline=None)
def test_lost_update_rejected_regardless_of_padding(seed, pad):
    """Two increments that both read the initial version are never 1SR,
    no matter how many independent committed transactions surround
    them."""
    history = serial_history(seed, pad, 2)  # pad txns on o0/o1
    time = 1000.0
    for name in ("inc-a", "inc-b"):
        txn = (name, 0)
        history.begin_txn(txn, origin=1, time=time)
        history.record_logical(time=time + 1, txn=txn, kind="r",
                               obj="counter", value=None,
                               version=INITIAL_VERSION)
        history.record_logical(time=time + 2, txn=txn, kind="w",
                               obj="counter", value=None, version=(txn, 1))
        history.commit_txn(txn, time=time + 3)
        time += 10.0
    result = check_one_copy(history)
    assert result.ok is False


@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=2, max_value=6))
@settings(max_examples=25, deadline=None)
def test_reads_from_cycle_rejected_for_any_length(seed, length):
    """Example 2 generalized: a cycle of k transactions each reading the
    initial version of its predecessor's write target is never 1SR."""
    history = History()
    objects = [f"ring{i}" for i in range(length)]
    for index in range(length):
        txn = ("cyc", index)
        history.begin_txn(txn, origin=1, time=float(index))
        history.record_logical(
            time=index + 0.1, txn=txn, kind="r",
            obj=objects[(index + 1) % length], value=None,
            version=INITIAL_VERSION,
        )
        history.record_logical(
            time=index + 0.2, txn=txn, kind="w",
            obj=objects[index], value=None, version=(txn, 1),
        )
        history.commit_txn(txn, time=index + 1.0)
    assert check_one_copy(history).ok is False


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_commit_order_shuffle_of_independent_txns_accepted(seed):
    """Transactions on disjoint objects are 1SR in any commit order."""
    rng = random.Random(seed)
    history = History()
    order = list(range(6))
    rng.shuffle(order)
    for position, index in enumerate(order):
        txn = ("ind", index)
        history.begin_txn(txn, origin=1, time=float(position))
        history.record_logical(time=position + 0.1, txn=txn, kind="r",
                               obj=f"own{index}", value=None,
                               version=INITIAL_VERSION)
        history.record_logical(time=position + 0.2, txn=txn, kind="w",
                               obj=f"own{index}", value=None,
                               version=(txn, 1))
        history.commit_txn(txn, time=position + 1.0)
    assert check_one_copy(history).ok is True
