"""Property: the storage engine is cost-transparent at default policy.

Two pins, mirroring ``test_batching_transparency``:

1. **Trace identity** — with zero storage costs and compaction off, a
   failure-laden seeded run produces a byte-identical trace to the
   pre-engine implementation (the golden hash below was captured
   before the refactor).  Only the event families the engine added
   (``storage.*``, ``msg.late-reply``) are filtered before hashing —
   everything that existed before must be untouched, timestamps
   included.

2. **Outcome preservation** — turning the durability cost model and
   compaction *on* may shift timing (forced writes consume model time,
   compaction forces full-transfer catch-ups) but must not change what
   commits: same committed write tags, 1SR both ways.
"""

import hashlib
import json

from repro.core.config import ProtocolConfig
from repro.workload.generator import WorkloadSpec
from repro.workload.runner import ExperimentSpec, run_experiment

PROCESSORS = 5
CLIENTS = 2
TXNS_PER_CLIENT = 4

#: sha256 of the canonical JSONL trace of `_golden_spec`'s run,
#: captured on the pre-storage-engine implementation (with the
#: stale-view guard of copy_update applied there too — that guard is a
#: protocol fix orthogonal to the storage refactor, and the capture
#: must isolate the refactor)
GOLDEN_TRACE_SHA = \
    "0fc441275982da4c08212b22be04b1d0ea60cb6fe07f876de161d768edcfe82d"
#: event families added by this refactor, filtered before hashing
NEW_EVENT_FAMILIES = ("storage.", "msg.late-reply")

#: sha256 of the full (unfiltered) trace of the batched-transport
#: variant of the same scenario (``batch_window = 0.5``), captured when
#: macro-event delivery landed.  Pins the envelope draining order,
#: inline wakeup sequencing, and per-message trace emission of the
#: batched path — which the default-config pin above never exercises.
BATCHED_GOLDEN_TRACE_SHA = \
    "0ed8b310ff690a52692f2d18b4b3d0919d5851f15e8f59f0ef947d5d0f1d111d"


def _private_objects(pid, client):
    base = ((pid - 1) * CLIENTS + client) * 2
    return [f"o{base}", f"o{base + 1}"]


def _spec(config, failures, read_fraction, trace=False):
    return ExperimentSpec(
        protocol="virtual-partitions", processors=PROCESSORS,
        objects=PROCESSORS * CLIENTS * 2, seed=7,
        duration=200.0, grace=60.0,
        workload=WorkloadSpec(read_fraction=read_fraction, ops_per_txn=2,
                              mean_interarrival=6.0),
        config=config,
        clients=CLIENTS, txns_per_client=TXNS_PER_CLIENT,
        objects_for=_private_objects, failures=failures,
        retries=25, check=True, trace=trace,
    )


def _committed_write_tags(result):
    tags = set()
    for record in result.cluster.history.committed():
        for op in record.logical_ops:
            if op.kind == "w":
                tags.add(str(op.value).split("#")[0])
    return tags


def test_default_policy_is_trace_identical_to_pre_engine_run(tmp_path):
    """Partition + crash + recover + heal, every §6 optimization on."""
    def schedule(cluster):
        cluster.injector.partition_at(30.0, [{1, 2, 3, 4}, {5}])
        cluster.injector.crash_at(45.0, 2)
        cluster.injector.recover_at(70.0, 2)
        cluster.injector.heal_all_at(60.0)

    config = ProtocolConfig(delta=1.0, init_strategy="previous",
                            catchup="log", split_off_fastpath=True,
                            weakened_r4=True)
    result = run_experiment(_spec(config, schedule, read_fraction=0.3,
                                  trace=True))
    path = tmp_path / "trace.jsonl"
    result.cluster.write_trace(path)
    kept = []
    for line in path.read_text().splitlines(keepends=True):
        etype = json.loads(line)["e"]
        if etype.startswith(NEW_EVENT_FAMILIES[0]) \
                or etype == NEW_EVENT_FAMILIES[1]:
            continue
        kept.append(line)
    digest = hashlib.sha256("".join(kept).encode()).hexdigest()
    assert digest == GOLDEN_TRACE_SHA
    assert result.one_copy_ok is True
    # ...and the run exercised the engine: the journal was busy
    assert result.registry.counter("storage.wal_appends").value > 0
    assert result.registry.counter("storage.forced_syncs").value > 0


def test_batched_config_trace_is_pinned(tmp_path):
    """Macro-event delivery is trace-deterministic: a partition + heal
    run on the batched transport produces a byte-identical trace every
    time, and batching must not change what commits (1SR holds)."""
    def schedule(cluster):
        cluster.injector.partition_at(30.0, [{1, 2, 3, 4}, {5}])
        cluster.injector.heal_all_at(60.0)

    config = ProtocolConfig(delta=1.0, batch_window=0.5)
    result = run_experiment(_spec(config, schedule, read_fraction=0.3,
                                  trace=True))
    path = tmp_path / "batched_trace.jsonl"
    result.cluster.write_trace(path)
    digest = hashlib.sha256(path.read_text().encode()).hexdigest()
    assert digest == BATCHED_GOLDEN_TRACE_SHA
    assert result.one_copy_ok is True
    # the run exercised macro delivery: most envelopes drained through
    # an inline handler (the rest died at partitioned/down destinations)
    wakeups = result.network["macro_wakeups"]
    envelopes = result.network["envelopes"]
    assert 0 < wakeups <= envelopes
    assert result.committed > 0


def test_durability_costs_and_compaction_preserve_outcomes():
    """Paired runs through a partition + heal: free/unbounded storage
    vs. priced forced writes with checkpointing and log compaction.
    Timing moves; the committed work and its serializability do not."""
    def schedule(cluster):
        cluster.injector.partition_at(30.0, [{1, 2, 3, 4}, {5}])
        cluster.injector.heal_all_at(60.0)

    def config(costed):
        return ProtocolConfig(
            delta=1.0,
            storage_append_cost=0.05 if costed else 0.0,
            storage_sync_cost=0.2 if costed else 0.0,
            checkpoint_every=25 if costed else 0,
            log_retain=3 if costed else None,
        )

    free, priced = (
        run_experiment(_spec(config(costed), schedule, read_fraction=0.0))
        for costed in (False, True))
    expected = PROCESSORS * CLIENTS * TXNS_PER_CLIENT
    assert len(_committed_write_tags(free)) == expected
    assert _committed_write_tags(free) == _committed_write_tags(priced)
    assert free.one_copy_ok is True
    assert priced.one_copy_ok is True
    # the comparison is not vacuous: the priced run really paid
    assert priced.registry.counter("storage.forced_syncs").value > 0
    assert priced.registry.counter("storage.checkpoints").value > 0
    assert (priced.registry.gauge("storage.retained_entries").value
            < free.registry.gauge("storage.retained_entries").value)


def test_concurrent_initiations_with_forced_writes_converge():
    """Regression: the acceptor's max-id forced write must delay only
    its own acceptance, not the Monitor-VP-Creations loop.

    After a heal, several processors initiate new partitions in the
    same probe round.  A blocking sync in the monitor loop stacks one
    forced write per concurrent invitation onto later accepts, pushing
    them past ``invite_wait`` (which budgets exactly one) — views then
    shrink to a minority clique and re-form identically every round,
    a permanent livelock (seed 99 reproduced it: all five processors
    settled on view [4, 5] with 1-3 connected)."""
    from repro import Cluster

    config = ProtocolConfig(storage_append_cost=0.05, storage_sync_cost=0.2,
                            checkpoint_every=15, log_retain=3)
    cluster = Cluster(processors=5, seed=99, config=config)
    cluster.place("x", holders=[1, 2, 3, 4, 5], initial=0)
    cluster.start()
    cluster.injector.partition_at(20.0, [{1, 2, 3}, {4, 5}])
    cluster.injector.crash_at(40.0, 2)
    cluster.injector.recover_at(75.0, 2)
    cluster.injector.heal_all_at(90.0)

    def incr(txn):
        value = yield from txn.read("x")
        yield from txn.write("x", value + 1)
        return value + 1

    outcomes = []
    for index in range(12):
        outcomes.append(cluster.submit(1 + index % 3, incr,
                                       retries=10, backoff=5.0))
        cluster.sim.run(until=outcomes[-1])
    cluster.run(until=cluster.sim.now + 2 * cluster.config.liveness_bound)

    committed = sum(1 for o in outcomes if o.value and o.value[0])
    assert committed == 12  # the livelock starved 8 of these
    values = {pid: cluster.processor(pid).store.read("x")[0]
              for pid in cluster.pids}
    assert set(values.values()) == {12}
    views = {pid: tuple(sorted(cluster.protocol(pid).view))
             for pid in cluster.pids}
    assert set(views.values()) == {(1, 2, 3, 4, 5)}
    assert cluster.check_one_copy_serializable() is True
