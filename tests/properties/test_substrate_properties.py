"""Property-based tests for the substrates (topology, locks, storage, sim)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.locks import EXCLUSIVE, SHARED, LockManager
from repro.net.topology import CommGraph
from repro.node.storage import CopyStore
from repro.sim import Simulator


# ----------------------------------------------------------------------
# topology
# ----------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=2, max_value=8),
       st.integers(min_value=0, max_value=40))
@settings(max_examples=40, deadline=None)
def test_clusters_always_partition_the_node_set(seed, n, steps):
    rng = random.Random(seed)
    graph = CommGraph(range(1, n + 1))
    nodes = sorted(graph.nodes)
    for _ in range(steps):
        action = rng.randrange(5)
        a, b = rng.sample(nodes, 2)
        if action == 0:
            graph.cut_link(a, b)
        elif action == 1:
            graph.heal_link(a, b)
        elif action == 2:
            graph.crash_node(a)
        elif action == 3:
            graph.recover_node(a)
        else:
            graph.heal_all()
        clusters = graph.clusters()
        covered = set()
        for cluster in clusters:
            assert not (cluster & covered), "clusters overlap"
            covered |= cluster
        assert covered == set(nodes)
        # symmetry of the can-communicate relation
        for x in nodes:
            for y in nodes:
                assert graph.has_edge(x, y) == graph.has_edge(y, x)


@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=2, max_value=8))
@settings(max_examples=30, deadline=None)
def test_crashed_node_is_always_a_trivial_cluster(seed, n):
    rng = random.Random(seed)
    graph = CommGraph(range(1, n + 1))
    victim = rng.randrange(1, n + 1)
    graph.crash_node(victim)
    assert {victim} in graph.clusters()
    assert graph.neighbors(victim) == set()


# ----------------------------------------------------------------------
# lock manager
# ----------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=5, max_value=60))
@settings(max_examples=40, deadline=None)
def test_lock_table_safety_under_random_scripts(seed, steps):
    """Invariants after every step: an X holder is alone; S holders
    coexist only with S; releases wake compatible waiters."""
    rng = random.Random(seed)
    manager = LockManager(Simulator())
    txns = [f"t{i}" for i in range(4)]
    objects = ["x", "y"]
    live_requests = []
    for _ in range(steps):
        if rng.random() < 0.7:
            txn = rng.choice(txns)
            obj = rng.choice(objects)
            mode = rng.choice([SHARED, EXCLUSIVE])
            live_requests.append(manager.acquire(txn, obj, mode))
        else:
            manager.release_all(rng.choice(txns))
        for obj in objects:
            holders = manager.holders(obj)
            modes = list(holders.values())
            if EXCLUSIVE in modes:
                assert len(holders) == 1, f"X not exclusive on {obj}"
    # Full cleanup releases everything and grants nothing dangling.
    for txn in txns:
        manager.release_all(txn)
    for obj in objects:
        assert manager.holders(obj) == {}
        assert manager.queue_length(obj) == 0


# ----------------------------------------------------------------------
# storage: the D3 catch-up property
# ----------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=20),
       st.integers(min_value=0, max_value=19))
@settings(max_examples=50, deadline=None)
def test_log_catchup_reconstructs_the_source_exactly(seed, writes, stale_at):
    """A stale copy that missed an arbitrary suffix of writes ends up
    identical to the source after applying log_since(its own date) —
    for any sequence of (vp, counter) dates."""
    rng = random.Random(seed)
    source = CopyStore(1)
    stale = CopyStore(2)
    source.place("x", initial=0, date=None)
    stale.place("x", initial=0, date=None)

    date = None
    for index in range(writes):
        # Dates are monotone per copy in the real protocol: a new
        # partition has a strictly larger vp-id; within a partition the
        # write counter increases.
        if rng.random() < 0.3 or date is None:
            prev_n = date[0][0] if date else 0
            vp = (prev_n + rng.randint(1, 3), rng.randint(1, 9))
            counter = 1
        else:
            vp, counter = date[0], date[1] + 1
        date = (vp, counter)
        value = f"v{index}"
        source.write("x", value, date, version=("t", index))
        if index < min(stale_at, writes):
            stale.write("x", value, date, version=("t", index))

    missed = source.log_since("x", stale.date("x"))
    stale.apply_log("x", missed)
    assert stale.peek("x") == source.peek("x")
    assert stale.version("x") == source.version("x")


# ----------------------------------------------------------------------
# simulator determinism
# ----------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=30))
@settings(max_examples=30, deadline=None)
def test_event_order_is_deterministic(seed, count):
    def run_once():
        rng = random.Random(seed)
        sim = Simulator()
        fired = []
        for index in range(count):
            delay = rng.uniform(0.0, 10.0)
            sim.timeout(delay).add_callback(
                lambda e, i=index: fired.append((sim.now, i)))
        sim.run()
        return fired

    assert run_once() == run_once()
