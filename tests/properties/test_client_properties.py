"""Randomized lease-correctness audits: bounded staleness under churn.

The client tier's claim is C6 made operational: a lease-served read at
time t returns a version no older than the newest one committed by
t - (L + Delta).  The runtime auditor checks exactly that on every
lease-served read (plus the L <= pi grant rule and expiry), so these
properties arm it, drive random partition/heal/crash/recover schedules
through session-fronted clients, and require a clean verdict — the
same shape as the protocol-invariant properties next door.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.client.session import SessionSpec
from repro.workload.generator import WorkloadSpec
from repro.workload.runner import ExperimentSpec, run_experiment

SESSION = SessionSpec(cache_capacity=4, cache_policy="write-back",
                      lease_duration=7.5)


class ChurnSchedule:
    """Random partition/heal/crash/recover schedule from one seed."""

    def __init__(self, seed: int, events: int = 5):
        self.seed = seed
        self.events = events

    def __call__(self, cluster) -> None:
        rng = random.Random(self.seed)
        pids = list(cluster.pids)
        down: set = set()
        t = 10.0
        for _ in range(self.events):
            action = rng.randrange(4)
            if action == 0 and len(down) < len(pids) - 2:
                victim = rng.choice([p for p in pids if p not in down])
                cluster.injector.crash_at(t, victim)
                down.add(victim)
            elif action == 1 and down:
                lucky = rng.choice(sorted(down))
                cluster.injector.recover_at(t, lucky)
                down.discard(lucky)
            elif action == 2:
                split = rng.randrange(1, len(pids))
                cluster.injector.partition_at(t, [set(pids[:split])])
            else:
                cluster.injector.heal_all_at(t)
            t += rng.uniform(10.0, 30.0)
        # end healthy so grace covers convergence
        cluster.injector.heal_all_at(t)
        for pid in sorted(down):
            cluster.injector.recover_at(t + 1.0, pid)


# derandomize=True: deterministic example sequence, reproducible in CI
# (see tests/properties/test_protocol_invariants.py for the rationale).
@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=12, deadline=None, derandomize=True)
def test_no_lease_served_read_exceeds_the_staleness_bound(seed):
    """Under random churn, with cache + leases on every client, the
    auditor's lease-rule / lease-expired / lease-staleness checks stay
    clean and the protocol history stays 1SR."""
    result = run_experiment(ExperimentSpec(
        processors=4, objects=3, seed=seed, duration=120.0, grace=80.0,
        workload=WorkloadSpec(read_fraction=0.8, zipf_s=1.0,
                              mean_interarrival=8.0),
        retries=3, check=True, audit=True, txns_per_client=4,
        open_loop=bool(seed % 2),  # alternate driver modes
        session=SESSION,
        failures=ChurnSchedule(seed),
    ))
    assert result.audit_violations == (), result.audit_violations
    assert result.one_copy_ok is not False


def make_cluster():
    cluster = Cluster(processors=3, seed=21, audit=True)
    cluster.place("x", holders=[1, 2, 3], initial=0)
    cluster.start()
    cluster.run(until=5.0)
    return cluster


def run_program(cluster, session, program):
    proc = cluster.sim.process(session.run_program(program, tag="p",
                                                   retries=3))
    cluster.sim.run(until=proc)
    return proc.value


def test_partition_mid_lease_serves_stale_within_bound_then_recovers():
    """The deterministic churn story: a lease-holding processor gets
    isolated, serves the (stale but in-bound) leased value until the
    view change revokes it, and reads fresh after the heal."""
    cluster = make_cluster()
    session = cluster.session(1, spec=SESSION)
    assert run_program(cluster, session, [("r", "x")]) == (True, 0)
    t0 = cluster.sim.now
    cluster.injector.partition_at(t0 + 1.0, [{1}, {2, 3}])
    cluster.run(until=t0 + 2.0)
    # isolated but not yet detected: the lease still serves, and the
    # value's age is inside L + Delta by construction
    committed, value = run_program(cluster, session, [("r", "x")])
    assert committed and value == 0
    assert session.stats.lease_reads == 1
    assert session.stats.staleness[-1] <= session.staleness_bound
    # detection bumps p1's epoch: the lease is conservatively revoked
    cluster.run(until=t0 + 2.0 + 2 * cluster.config.pi)
    # the majority side commits a write while p1 is away

    def write_body(txn):
        yield from txn.write("x", 99)

    outcome = cluster.submit(2, write_body, retries=5,
                             backoff=2 * cluster.config.delta)
    cluster.sim.run(until=outcome)
    assert outcome.value[0], "majority partition must accept the write"
    cluster.injector.heal_all_at(cluster.sim.now + 1.0)
    cluster.run(until=cluster.sim.now + 2 * cluster.config.liveness_bound)
    committed, value = run_program(cluster, session, [("r", "x")])
    assert committed and value == 99, "post-heal read must be fresh"
    assert session.lease_table.stats.revoked + \
        session.lease_table.stats.expired >= 1
    assert cluster.auditor.violations == []


def test_view_change_mid_lease_revokes_before_expiry():
    """A membership event inside the lease window refuses the serve
    even though the clock has not run out (epoch-based revocation)."""
    cluster = make_cluster()
    session = cluster.session(1, spec=SESSION)
    run_program(cluster, session, [("r", "x")])
    lease = session.lease_table.serve("x", cluster.sim.now)
    assert lease is not None
    cluster.injector.crash_at(cluster.sim.now + 0.1, 3)
    # wait for detection but stay inside the lease window? Detection
    # takes up to ~pi, which exceeds L=7.5 — so instead check that the
    # epoch mismatch (not expiry) is what kills the lease: freeze the
    # serve attempt at detection time and inspect the counters.
    epoch_before = cluster.protocol(1).state.epoch
    cluster.run(until=cluster.sim.now + 2 * cluster.config.pi)
    assert cluster.protocol(1).state.epoch > epoch_before
    assert session.lease_table.serve("x", cluster.sim.now) is None
    assert session.lease_table.stats.revoked == 1, \
        "epoch check must fire before the expiry check"
    assert cluster.auditor.violations == []
