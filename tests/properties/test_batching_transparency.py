"""Property: transport batching is cost-transparent, never
semantics-changing.

A run with ``batch_window > 0`` must commit the same transaction set
and pass the one-copy-serializability check identically to the same
run with ``batch_window = 0`` — batching may only change *when*
messages travel (never later than alone) and *how many envelopes*
carry them.

The paired specs use fixed per-client transaction counts and private,
fully replicated objects per client, so both runs attempt identical,
conflict-free work: any divergence in what commits would be the
transport's fault, which is exactly the property under test.
"""

import pytest

from repro.core.config import ProtocolConfig
from repro.workload.generator import WorkloadSpec
from repro.workload.runner import ExperimentSpec, run_experiment

PROCESSORS = 5
CLIENTS = 2
TXNS_PER_CLIENT = 4
WINDOWS = (0.0, 0.5)


def _private_objects(pid, client):
    base = ((pid - 1) * CLIENTS + client) * 2
    return [f"o{base}", f"o{base + 1}"]


def _spec(protocol, seed, window, read_fraction=0.5,
          failures=None, retries=0):
    return ExperimentSpec(
        protocol=protocol, processors=PROCESSORS,
        objects=PROCESSORS * CLIENTS * 2, seed=seed,
        duration=200.0, grace=60.0,
        workload=WorkloadSpec(read_fraction=read_fraction, ops_per_txn=2,
                              mean_interarrival=6.0),
        config=ProtocolConfig(delta=1.0, batch_window=window),
        clients=CLIENTS, txns_per_client=TXNS_PER_CLIENT,
        objects_for=_private_objects,
        failures=failures, retries=retries, check=True,
    )


def _committed_txn_ids(result):
    return {record.txn for record in result.cluster.history.committed()}


def _committed_write_tags(result):
    """Retry-stable identities: the workload tags its written values
    ``{tag}#{txn_id}/{index}``, and a retried transaction keeps its
    tag while drawing a fresh txn id."""
    tags = set()
    for record in result.cluster.history.committed():
        for op in record.logical_ops:
            if op.kind == "w":
                tags.add(str(op.value).split("#")[0])
    return tags


@pytest.mark.parametrize("seed", [3, 11])
@pytest.mark.parametrize("protocol",
                         ["virtual-partitions", "rowa", "quorum"])
def test_batching_preserves_commits_and_serializability(protocol, seed):
    plain, batched = (
        run_experiment(_spec(protocol, seed, window)) for window in WINDOWS)
    expected = PROCESSORS * CLIENTS * TXNS_PER_CLIENT
    assert plain.committed == batched.committed == expected
    assert _committed_txn_ids(plain) == _committed_txn_ids(batched)
    assert plain.one_copy_ok is True
    assert batched.one_copy_ok is True
    # and the comparison is not vacuous: batching actually coalesced
    assert plain.network["envelopes"] == plain.network["sent"]
    assert batched.network["envelopes"] < batched.network["sent"]


def test_batching_transparent_across_partition_and_heal():
    """The real coalescing case: a view change floods same-destination
    traffic (probes, invites, accepts), and the isolated processor's
    transactions retry until the partition heals."""
    def schedule(cluster):
        cluster.injector.partition_at(30.0, [{1, 2, 3, 4}, {5}])
        cluster.injector.heal_all_at(60.0)

    plain, batched = (
        run_experiment(_spec("virtual-partitions", seed=7, window=window,
                             read_fraction=0.0, failures=schedule,
                             retries=25))
        for window in WINDOWS)
    expected = PROCESSORS * CLIENTS * TXNS_PER_CLIENT
    assert len(_committed_write_tags(plain)) == expected
    assert _committed_write_tags(plain) == _committed_write_tags(batched)
    assert plain.one_copy_ok is True
    assert batched.one_copy_ok is True
    assert batched.network["envelopes"] < batched.network["sent"]
