"""Integration: crash recovery by checkpoint + WAL replay.

The storage engine's contract is that recovery is *replay*: a fresh
engine rebuilt from the last checkpoint plus the journal tail holds
exactly the durable state the live engine holds.  These tests drive a
full failure-laden protocol workload (so the journal carries every
record kind: placements, transaction writes, recovery installs,
catch-up applies, max-id bumps, prepare records, decision-log entries)
and then rebuild every processor's engine mid-flight.

The second half pins the §6/compaction interaction end to end: when a
copy's write log is compacted past a stale peer's date, catch-up falls
back to a full-object transfer and the system still converges to a
correct, one-copy-serializable state.
"""

from repro import Cluster, ProtocolConfig
from repro.core.config import CATCHUP_LOG, INIT_PREVIOUS
from repro.workload.generator import WorkloadSpec
from repro.workload.runner import ExperimentSpec, run_experiment


PROCESSORS = 5
CLIENTS = 2


def _private_objects(pid, client):
    base = ((pid - 1) * CLIENTS + client) * 2
    return [f"o{base}", f"o{base + 1}"]


def _failure_spec(checkpoint_every=0, log_retain=None):
    def schedule(cluster):
        cluster.injector.partition_at(30.0, [{1, 2, 3, 4}, {5}])
        cluster.injector.crash_at(45.0, 2)
        cluster.injector.recover_at(70.0, 2)
        cluster.injector.heal_all_at(60.0)

    return ExperimentSpec(
        protocol="virtual-partitions", processors=PROCESSORS,
        objects=PROCESSORS * CLIENTS * 2, seed=7,
        duration=200.0, grace=60.0,
        workload=WorkloadSpec(read_fraction=0.3, ops_per_txn=2,
                              mean_interarrival=6.0),
        config=ProtocolConfig(delta=1.0, init_strategy=INIT_PREVIOUS,
                              catchup=CATCHUP_LOG, split_off_fastpath=True,
                              weakened_r4=True,
                              checkpoint_every=checkpoint_every,
                              log_retain=log_retain),
        clients=CLIENTS, txns_per_client=4,
        objects_for=_private_objects,
        failures=schedule, retries=25, check=True,
    )


def _assert_rebuilds_cleanly(cluster):
    replayed = 0
    for pid in cluster.pids:
        engine = cluster.processors[pid].store
        rebuilt = engine.rebuilt()
        assert rebuilt.durable_snapshot() == engine.durable_snapshot(), \
            f"replay diverged on p{pid}"
        # the durable max-id cell individually, since everything hangs
        # off identifiers staying monotone across crashes
        assert (rebuilt.durable_cell("max-id").value
                == engine.durable_cell("max-id").value)
        assert rebuilt.decisions == engine.decisions
        replayed += rebuilt.stats.replayed_records
    return replayed


def test_rebuilt_engines_equal_precrash_durable_state():
    """No checkpoints: recovery replays the whole journal."""
    result = run_experiment(_failure_spec())
    assert result.committed > 0
    assert result.one_copy_ok is True
    replayed = _assert_rebuilds_cleanly(result.cluster)
    assert replayed > 0  # the replay path actually ran


def test_rebuilt_engines_equal_with_checkpoints_and_compaction():
    """Checkpoints + compaction: replay covers only the journal tail,
    and compaction floors survive the rebuild."""
    result = run_experiment(_failure_spec(checkpoint_every=40, log_retain=3))
    assert result.committed > 0
    assert result.one_copy_ok is True
    cluster = result.cluster
    assert any(cluster.processors[pid].store.stats.checkpoints > 0
               for pid in cluster.pids)
    _assert_rebuilds_cleanly(cluster)


def test_compacted_catchup_falls_back_to_full_transfer_and_converges():
    """A partitioned-away copy whose peers compacted past its date is
    caught up by full-object transfer (§6 degraded gracefully), ends
    holding the latest value, and the history stays 1SR."""
    config = ProtocolConfig(delta=1.0, init_strategy=INIT_PREVIOUS,
                            catchup=CATCHUP_LOG,
                            checkpoint_every=10, log_retain=2)
    cluster = Cluster(processors=5, seed=13, config=config)
    cluster.place("x", holders=[1, 2, 3, 4, 5], initial=0, size=50)
    cluster.start()
    cluster.injector.partition_at(5.0, [{1, 2, 3}, {4, 5}])
    cluster.run(until=30.0)
    burst = 8
    for index in range(burst):
        cluster.write_once(1, "x", index)
        cluster.run(until=cluster.sim.now + 10.0)
    heal_at = cluster.sim.now + 1.0
    cluster.injector.heal_all_at(heal_at)
    cluster.run(until=heal_at + cluster.config.liveness_bound + 15)
    totals = cluster.total_metrics()
    assert totals.catchup_fallbacks >= 1
    # fallbacks ship whole objects: the transfer bill shows it
    assert totals.transfer_units >= 50
    for pid in cluster.pids:
        value, _ = cluster.processors[pid].store.peek("x")
        assert value == burst - 1, f"p{pid} stale after heal: {value}"
    assert cluster.check_one_copy_serializable() is True
