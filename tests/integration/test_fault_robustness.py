"""Integration tests: the protocol under omission and performance failures.

§2's failure classes, each injected explicitly: lost messages, slow
(performance-failed) messages, duplicates, crashes mid-transaction,
and combinations — always ending with a one-copy serializability audit.
"""

from repro import Cluster, ProtocolConfig


def increment(obj="x"):
    def body(txn):
        value = yield from txn.read(obj)
        yield from txn.write(obj, value + 1)
        return value
    return body


def drive_increments(cluster, count=5, obj="x", retries=6, backoff=None):
    """Run increments one at a time, waiting for each to finish (commit
    or exhaust its retries) before launching the next."""
    backoff = backoff or 3 * cluster.config.delta
    outcomes = []
    for index in range(count):
        pid = cluster.pids[index % len(cluster.pids)]
        outcome = cluster.submit(pid, increment(obj), retries=retries,
                                 backoff=backoff)
        cluster.sim.run(until=outcome)
        outcomes.append(outcome)
    return outcomes


def test_message_loss_does_not_break_one_copy_serializability():
    # Note: under this protocol ANY lost probe ack creates a new
    # partition (Fig. 7 line 21 is taken literally), so sustained loss
    # means sustained view churn; transactions ride the stable windows
    # between probe rounds.  1% loss + patient retries is the regime
    # the paper's "failures are rare" analysis assumes.
    cluster = Cluster(processors=5, seed=8, loss_prob=0.01)
    cluster.place("x", holders=[1, 2, 3, 4, 5], initial=0)
    cluster.start()
    outcomes = drive_increments(cluster, count=6, retries=12, backoff=8.0)
    committed = sum(1 for o in outcomes if o.value[0])
    assert committed >= 4, "most increments should survive 1% loss"
    assert cluster.check_one_copy_serializable()
    assert cluster.check_serializable()
    # the surviving counter equals the number of committed increments
    values = {cluster.processor(p).store.peek("x")[0]
              for p in cluster.pids
              if cluster.protocol(p).available("x", False)}
    assert committed in values


def test_performance_failures_slow_messages():
    """§2: a late message is a failure; the protocol treats the sender
    as unreachable and adapts, but correctness never depends on it."""
    cluster = Cluster(processors=5, seed=9, slow_prob=0.02, slow_factor=6.0)
    cluster.place("x", holders=[1, 2, 3, 4, 5], initial=0)
    cluster.start()
    outcomes = drive_increments(cluster, count=6, retries=12, backoff=8.0)
    committed = sum(1 for o in outcomes if o.value[0])
    assert committed >= 4
    assert cluster.check_one_copy_serializable()


def test_duplicate_messages_are_harmless():
    cluster = Cluster(processors=5, seed=10)
    cluster.network.dup_prob = 0.2
    cluster.place("x", holders=[1, 2, 3, 4, 5], initial=0)
    cluster.start()
    outcomes = drive_increments(cluster, count=6)
    assert all(o.value[0] for o in outcomes)
    assert cluster.check_one_copy_serializable()
    value, _ = cluster.processor(1).store.peek("x")
    assert value == 6  # duplicates never double-apply a write


def test_crash_during_transaction_rolls_back_dirty_writes():
    cluster = Cluster(processors=3, seed=11)
    cluster.place("x", holders=[1, 2, 3], initial="clean")
    cluster.start()

    def slow_writer(txn):
        yield from txn.write("x", "dirty")
        yield cluster.sim.timeout(50.0)  # crash lands mid-transaction

    outcome = cluster.submit(1, slow_writer)
    cluster.run(until=10.0)  # write applied everywhere, txn still open
    assert cluster.processor(2).store.peek("x")[0] == "dirty"
    cluster.injector.crash_at(11.0, 1)  # the coordinator dies
    cluster.run(until=300.0)
    # p2/p3 eventually formed a new partition; strict R4 force-aborted
    # the orphan, restoring the before-image.
    assert cluster.processor(2).store.peek("x")[0] == "clean"
    assert cluster.processor(3).store.peek("x")[0] == "clean"
    read = cluster.read_once(2, "x")
    cluster.run(until=cluster.sim.now + 30.0)
    assert read.value == (True, "clean")
    assert cluster.check_one_copy_serializable()


def test_repeated_partition_cycles_converge_and_stay_correct():
    cluster = Cluster(processors=5, seed=12)
    cluster.place("x", holders=[1, 2, 3, 4, 5], initial=0)
    cluster.start()
    t = 10.0
    for _cycle in range(3):
        cluster.injector.partition_at(t, [{1, 2, 3}, {4, 5}])
        cluster.injector.heal_all_at(t + 60.0)
        t += 120.0
    outcomes = drive_increments(cluster, count=6, retries=12, backoff=8.0)
    committed = sum(1 for o in outcomes if o.value[0])
    assert committed >= 5
    cluster.run(until=max(t, cluster.sim.now)
                + cluster.config.liveness_bound + 20)
    ids = {cluster.protocol(p).current_partition for p in cluster.pids}
    assert len(ids) == 1 and None not in ids
    assert cluster.check_one_copy_serializable()


def test_concurrent_conflicting_transactions_serialize():
    """Two racing increments on the same object must serialize through
    the copy locks — the counter ends at exactly 2."""
    cluster = Cluster(processors=3, seed=13)
    cluster.place("x", holders=[1, 2, 3], initial=0)
    cluster.start()
    # Distinct backoffs: read-local-then-write-all produces a genuine
    # distributed deadlock (each holds S on its local copy and wants X
    # on the other's); identical retry timing would re-collide forever.
    first = cluster.submit(1, increment(), retries=5, backoff=5.0)
    second = cluster.submit(2, increment(), retries=5, backoff=9.0)
    cluster.run(until=300.0)
    assert first.value[0] and second.value[0]
    assert cluster.processor(3).store.peek("x")[0] == 2
    assert cluster.check_one_copy_serializable()
    assert cluster.check_serializable()


def test_deadlock_broken_by_lock_timeout():
    """A classic two-object deadlock: both transactions eventually make
    progress because lock waits time out and the victims retry."""
    cluster = Cluster(processors=3, seed=14)
    cluster.place("a", holders=[1, 2, 3], initial=0)
    cluster.place("b", holders=[1, 2, 3], initial=0)
    cluster.start()

    def a_then_b(txn):
        value = yield from txn.read("a")
        yield cluster.sim.timeout(3.0)
        yield from txn.write("b", value + 1)
        return value

    def b_then_a(txn):
        value = yield from txn.read("b")
        yield cluster.sim.timeout(3.0)
        yield from txn.write("a", value + 1)
        return value

    first = cluster.submit(1, a_then_b, retries=8, backoff=7.0)
    second = cluster.submit(2, b_then_a, retries=8, backoff=11.0)
    cluster.run(until=800.0)
    assert first.value[0] and second.value[0]
    assert cluster.check_one_copy_serializable()


def test_weakened_r4_is_still_one_copy_serializable_under_partitions():
    config = ProtocolConfig(delta=1.0, weakened_r4=True)
    cluster = Cluster(processors=5, seed=15, config=config)
    cluster.place("x", holders=[1, 2, 3, 4, 5], initial=0)
    cluster.start()
    cluster.injector.partition_at(20.0, [{1, 2, 3}, {4, 5}])
    cluster.injector.heal_all_at(150.0)
    outcomes = drive_increments(cluster, count=6)
    committed = sum(1 for o in outcomes if o.value[0])
    assert committed >= 4
    assert cluster.check_one_copy_serializable()


def test_lost_commit_message_heals_via_monitor_timeout():
    """Fig. 6's 3δ timer: if the initiator's commit is lost, acceptors
    start their own creation instead of hanging unassigned forever."""
    cluster = Cluster(processors=3, seed=16, loss_prob=0.15)
    cluster.place("x", holders=[1, 2, 3], initial=0)
    cluster.start()
    cluster.injector.crash_at(10.0, 3)
    cluster.injector.recover_at(60.0, 3)
    cluster.run(until=400.0)
    # Under sustained 15% loss processors may be caught between accept
    # and commit (unassigned) at any instant — but creation attempts
    # keep firing (Fig. 6's timeout), so nobody is stuck forever:
    assert any(cluster.protocol(p).current_partition is not None
               for p in cluster.pids)
    # A healthy window then lets them converge fully.
    cluster.network.loss_prob = 0.0
    cluster.run(until=cluster.sim.now + 3 * cluster.config.liveness_bound)
    ids = {cluster.protocol(p).current_partition for p in cluster.pids}
    assert len(ids) == 1 and None not in ids


def test_coordinator_crash_mid_write_fanout_does_not_hang():
    """Regression: a coordinator crash used to kill its write fan-out
    workers, orphaning the transaction's AllOf forever (the simulation
    would then run unboundedly).  The transaction must terminate."""
    cluster = Cluster(processors=3, seed=17)
    cluster.place("x", holders=[1, 2, 3], initial=0)
    cluster.start()

    def writer(txn):
        yield from txn.write("x", 1)
        return "wrote"

    outcome = cluster.submit(1, writer, retries=0)
    cluster.injector.crash_at(0.5, 1)  # crash mid-fanout
    cluster.run(until=200.0)
    assert outcome.triggered, "the transaction process must terminate"
    committed, _ = outcome.value
    assert committed is False  # the crashed coordinator cannot commit
    # Recovery restores the copies.
    cluster.injector.recover_at(201.0, 1)
    cluster.run(until=201.0 + 2 * cluster.config.liveness_bound)
    assert cluster.check_one_copy_serializable()
