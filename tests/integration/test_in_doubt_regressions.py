"""Regression pins for the lost-decide 2PC hole (now fixed).

Both scenarios were found by hypothesis (seeds 137 and 7174 of
``tests/properties/test_protocol_invariants.py``) and shared one root
cause: a participant that voted yes in a prepare round lost the
commit-decide message and its prepared write was then rolled back —
by the strict-R4 force-abort on a partition change (seed 137) or by
the crash-time undo pass (seed 7174).  A later legal majority held no
up-to-date copy and a committed update vanished.

The fix makes such participants *in-doubt*: exempt from both rollback
paths, resolved by querying the coordinator's decision log, and
invisible to recovery until resolved.  These tests replay the exact
schedules deterministically so the hole cannot quietly reopen.
"""

from tests.properties.test_protocol_invariants import run_random_cluster


def _committed_counter_survives(seed: int, *, event_count: int,
                                txn_count: int) -> None:
    cluster = run_random_cluster(seed, n=4, event_count=event_count,
                                 txn_count=txn_count)
    committed_by_obj: dict = {}
    for record in cluster.history.committed():
        for op in record.logical_ops:
            if op.kind == "w":
                committed_by_obj[op.obj] = committed_by_obj.get(op.obj, 0) + 1
    for obj, count in committed_by_obj.items():
        readable = [
            cluster.processor(p).store.peek(obj)[0]
            for p in cluster.placement.copies(obj)
            if cluster.protocol(p).available(obj, write=False)
            and obj not in cluster.protocol(p).state.locked
        ]
        assert count in readable or not readable, (
            f"{obj}: committed {count} increments, copies read {readable}"
        )


def test_partition_cut_after_commit_decide(seed=137):
    """Seed 137: a cut right after commit loses the decides to two of
    three copies; the survivors form a legal majority with only stale
    copies.  In-doubt resolution must deliver the commit anyway."""
    _committed_counter_survives(seed, event_count=5, txn_count=5)


def test_participant_crash_while_in_doubt(seed=7174):
    """Seed 7174: the coordinator crashes right after deciding commit
    (its in-flight decide is dropped) and the in-doubt participant then
    crashes too.  The crash-time undo pass must not roll the prepared
    write back — the in-doubt set models the force-written prepare
    record and survives."""
    _committed_counter_survives(seed, event_count=4, txn_count=6)
