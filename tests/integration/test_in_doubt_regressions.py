"""Regression pins for the lost-decide 2PC hole (now fixed).

Both scenarios were found by hypothesis (seeds 137 and 7174 of
``tests/properties/test_protocol_invariants.py``) and shared one root
cause: a participant that voted yes in a prepare round lost the
commit-decide message and its prepared write was then rolled back —
by the strict-R4 force-abort on a partition change (seed 137) or by
the crash-time undo pass (seed 7174).  A later legal majority held no
up-to-date copy and a committed update vanished.

The fix makes such participants *in-doubt*: exempt from both rollback
paths, resolved by querying the coordinator's decision log, and
invisible to recovery until resolved.  These tests replay the exact
schedules deterministically so the hole cannot quietly reopen.
"""

from repro import Cluster, ProtocolConfig

from tests.properties.test_protocol_invariants import run_random_cluster


def _committed_counter_survives(seed: int, *, event_count: int,
                                txn_count: int) -> None:
    cluster = run_random_cluster(seed, n=4, event_count=event_count,
                                 txn_count=txn_count)
    committed_by_obj: dict = {}
    for record in cluster.history.committed():
        for op in record.logical_ops:
            if op.kind == "w":
                committed_by_obj[op.obj] = committed_by_obj.get(op.obj, 0) + 1
    for obj, count in committed_by_obj.items():
        readable = [
            cluster.processor(p).store.peek(obj)[0]
            for p in cluster.placement.copies(obj)
            if cluster.protocol(p).available(obj, write=False)
            and obj not in cluster.protocol(p).state.locked
        ]
        assert count in readable or not readable, (
            f"{obj}: committed {count} increments, copies read {readable}"
        )


def test_partition_cut_after_commit_decide(seed=137):
    """Seed 137: a cut right after commit loses the decides to two of
    three copies; the survivors form a legal majority with only stale
    copies.  In-doubt resolution must deliver the commit anyway."""
    _committed_counter_survives(seed, event_count=5, txn_count=5)


def test_participant_crash_while_in_doubt(seed=7174):
    """Seed 7174: the coordinator crashes right after deciding commit
    (its in-flight decide is dropped) and the in-doubt participant then
    crashes too.  The crash-time undo pass must not roll the prepared
    write back — the in-doubt set models the force-written prepare
    record and survives."""
    _committed_counter_survives(seed, event_count=4, txn_count=6)


# -- resolver edge cases ------------------------------------------------------
#
# The scenarios below steer one transaction into the decide window by
# hand: with ``storage_sync_cost`` > 0 the coordinator force-writes its
# commit decision and then waits out the sync before any decide message
# leaves, so polling the durable decision log exposes a deterministic
# instant at which the outcome exists but no participant can know it.

TXN = (1, 1)  # first transaction minted at processor 1


def _cluster_in_decide_window():
    """Run a 3-copy write up to the point where the coordinator has
    durably decided commit but the decide fan-out has not left yet.
    Returns the cluster with the sim parked inside that window."""
    config = ProtocolConfig(delta=4.0, storage_sync_cost=3.0)
    cluster = Cluster(processors=3, seed=1, config=config, audit=True)
    cluster.place("x", holders=[1, 2, 3], initial=0)
    cluster.start()
    cluster.run(until=5.0)  # initial views settle
    cluster.write_once(1, "x", 42)
    while cluster.processor(1).store.decision_of(TXN) != "commit":
        cluster.sim.run(until=cluster.sim.now + 0.25)
        assert cluster.sim.now < 120.0, "commit decision never logged"
    # the decides wait out the 3.0-unit sync; both participants voted
    # yes at least a delta ago and are in doubt until a decide lands
    for pid in (2, 3):
        assert TXN in cluster.protocol(pid).commit.in_doubt
    return cluster


def test_watchdog_fires_while_coordinator_dead():
    """The decide watchdog (and the partition-change kick) must keep a
    prepared participant safely blocked — not roll it back, not leak
    resolver tasks — while the coordinator is crashed, and deliver the
    logged commit the moment the coordinator's WAL comes back."""
    cluster = _cluster_in_decide_window()
    cluster.injector.crash_at(cluster.sim.now + 0.5, 1)
    # run far past the per-vote decide watchdog (access_timeout = 96):
    # it fires against a dead coordinator, the resolver's txn-status
    # gets no response, and 2PC's blocking window holds
    cluster.run(until=cluster.sim.now + 3 * cluster.config.access_timeout)
    for pid in (2, 3):
        commit = cluster.protocol(pid).commit
        assert TXN in commit.in_doubt, "in-doubt txn rolled back"
        assert TXN in commit.resolving, "resolver not armed (or leaked)"
    recover_at = cluster.sim.now + 1.0
    cluster.injector.recover_at(recover_at, 1)
    cluster.run(until=recover_at + 3 * cluster.config.access_timeout)
    for pid in (2, 3):
        commit = cluster.protocol(pid).commit
        assert TXN not in commit.in_doubt
        assert TXN not in commit.resolving
        assert cluster.processor(pid).store.peek("x")[0] == 42
        assert commit.metrics.in_doubt_dwell, "dwell not recorded"
    assert cluster.history.txns[TXN].status == "committed"
    assert cluster.auditor.ok, [str(v) for v in cluster.auditor.violations]
    assert cluster.check_one_copy_serializable() is True


def test_duplicate_decide_after_resolution_is_idempotent():
    """A decide re-delivered after the participant already applied the
    outcome (e.g. a resolver answer beat the original decide through a
    healing partition) must be a no-op: no double-apply, no dwell
    double-count, no auditor violation."""
    cluster = _cluster_in_decide_window()
    cluster.run(until=cluster.sim.now + 20.0)  # normal decides land
    assert TXN not in cluster.protocol(2).commit.in_doubt
    assert cluster.processor(2).store.peek("x")[0] == 42
    dwell_before = list(cluster.protocol(2).commit.metrics.in_doubt_dwell)
    cluster.processor(1).send(2, "release", {"txn": TXN, "outcome": "commit"})
    cluster.run(until=cluster.sim.now + 20.0)
    assert cluster.processor(2).store.peek("x")[0] == 42
    assert cluster.protocol(2).commit.metrics.in_doubt_dwell == dwell_before
    assert cluster.auditor.ok, [str(v) for v in cluster.auditor.violations]
    assert cluster.check_one_copy_serializable() is True


def test_txn_status_racing_late_decide():
    """A resolver whose txn-status round-trip (2 * delta = 8) is still
    in flight when the ordinary decide lands (sync + delta = 7) must
    notice the transaction resolved and stand down without applying the
    answer a second time."""
    cluster = _cluster_in_decide_window()
    commit = cluster.protocol(2).commit
    commit.kick_resolver(TXN)
    assert TXN in commit.resolving
    cluster.run(until=cluster.sim.now + 3 * cluster.config.access_timeout)
    assert TXN not in commit.in_doubt
    assert TXN not in commit.resolving, "resolver never exited"
    assert len(commit.metrics.in_doubt_dwell) == 1, "dwell double-counted"
    assert cluster.processor(2).store.peek("x")[0] == 42
    assert cluster.history.txns[TXN].status == "committed"
    assert cluster.auditor.ok, [str(v) for v in cluster.auditor.violations]
    assert cluster.check_one_copy_serializable() is True
