"""Satellite: every benchmark entry point runs with tiny parameters.

Each ``benchmarks/bench_*.py`` exposes ``run(**kwargs)`` and a
module-level ``SMOKE`` dict of small-scale overrides.  This test
imports every bench and executes it with those, so a broken bench
fails fast in the unit suite instead of at benchmark time.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
BENCH_FILES = sorted(BENCH_DIR.glob("bench_*.py"))


def _load(path: Path):
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))  # for `from _shared import ...`
    spec = importlib.util.spec_from_file_location(f"smoke_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_all_benchmarks_discovered():
    assert len(BENCH_FILES) >= 13


@pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.stem)
def test_benchmark_smoke(path, capsys):
    module = _load(path)
    assert hasattr(module, "run"), f"{path.name} has no run() entry point"
    assert hasattr(module, "SMOKE"), f"{path.name} has no SMOKE parameters"
    result = module.run(**module.SMOKE)
    assert result is not None
    out = capsys.readouterr().out
    # every bench emits its headline numbers as one structured JSON line
    assert '"bench"' in out and '"metrics"' in out
